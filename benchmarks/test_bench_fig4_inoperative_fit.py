"""Benchmark / reproduction of Figure 4 and the Section-2 inoperative-period analysis.

Regenerates, on the synthetic Sun-like trace:

* the empirical density of the inoperative periods over [0, 1.2] (Figure 4);
* the accepted 2-phase hyperexponential fit (paper: D = 0.1832,
  beta = (0.9303, 0.0697), eta = (25.0043, 1.6346));
* the single-exponential simplification with mean 0.04 that also passes the
  Kolmogorov–Smirnov test at the 5% level.
"""

from __future__ import annotations

from repro.experiments import run_section2


def test_figure4_inoperative_period_analysis(run_once):
    result = run_once(run_section2, num_events=140_000, seed=936)
    inoperative = result.inoperative

    print()
    print(inoperative.to_text())
    print()
    print(result.density_table("inoperative"))

    # The hyperexponential fit is accepted at the 5% level.
    assert inoperative.hyperexponential_ks.passes(0.05)

    # The fitted mixture is dominated by a fast phase with mean ~0.04
    # and a small slow component with mean ~0.6.
    fit = inoperative.hyperexponential_fit
    fast_mean = 1.0 / float(fit.rates[0])
    slow_mean = 1.0 / float(fit.rates[1])
    assert abs(fast_mean - 0.04) < 0.01
    assert abs(slow_mean - 0.61) < 0.25
    assert float(fit.weights[0]) > 0.85

    # The single-exponential simplification (mean ~0.04) passes at 5%,
    # which is what justifies the m = 1 model used in Section 4.
    assert result.inoperative_exponential_ks.passes(0.05)
    assert abs(result.inoperative_exponential_simplified.mean - 0.04) < 0.01

    # Overall mean inoperative period ~0.08 as reported.
    assert abs(inoperative.mean - 0.08) < 0.01
