"""Benchmark / reproduction of Figure 8: exact vs approximate solutions under load.

Regenerates the exact (spectral) and approximate (geometric) mean queue
lengths for N = 10 and effective loads 0.89..0.99, and checks the paper's
claim that the approximation becomes accurate as the load increases.
"""

from __future__ import annotations

from repro.experiments import run_figure8


def test_figure8_exact_vs_approximate_under_load(run_once):
    result = run_once(run_figure8)

    print()
    print(result.to_text())

    exact = [point.exact_queue_length for point in result.points]
    approximate = [point.approximate_queue_length for point in result.points]
    errors = [point.relative_error for point in result.points]

    # The queue length explodes as the load approaches saturation.
    assert exact == sorted(exact)
    assert approximate == sorted(approximate)
    assert exact[-1] > 5 * exact[0]

    # The approximation error shrinks with load (asymptotic exactness), and is
    # small at the heaviest load shown in the figure.
    assert result.errors_are_decreasing_overall()
    assert errors[-1] < 0.08
    assert errors[-1] < errors[0] / 3.0

    # At load ~0.99 both solutions are near 100 jobs, as in the figure.
    assert 60.0 < exact[-1] < 160.0
