"""Closed-loop load generator for the :mod:`repro.service` solver service.

Each benchmark drives a running service with ``concurrency`` synchronous
keep-alive clients in a closed loop (every worker sends its next request the
moment the previous answer lands) until ``total`` requests complete, then
reports throughput and the p50/p99 latency percentiles.  The shared
:mod:`_harness` records the wall-clock of each workload in
``BENCH_service.json`` and gates it against the committed
``BENCH_service_baseline.json`` — a >2x slowdown of the serving path
(a lost cache, a scheduling regression, an accept-loop stall) fails CI.

The request mix cycles distinct steady-state configurations plus a scenario
and a transient query, so the batching scheduler, the solution cache and all
three query kinds sit on the measured path; after the first lap the mix is
cache-resident and the numbers measure the *service* overhead (HTTP, JSON,
scheduling), which is exactly what this benchmark exists to track.

Usage::

    # self-hosted: spin a ThreadedService per workload and measure it
    python benchmarks/service_bench.py --quick

    # CI smoke: aim the load at an already-running `repro serve` instance
    python benchmarks/service_bench.py --quick --url http://127.0.0.1:8765 \
        --output BENCH_service.json --check benchmarks/BENCH_service_baseline.json

    # refresh the committed baseline after an intentional perf change
    python benchmarks/service_bench.py --quick \
        --update-baseline benchmarks/BENCH_service_baseline.json
"""

from __future__ import annotations

import argparse
import itertools
import statistics
import sys
import threading
import time
from collections.abc import Callable
from urllib.parse import urlparse

from _harness import bench_main

#: Closed-loop concurrency levels tracked by CI.
CONCURRENCY_LEVELS = (1, 8, 32)


def _request_mix() -> list[dict]:
    """The cycled request list: mostly steady-state, plus the other kinds."""
    mix: list[dict] = [
        {"model": {"servers": servers, "arrival_rate": round(0.45 * servers + 0.1 * i, 3)}}
        for i, servers in enumerate(itertools.islice(itertools.cycle((3, 4, 5, 6)), 16))
    ]
    mix.append({"query": "scenario", "preset": "single-repairman"})
    mix.append(
        {
            "query": "transient",
            "model": {"servers": 3, "arrival_rate": 1.2},
            "times": [1.0, 5.0, 20.0],
        }
    )
    return mix


def _drive(host: str, port: int, *, concurrency: int, total: int, label: str) -> None:
    """Run one closed loop and print its throughput and latency percentiles."""
    from repro.service import ServiceClient

    mix = _request_mix()
    ticket = itertools.count()
    latencies: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()

    def worker() -> None:
        local: list[float] = []
        with ServiceClient(host, port, timeout=120.0) as client:
            while True:
                index = next(ticket)
                if index >= total:
                    break
                request = mix[index % len(mix)]
                started = time.perf_counter()
                response = client.solve(request)
                if response.status == 429:
                    # Backpressure is a correct answer, not a failure: honour
                    # the hint once and resubmit.
                    time.sleep(float(response.headers.get("retry-after", "0.05")))
                    response = client.solve(request)
                local.append(time.perf_counter() - started)
                if not response.ok:
                    with lock:
                        failures.append(str(response.payload)[:200])
                    break
        with lock:
            latencies.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise RuntimeError(f"{label}: {len(failures)} failed requests, first: {failures[0]}")
    latencies.sort()
    quantiles = statistics.quantiles(latencies, n=100)
    print(
        f"    {label}: {len(latencies)} requests, {len(latencies) / elapsed:8.1f} req/s, "
        f"p50 {quantiles[49] * 1e3:7.2f} ms, p99 {quantiles[98] * 1e3:7.2f} ms"
    )


def _make_benchmark(concurrency: int, url: str | None) -> Callable[[bool], None]:
    def benchmark(quick: bool) -> None:
        total = 60 * max(1, concurrency // 4) if quick else 400 * max(1, concurrency // 4)
        label = f"concurrency {concurrency}"
        if url is not None:
            parsed = urlparse(url)
            _drive(
                parsed.hostname or "127.0.0.1",
                parsed.port or 80,
                concurrency=concurrency,
                total=total,
                label=label,
            )
            return
        from repro.service import ServiceConfig, ThreadedService

        with ThreadedService(ServiceConfig(port=0, batch_window=0.002)) as service:
            _drive(
                service.host, service.port, concurrency=concurrency, total=total, label=label
            )

    return benchmark


def main(argv: list[str] | None = None) -> int:
    # The --url option is this runner's own; everything else is the shared
    # harness CLI (--quick/--output/--check/--factor/--update-baseline).
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument("--url", default=None)
    own, rest = parser.parse_known_args(argv if argv is not None else sys.argv[1:])
    benchmarks = {
        f"serve_c{concurrency}": _make_benchmark(concurrency, own.url)
        for concurrency in CONCURRENCY_LEVELS
    }
    return bench_main(
        benchmarks,
        description=(
            "closed-loop load generator for the repro.service solver service "
            "(add --url to target a running `repro serve` instance)"
        ),
        default_output="BENCH_service.json",
        argv=rest,
    )


if __name__ == "__main__":
    sys.exit(main())
