"""Load generators for the :mod:`repro.service` solver service.

Two modes share this script:

Closed loop (the default)
    Each benchmark drives a running service with ``concurrency`` synchronous
    keep-alive clients in a closed loop (every worker sends its next request
    the moment the previous answer lands) until ``total`` requests complete,
    then reports throughput and the p50/p99 latency percentiles.  The shared
    :mod:`_harness` records the wall-clock of each workload in
    ``BENCH_service.json`` and gates it against the committed
    ``BENCH_service_baseline.json`` — a >2x slowdown of the serving path
    (a lost cache, a scheduling regression, an accept-loop stall) fails CI.

``--sustained``
    An *open-loop* arrival schedule: requests are launched at a fixed target
    RPS for a fixed wall-clock window regardless of how fast answers come
    back, which is how real traffic behaves.  Latency is measured from each
    request's **scheduled** arrival time, so a stalled service cannot hide
    behind coordinated omission — the backlog shows up in p99.  429 answers
    (``load-shed``/``queue-full``) count toward the shed rate rather than
    latency: shedding under overload is the designed behaviour, and the gate
    bounds *how much* of it happens.  Results go to
    ``BENCH_service_sustained.json`` and are gated against the committed
    ``BENCH_service_sustained_baseline.json`` on achieved throughput, p99
    and shed rate.

Usage::

    # self-hosted: spin a ThreadedService per workload and measure it
    python benchmarks/service_bench.py --quick

    # CI smoke: aim the load at an already-running `repro serve` instance
    python benchmarks/service_bench.py --quick --url http://127.0.0.1:8765 \
        --output BENCH_service.json --check benchmarks/BENCH_service_baseline.json

    # sustained-load SLO run against a sharded `repro serve --workers 4`
    python benchmarks/service_bench.py --sustained --quick \
        --url http://127.0.0.1:8765 --output BENCH_service_sustained.json \
        --check benchmarks/BENCH_service_sustained_baseline.json

    # refresh a committed baseline after an intentional perf change
    python benchmarks/service_bench.py --quick \
        --update-baseline benchmarks/BENCH_service_baseline.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import threading
import time
from collections.abc import Callable
from pathlib import Path
from urllib.parse import urlparse

from _harness import BASELINE_PADDING, bench_main, child_peak_rss_mb, peak_rss_mb

#: Closed-loop concurrency levels tracked by CI.
CONCURRENCY_LEVELS = (1, 8, 32)

#: Sustained-mode shed-rate floor: below this the gate never fires (a handful
#: of sheds in a short quick-mode window is noise, not a regression).
SHED_RATE_FLOOR = 0.02


def _request_mix() -> list[dict]:
    """The cycled request list: mostly steady-state, plus the other kinds."""
    mix: list[dict] = [
        {"model": {"servers": servers, "arrival_rate": round(0.45 * servers + 0.1 * i, 3)}}
        for i, servers in enumerate(itertools.islice(itertools.cycle((3, 4, 5, 6)), 16))
    ]
    mix.append({"query": "scenario", "preset": "single-repairman"})
    mix.append(
        {
            "query": "transient",
            "model": {"servers": 3, "arrival_rate": 1.2},
            "times": [1.0, 5.0, 20.0],
        }
    )
    return mix


def _drive(host: str, port: int, *, concurrency: int, total: int, label: str) -> None:
    """Run one closed loop and print its throughput and latency percentiles.

    Latencies land in the same log-bucket :class:`repro.obs.Histogram` the
    service's ``/metrics`` endpoint exposes, so the benchmark's percentiles
    and the service's telemetry agree on bucket resolution by construction.
    """
    from repro.obs import Histogram
    from repro.service import ServiceClient

    mix = _request_mix()
    ticket = itertools.count()
    histogram = Histogram()
    latencies: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()

    def worker() -> None:
        local: list[float] = []
        with ServiceClient(host, port, timeout=120.0) as client:
            while True:
                index = next(ticket)
                if index >= total:
                    break
                request = mix[index % len(mix)]
                started = time.perf_counter()
                response = client.solve(request)
                if response.status == 429:
                    # Backpressure is a correct answer, not a failure: honour
                    # the hint once and resubmit.
                    time.sleep(float(response.headers.get("retry-after", "0.05")))
                    response = client.solve(request)
                local.append(time.perf_counter() - started)
                if not response.ok:
                    with lock:
                        failures.append(str(response.payload)[:200])
                    break
        with lock:
            latencies.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise RuntimeError(f"{label}: {len(failures)} failed requests, first: {failures[0]}")
    for latency in latencies:
        histogram.observe(latency)
    print(
        f"    {label}: {len(latencies)} requests, {len(latencies) / elapsed:8.1f} req/s, "
        f"p50 {histogram.percentile(0.50) * 1e3:7.2f} ms, "
        f"p99 {histogram.percentile(0.99) * 1e3:7.2f} ms"
    )


def _make_benchmark(concurrency: int, url: str | None) -> Callable[[bool], None]:
    def benchmark(quick: bool) -> None:
        total = 60 * max(1, concurrency // 4) if quick else 400 * max(1, concurrency // 4)
        label = f"concurrency {concurrency}"
        if url is not None:
            parsed = urlparse(url)
            _drive(
                parsed.hostname or "127.0.0.1",
                parsed.port or 80,
                concurrency=concurrency,
                total=total,
                label=label,
            )
            return
        from repro.service import ServiceConfig, ThreadedService

        with ThreadedService(ServiceConfig(port=0, batch_window=0.002)) as service:
            _drive(
                service.host, service.port, concurrency=concurrency, total=total, label=label
            )

    return benchmark


#: Hot keys for the sustained mix: a small set of configurations repeated
#: often enough that the caches (and cross-request coalescing) stay on the
#: measured path alongside the cold solves.
_HOT_MODELS = tuple(
    {"model": {"servers": servers, "arrival_rate": round(0.5 * servers, 3)}}
    for servers in (3, 4, 5, 6, 7, 8, 9, 10)
)


def _sustained_request(index: int) -> dict:
    """The open-loop request for arrival ``index``: 60% cold steady-state
    solves (distinct keys, so extra shards buy real throughput), 30% hot
    cached keys, 10% scenario queries (the cheapest-to-recompute tier, so
    shedding has something to shed first)."""
    bucket = index % 10
    if bucket < 6:
        servers = 3 + index % 4
        rate = round(0.4 * servers + 0.001 * (index % 997), 4)
        return {"model": {"servers": servers, "arrival_rate": rate}}
    if bucket < 9:
        return _HOT_MODELS[index % len(_HOT_MODELS)]
    return {"query": "scenario", "preset": "single-repairman"}


def _run_sustained(
    host: str, port: int, *, rps: float, duration: float, senders: int
) -> dict:
    """Drive an open-loop arrival schedule and return the sustained metrics.

    Arrival ``i`` is *scheduled* at ``start + i / rps`` and its latency is
    measured from that scheduled instant — if the service (or a sender
    thread stuck behind a slow answer) falls behind, the backlog is charged
    to the requests that suffered it instead of silently stretching the
    schedule.
    """
    from repro.obs import Histogram
    from repro.service import ServiceClient

    total = max(1, int(rps * duration))
    interval = 1.0 / rps
    latencies: list[float] = []
    shed = 0
    errors: list[str] = []
    lock = threading.Lock()
    start = time.perf_counter() + 0.25  # let every sender reach its loop

    def sender(offset: int) -> None:
        nonlocal shed
        local_latencies: list[float] = []
        local_shed = 0
        local_errors: list[str] = []
        with ServiceClient(host, port, timeout=120.0) as client:
            for index in range(offset, total, senders):
                scheduled = start + index * interval
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                response = client.solve(_sustained_request(index))
                finished = time.perf_counter()
                if response.status == 429:
                    local_shed += 1
                elif response.ok:
                    local_latencies.append(finished - scheduled)
                else:
                    local_errors.append(str(response.payload)[:200])
        with lock:
            latencies.extend(local_latencies)
            shed += local_shed
            errors.extend(local_errors)

    threads = [threading.Thread(target=sender, args=(k,)) for k in range(senders)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    # The same log-bucket histogram the service's /metrics exposition uses:
    # percentile resolution here matches the telemetry by construction.
    histogram = Histogram()
    for latency in latencies:
        histogram.observe(latency)
    p50_ms = histogram.percentile(0.50) * 1e3
    p99_ms = histogram.percentile(0.99) * 1e3
    if errors:
        print(f"    first error: {errors[0]}", file=sys.stderr)
    return {
        "target_rps": rps,
        "duration_seconds": round(elapsed, 3),
        "senders": senders,
        "scheduled": total,
        "completed": len(latencies),
        "shed": shed,
        "errors": len(errors),
        "achieved_rps": round(len(latencies) / elapsed, 2),
        "p50_ms": round(p50_ms, 2),
        "p99_ms": round(p99_ms, 2),
        "shed_rate": round(shed / total, 4),
    }


def _check_sustained(record: dict, baseline_path: str, factor: float) -> bool:
    """Gate a sustained record against the committed baseline.

    Three SLOs, all must hold: p99 no worse than ``factor``× the baseline,
    achieved throughput no worse than baseline ÷ ``factor``, and shed rate
    no worse than ``factor``× the baseline (with an absolute floor so a few
    sheds in a short window never fail the gate).
    """
    baseline = json.loads(Path(baseline_path).read_text())
    if baseline.get("mode") != record["mode"]:
        print(
            f"BASELINE MODE MISMATCH: baseline is {baseline.get('mode')!r}, "
            f"this run is {record['mode']!r}",
            file=sys.stderr,
        )
        return False
    ok = True
    p99_limit = factor * baseline["p99_ms"]
    if record["p99_ms"] > p99_limit:
        print(
            f"SUSTAINED REGRESSION: p99 {record['p99_ms']:.2f} ms > "
            f"{p99_limit:.2f} ms ({factor}x baseline {baseline['p99_ms']:.2f} ms)",
            file=sys.stderr,
        )
        ok = False
    rps_floor = baseline["achieved_rps"] / factor
    if record["achieved_rps"] < rps_floor:
        print(
            f"SUSTAINED REGRESSION: achieved {record['achieved_rps']:.1f} req/s < "
            f"{rps_floor:.1f} req/s (baseline {baseline['achieved_rps']:.1f} / {factor})",
            file=sys.stderr,
        )
        ok = False
    shed_limit = max(factor * baseline["shed_rate"], SHED_RATE_FLOOR)
    if record["shed_rate"] > shed_limit:
        print(
            f"SUSTAINED REGRESSION: shed rate {record['shed_rate']:.4f} > "
            f"{shed_limit:.4f} (baseline {baseline['shed_rate']:.4f})",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(
            f"sustained SLOs ok vs {baseline_path} "
            f"(p99 {record['p99_ms']:.2f}/{p99_limit:.2f} ms, "
            f"rps {record['achieved_rps']:.1f}/{rps_floor:.1f}, "
            f"shed {record['shed_rate']:.4f}/{shed_limit:.4f})"
        )
    return ok


def sustained_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "open-loop sustained-load generator for the repro.service solver "
            "service (latency from scheduled arrival time; 429s count as shed)"
        )
    )
    parser.add_argument("--quick", action="store_true", help="short CI-sized window")
    parser.add_argument("--rps", type=float, default=None, help="target arrival rate")
    parser.add_argument(
        "--duration", type=float, default=None, help="window length in seconds"
    )
    parser.add_argument("--senders", type=int, default=32, help="sender threads")
    parser.add_argument(
        "--workers", type=int, default=4, help="shards for the self-hosted service"
    )
    parser.add_argument("--url", default=None, help="target a running `repro serve`")
    parser.add_argument("--output", default="BENCH_service_sustained.json")
    parser.add_argument("--check", default=None, metavar="BASELINE")
    parser.add_argument("--factor", type=float, default=2.0)
    parser.add_argument("--update-baseline", default=None, metavar="BASELINE")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    rps = args.rps if args.rps is not None else (60.0 if args.quick else 150.0)
    duration = args.duration if args.duration is not None else (6.0 if args.quick else 30.0)
    print(f"sustained ({mode}): target {rps:g} req/s for {duration:g}s", flush=True)

    if args.url is not None:
        parsed = urlparse(args.url)
        host, port = parsed.hostname or "127.0.0.1", parsed.port or 80
        metrics = _run_sustained(
            host, port, rps=rps, duration=duration, senders=args.senders
        )
    else:
        from repro.service import ServiceConfig, ThreadedService

        config = ServiceConfig(port=0, workers=args.workers, batch_window=0.002)
        with ThreadedService(config) as service:
            metrics = _run_sustained(
                service.host, service.port, rps=rps, duration=duration, senders=args.senders
            )

    record = {
        "mode": mode,
        "kind": "sustained",
        "workers": args.workers,
        **metrics,
        # child_peak_rss_mb covers the sharded tier's reaped worker processes
        # (the hungriest one); peak_rss_mb is this driver/front process.
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "child_peak_rss_mb": round(child_peak_rss_mb(), 1),
    }
    print(
        f"    scheduled {record['scheduled']}, completed {record['completed']}, "
        f"shed {record['shed']} ({record['shed_rate']:.2%}), errors {record['errors']}; "
        f"achieved {record['achieved_rps']:.1f} req/s, "
        f"p50 {record['p50_ms']:.2f} ms, p99 {record['p99_ms']:.2f} ms"
    )
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")

    status = 0
    error_budget = max(1, record["scheduled"] // 100)
    if record["errors"] > error_budget:
        print(
            f"SUSTAINED FAILURE: {record['errors']} errored requests "
            f"(budget {error_budget})",
            file=sys.stderr,
        )
        status = 1
    if args.update_baseline is not None:
        baseline = {
            "mode": mode,
            "kind": "sustained",
            "workers": args.workers,
            "target_rps": rps,
            # Padded so routine machine variance never trips the gate; only a
            # genuine regression (factor x the padded figure) fails CI.
            "achieved_rps": round(record["achieved_rps"] / BASELINE_PADDING, 2),
            "p99_ms": round(record["p99_ms"] * BASELINE_PADDING, 2),
            "shed_rate": round(min(1.0, record["shed_rate"] * BASELINE_PADDING), 4),
        }
        Path(args.update_baseline).write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated baseline {args.update_baseline}")
    if args.check is not None and not _check_sustained(record, args.check, args.factor):
        status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if "--sustained" in arguments:
        arguments.remove("--sustained")
        return sustained_main(arguments)
    # The --url option is this runner's own; everything else is the shared
    # harness CLI (--quick/--output/--check/--factor/--update-baseline).
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument("--url", default=None)
    own, rest = parser.parse_known_args(arguments)
    benchmarks = {
        f"serve_c{concurrency}": _make_benchmark(concurrency, own.url)
        for concurrency in CONCURRENCY_LEVELS
    }
    return bench_main(
        benchmarks,
        description=(
            "closed-loop load generator for the repro.service solver service "
            "(add --url to target a running `repro serve` instance; add "
            "--sustained for the open-loop SLO mode)"
        ),
        default_output="BENCH_service.json",
        argv=rest,
    )


if __name__ == "__main__":
    sys.exit(main())
