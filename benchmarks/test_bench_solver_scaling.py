"""Ablation benchmark: cost and numerical behaviour of the solvers as N grows.

Section 3.2 of the paper motivates the geometric approximation by the cost and
fragility of the exact solution for systems with many operational modes (the
paper reports warnings from about N = 24).  This ablation quantifies that
trade-off for this implementation: for increasing N it reports the number of
modes s = (N+2)(N+1)/2, the exact solve time, the approximation solve time,
and the deviation between the two mean queue lengths at a fixed effective
load.
"""

from __future__ import annotations

import time

from repro.experiments import format_table
from repro.queueing import sun_fitted_model

#: Server counts swept by the ablation (kept modest so the run stays short).
SERVER_COUNTS = (4, 8, 12, 16)

#: Effective load held constant across N (heavy, where the approximation is meant to be used).
TARGET_LOAD = 0.95


def _sweep() -> list[tuple[int, int, float, float, float, float]]:
    rows = []
    for num_servers in SERVER_COUNTS:
        template = sun_fitted_model(num_servers=num_servers, arrival_rate=1.0)
        model = template.with_arrival_rate(TARGET_LOAD * template.mean_operative_servers)

        start = time.perf_counter()
        exact = model.solve_spectral()
        exact_seconds = time.perf_counter() - start

        start = time.perf_counter()
        approximate = model.solve_geometric()
        approximate_seconds = time.perf_counter() - start

        deviation = abs(
            approximate.mean_queue_length - exact.mean_queue_length
        ) / exact.mean_queue_length
        rows.append(
            (
                num_servers,
                model.num_modes,
                exact_seconds,
                approximate_seconds,
                exact.mean_queue_length,
                deviation,
            )
        )
    return rows


def test_solver_scaling_ablation(run_once):
    rows = run_once(_sweep)

    print()
    print(
        format_table(
            ("N", "modes s", "exact solve (s)", "approx solve (s)", "L exact", "rel. deviation"),
            rows,
            title="Ablation: exact spectral expansion vs geometric approximation",
        )
    )

    modes = [row[1] for row in rows]
    exact_times = [row[2] for row in rows]
    approx_times = [row[3] for row in rows]

    # The mode count follows the closed form of Eq. 12 for n=2, m=1.
    for (num_servers, mode_count, *_rest) in rows:
        assert mode_count == (num_servers + 2) * (num_servers + 1) // 2

    # The exact solver's cost grows steeply with N, while the approximation
    # stays cheap — the trade-off that motivates Section 3.2.
    assert exact_times[-1] > exact_times[0]
    assert approx_times[-1] < exact_times[-1]

    # At a fixed 95% load the approximation always lands in the right ballpark
    # (within 50% of the exact L); the deviation grows with N because "heavy
    # traffic" means load -> 1 for a fixed configuration, which is exactly the
    # regime Figure 8 explores.
    assert all(row[5] < 0.5 for row in rows)
