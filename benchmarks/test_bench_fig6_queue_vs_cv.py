"""Benchmark / reproduction of Figure 6: queue length vs operative-period variability.

Regenerates the two curves (lambda = 8.5 and 8.6) of the mean queue length
against the squared coefficient of variation of the operative periods, with
N = 10, mean operative period 34.62, mean repair time 5.  The C^2 = 0 point
is obtained by simulation exactly as in the paper.
"""

from __future__ import annotations

from repro.experiments import run_figure6


def test_figure6_queue_length_vs_variability(run_once):
    result = run_once(
        run_figure6,
        scv_values=(0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 18.0),
        simulation_horizon=60_000.0,
    )

    print()
    print(result.to_text())

    for rate, points in result.curves.items():
        lengths = [point.mean_queue_length for point in points]
        # The queue grows with the coefficient of variation (the figure's message).
        analytical = lengths[1:]  # exclude the simulated C^2 = 0 point from strict ordering
        assert analytical == sorted(analytical), f"L not increasing in C^2 for lambda={rate}"
        # The simulated deterministic point lies below the exponential point.
        assert lengths[0] < lengths[1]
        # At C^2 = 18 the exponential assumption underestimates L severely
        # (the paper's warning about heavy-load sensitivity).
        assert lengths[-1] > 1.5 * lengths[1]

    # The heavier-loaded curve lies above the lighter one everywhere.
    rates = sorted(result.curves)
    if len(rates) == 2:
        lighter, heavier = rates
        for light_point, heavy_point in zip(result.curves[lighter], result.curves[heavier]):
            assert heavy_point.mean_queue_length > light_point.mean_queue_length
