"""Benchmark / reproduction of Figure 3 and the Section-2 operative-period analysis.

Regenerates, on the synthetic Sun-like trace:

* the empirical density of the operative periods over [0, 250] (Figure 3);
* the Kolmogorov–Smirnov rejection of the exponential hypothesis
  (paper: D = 0.4742 against critical values 0.19 / 0.23);
* the accepted 2-phase hyperexponential fit
  (paper: D = 0.1412, alpha = (0.7246, 0.2754), xi = (0.1663, 0.0091)).
"""

from __future__ import annotations

from repro.experiments import run_section2


def test_figure3_operative_period_analysis(run_once):
    result = run_once(run_section2, num_events=140_000, seed=936)
    operative = result.operative

    print()
    print(operative.to_text())
    print()
    print(result.density_table("operative"))

    # Paper decision 1: the exponential hypothesis is strongly rejected.
    assert not operative.exponential_ks.passes(0.05)
    assert operative.exponential_ks.statistic > 0.3

    # Paper decision 2: the 2-phase hyperexponential fit is accepted at 5%.
    assert operative.hyperexponential_ks.passes(0.05)
    assert operative.hyperexponential_ks.statistic < operative.exponential_ks.statistic

    # The fitted parameters land near the published values.
    fit = operative.hyperexponential_fit
    assert abs(fit.weights[0] - 0.7246) < 0.1
    assert abs(fit.rates[0] - 0.1663) / 0.1663 < 0.3
    assert abs(fit.rates[1] - 0.0091) / 0.0091 < 0.3

    # The estimated coefficient of variation is far above 1 (paper: ~4.6).
    assert operative.scv > 2.5
