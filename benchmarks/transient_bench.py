"""Benchmark-tracking runner for the CI ``bench`` job (transient workloads).

Times the new transient subsystem end to end — a multi-time uniformization
pass on the homogeneous model, the transient scenario gallery, first-passage
analysis, and the ensemble transient simulator — and tracks the wall-clock
against a committed baseline via the shared harness in :mod:`_harness`.

Usage::

    # write BENCH_transient.json and fail on >2x regression vs the baseline
    python benchmarks/transient_bench.py --quick \
        --output BENCH_transient.json --check benchmarks/BENCH_transient_baseline.json

    # refresh the committed baseline after an intentional perf change
    python benchmarks/transient_bench.py --quick \
        --update-baseline benchmarks/BENCH_transient_baseline.json
"""

from __future__ import annotations

import sys
from collections.abc import Callable

from _harness import bench_main


def _bench_transient_homogeneous(quick: bool) -> dict[str, object]:
    """One uniformization pass serving a whole time grid (paper-style model)."""
    from repro.queueing import sun_fitted_model
    from repro.transient import solve_transient

    horizon = 50.0 if quick else 200.0
    times = tuple(horizon * (index + 1) / 10 for index in range(10))
    solution = solve_transient(sun_fitted_model(num_servers=6, arrival_rate=3.6), times)
    return {"num_states": solution.num_solved_states, "steps": solution.steps}


def _bench_transient_gallery(quick: bool) -> dict[str, object]:
    """Transient trajectories across every scenario preset."""
    from repro.scenarios import preset_names, scenario_preset
    from repro.transient import solve_transient

    horizon = 20.0 if quick else 100.0
    times = (horizon / 4, horizon / 2, horizon)
    states = 0
    for name in preset_names():
        states += solve_transient(scenario_preset(name), times).num_solved_states
    return {"num_states": states}


def _bench_first_passage(quick: bool) -> None:
    """Absorbing-state first passage on homogeneous and scenario chains."""
    from repro.queueing import sun_fitted_model
    from repro.scenarios import scenario_preset
    from repro.transient import first_passage_time

    times = (5.0, 20.0, 50.0) if quick else (5.0, 20.0, 50.0, 200.0)
    first_passage_time(
        sun_fitted_model(num_servers=4, arrival_rate=2.0),
        times,
        target="queue-exceeds",
        queue_threshold=12,
    )
    first_passage_time(scenario_preset("single-repairman"), times, target="all-servers-down")


def _bench_transient_ensemble(quick: bool) -> None:
    """Ensemble-of-replications transient estimation (the cross-validator)."""
    from repro.scenarios import scenario_preset
    from repro.transient import simulate_transient

    replications = 100 if quick else 400
    simulate_transient(
        scenario_preset("repair-starved-two-speed"),
        times=(2.0, 5.0, 10.0, 20.0),
        num_replications=replications,
        seed=2006,
    )


#: The tracked benchmarks, in report order.
BENCHMARKS: dict[str, Callable[[bool], object]] = {
    "transient_homogeneous": _bench_transient_homogeneous,
    "transient_gallery": _bench_transient_gallery,
    "first_passage": _bench_first_passage,
    "transient_ensemble": _bench_transient_ensemble,
}


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        BENCHMARKS,
        description="transient benchmark runner",
        default_output="BENCH_transient.json",
        argv=argv,
    )


if __name__ == "__main__":
    sys.exit(main())
