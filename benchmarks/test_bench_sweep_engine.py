"""Benchmark: the parallel sweep engine against serial evaluation.

The grid is twelve exact spectral solves around the paper's Figure-5 region
(``N = 10..13`` at three arrival rates) — each solve is CPU-bound, which is
exactly the workload the engine's process parallelism is for.  ``test_parallel_speedup`` measures both paths and asserts the parallel
one wins on multi-core machines (it is skipped on single-CPU runners, where
no speedup is physically possible; the two timed benchmarks still document
the engine's overhead there).

Run with ``pytest benchmarks/test_bench_sweep_engine.py --benchmark-only -s``.
"""

from __future__ import annotations

import time

import pytest

from repro.queueing import sun_fitted_model
from repro.sweeps import SolverPolicy, SweepRunner, SweepSpec, default_max_workers


def sweep_spec() -> SweepSpec:
    """Twelve spectral solves over the Figure-5 neighbourhood."""
    return SweepSpec(
        base_model=sun_fitted_model(num_servers=10, arrival_rate=7.0),
        axes=[("arrival_rate", (7.0, 8.0, 8.5)), ("num_servers", (10, 11, 12, 13))],
        policy=SolverPolicy(order=("spectral",)),
        name="bench-sweep",
    )


def test_bench_sweep_serial(run_once):
    results = run_once(SweepRunner(parallel=False, cache=False).run, sweep_spec())
    assert len(results) == 12
    assert all(row.solver == "spectral" for row in results)


def test_bench_sweep_parallel(run_once):
    runner = SweepRunner(parallel=True, cache=False)
    results = run_once(runner.run, sweep_spec())
    assert len(results) == 12
    assert all(row.solver == "spectral" for row in results)


def test_parallel_speedup():
    """Parallel evaluation beats serial when more than one CPU is usable."""
    workers = default_max_workers()
    spec = sweep_spec()

    start = time.perf_counter()
    serial = SweepRunner(parallel=False, cache=False).run(spec)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = SweepRunner(parallel=True, cache=False).run(spec)
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    print(
        f"\nsweep of {len(serial)} points: serial {serial_seconds:.2f}s, "
        f"parallel {parallel_seconds:.2f}s on {workers} worker(s) "
        f"-> speedup {speedup:.2f}x"
    )

    # The engine guarantees identical results on both paths.
    assert [row.metrics for row in parallel] == [row.metrics for row in serial]

    if workers < 2:
        pytest.skip("single usable CPU: parallel speedup is not measurable here")
    assert parallel_seconds < serial_seconds, (
        f"parallel path ({parallel_seconds:.2f}s) should beat serial "
        f"({serial_seconds:.2f}s) on {workers} CPUs"
    )
