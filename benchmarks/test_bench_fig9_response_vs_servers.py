"""Benchmark / reproduction of Figure 9: response time vs number of servers.

Regenerates the exact and approximate mean response times for lambda = 7.5 and
N = 8..13, and answers the sizing question the paper poses: to keep the mean
response time at or below 1.5 at least 9 servers are needed.
"""

from __future__ import annotations

from repro.experiments import parameters, run_figure9


def test_figure9_response_time_vs_servers(run_once):
    result = run_once(run_figure9)

    print()
    print(result.to_text())

    exact = [point.exact_response_time for point in result.points]
    approximate = [point.approximate_response_time for point in result.points]

    # Response time decreases monotonically with the number of servers.
    assert exact == sorted(exact, reverse=True)
    assert approximate == sorted(approximate, reverse=True)

    # On this configuration the approximation underestimates W (paper text).
    assert all(a <= e for a, e in zip(approximate, exact))

    # The sizing answer matches the paper: at least 9 servers for W <= 1.5.
    assert result.required_servers == parameters.FIGURE9_PAPER_MINIMUM_SERVERS

    # Magnitudes in the paper's range: W(N=8) ~ 2.5-3, W(N=13) ~ 1.
    assert 2.0 < exact[0] < 3.5
    assert 1.0 < exact[-1] < 1.3
