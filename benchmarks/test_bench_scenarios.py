"""Scenario-library benchmark: the preset gallery, CTMC vs simulation.

Every named preset of :mod:`repro.scenarios` is solved by the truncated-CTMC
reference and estimated by the scenario simulator; the benchmark reports the
two side by side.  This is the pytest-benchmark twin of the standalone
``benchmarks/scenario_bench.py`` runner that the CI ``bench`` job tracks.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.scenarios import preset_names, scenario_preset


def _solve_gallery() -> dict[str, tuple[float, float, float]]:
    results: dict[str, tuple[float, float, float]] = {}
    for name in preset_names():
        scenario = scenario_preset(name)
        ctmc = scenario.solve_ctmc()
        estimate = scenario.simulate(horizon=20_000.0, seed=2006)
        results[name] = (
            ctmc.mean_queue_length,
            estimate.mean_queue_length.estimate,
            estimate.mean_queue_length.half_width,
        )
    return results


def test_scenario_gallery_cross_validation(run_once):
    results = run_once(_solve_gallery)

    print()
    print(
        format_table(
            ("preset", "L (ctmc)", "L (simulation)", "CI half-width"),
            [
                (name, ctmc, simulated, half_width)
                for name, (ctmc, simulated, half_width) in results.items()
            ],
            title="Scenario gallery: truncated CTMC vs simulation",
        )
    )

    # Each preset's CTMC mean queue length lies within a few simulation
    # confidence half-widths (the tests pin this more tightly; the benchmark
    # guards against gross regressions only).
    for name, (ctmc, simulated, half_width) in results.items():
        assert abs(ctmc - simulated) <= 5.0 * half_width + 0.05, name


class TestBaselineCheck:
    """Unit tests of the standalone bench runner's regression gate."""

    def _baseline(self, tmp_path, payload):
        import json

        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(payload))
        return path

    def test_regression_detected_beyond_factor(self, tmp_path, capsys):
        from scenario_bench import check_against_baseline

        baseline = self._baseline(
            tmp_path,
            {"mode": "quick", "benchmarks": {"a": {"seconds": 1.0}, "b": {"seconds": 1.0}}},
        )
        regressions = check_against_baseline(
            {"a": {"seconds": 2.5, "peak_rss_mb": 1.0}, "b": {"seconds": 1.5}},
            baseline,
            factor=2.0,
            quick=True,
        )
        assert regressions == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_mode_mismatch_fails_instead_of_silently_passing(self, tmp_path, capsys):
        from scenario_bench import check_against_baseline

        baseline = self._baseline(
            tmp_path, {"mode": "full", "benchmarks": {"a": {"seconds": 1.0}}}
        )
        assert (
            check_against_baseline({"a": {"seconds": 0.1}}, baseline, factor=2.0, quick=True)
            == 1
        )
        assert "re-record" in capsys.readouterr().out

    def test_new_benchmark_without_baseline_is_skipped(self, tmp_path, capsys):
        from scenario_bench import check_against_baseline

        baseline = self._baseline(
            tmp_path, {"mode": "quick", "benchmarks": {"a": {"seconds": 1.0}}}
        )
        records = {"a": {"seconds": 1.0}, "new": {"seconds": 9.0, "num_states": 3}}
        assert check_against_baseline(records, baseline, factor=2.0, quick=True) == 0
        assert "no baseline entry" in capsys.readouterr().out
