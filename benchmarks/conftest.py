"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding series (the rows the paper plots), so running

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation section in one go.  Each experiment is
executed exactly once per benchmark (``rounds=1``) because the payloads are
full experiment sweeps, not micro-benchmarks.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark timer and return its result."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
