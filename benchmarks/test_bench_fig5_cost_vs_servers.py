"""Benchmark / reproduction of Figure 5: cost as a function of the number of servers.

Regenerates the three cost curves (lambda = 7.0, 8.0, 8.5) over N = 9..17 with
the exact spectral-expansion solution, cost coefficients c1 = 4 and c2 = 1,
and checks the optima the paper reports: N* = 11, 12 and 13 respectively.
"""

from __future__ import annotations

from repro.experiments import parameters, run_figure5


def test_figure5_cost_curves_and_optima(run_once):
    result = run_once(run_figure5)

    print()
    print(result.to_text())

    # Every curve has an interior minimum (the trade-off the figure illustrates).
    for rate, curve in result.curves.items():
        costs = [point.cost for point in curve.points]
        optimum_index = costs.index(min(costs))
        assert 0 < optimum_index < len(costs) - 1, f"no interior optimum for lambda={rate}"

    # The heavier the load, the larger the optimal number of servers.
    optima = [result.optima[rate] for rate in sorted(result.optima)]
    assert optima == sorted(optima)

    # The measured optima match the paper's values (11, 12, 13), allowing at
    # most one server of slack for the flat region around the optimum.
    for rate, paper_optimum in parameters.FIGURE5_PAPER_OPTIMA.items():
        assert abs(result.optima[rate] - paper_optimum) <= 1, (
            f"optimum for lambda={rate}: measured {result.optima[rate]}, "
            f"paper {paper_optimum}"
        )
