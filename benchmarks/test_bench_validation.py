"""Ablation benchmark: cross-validation of all solution methods.

Not a figure of the paper, but the methodological backbone of the
reproduction: on the paper's own parameter region the exact spectral
expansion, the truncated-CTMC reference solver, the geometric approximation
and the discrete-event simulator must tell one consistent story.  The
benchmark reports the four estimates side by side.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.queueing import sun_fitted_model


def _cross_validate() -> dict[str, float]:
    model = sun_fitted_model(num_servers=10, arrival_rate=8.0)
    spectral = model.solve_spectral()
    ctmc = model.solve_ctmc()
    geometric = model.solve_geometric()
    simulated = model.simulate(horizon=60_000.0, seed=2006, num_batches=12)
    return {
        "spectral": spectral.mean_queue_length,
        "ctmc": ctmc.mean_queue_length,
        "geometric": geometric.mean_queue_length,
        "simulation": simulated.mean_queue_length.estimate,
        "simulation_halfwidth": simulated.mean_queue_length.half_width,
        "decay_rate": spectral.decay_rate,
    }


def test_cross_method_validation(run_once):
    results = run_once(_cross_validate)

    print()
    print(
        format_table(
            ("method", "mean queue length L"),
            [
                ("spectral expansion (exact)", results["spectral"]),
                ("truncated CTMC (reference)", results["ctmc"]),
                ("geometric approximation", results["geometric"]),
                (
                    "simulation (95% CI half-width "
                    f"{results['simulation_halfwidth']:.2f})",
                    results["simulation"],
                ),
            ],
            title="Cross-validation at N=10, lambda=8 (paper Section 4 base case)",
        )
    )

    # The exact solution and the finite-chain reference agree to 5 digits.
    assert abs(results["spectral"] - results["ctmc"]) / results["ctmc"] < 1e-5

    # The simulation confirms the analytical value within a loose tolerance
    # (heavily loaded system, finite horizon).
    assert abs(results["simulation"] - results["spectral"]) / results["spectral"] < 0.2

    # At this moderate load (~0.80) the geometric approximation underestimates
    # L — as the paper notes for Figure 9 — but stays within a small factor and
    # shares the exact decay rate; its accuracy improves with load (Figure 8).
    assert results["geometric"] < results["spectral"]
    assert results["geometric"] > results["spectral"] / 4.0
    assert 0.0 < results["decay_rate"] < 1.0
