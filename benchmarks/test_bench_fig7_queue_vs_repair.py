"""Benchmark / reproduction of Figure 7: queue length vs average repair time.

Regenerates both curves (exponential vs hyperexponential operative periods of
equal mean) for N = 10, lambda = 8, mean repair time 1..5, and checks the
paper's message: the exponential assumption becomes increasingly
over-optimistic as repairs slow down.
"""

from __future__ import annotations

from repro.experiments import run_figure7


def test_figure7_queue_length_vs_repair_time(run_once):
    result = run_once(run_figure7)

    print()
    print(result.to_text())

    exponential = [point.queue_length_exponential for point in result.points]
    hyper = [point.queue_length_hyperexponential for point in result.points]
    ratios = [point.underestimation_factor for point in result.points]

    # Both curves increase as availability degrades.
    assert exponential == sorted(exponential)
    assert hyper == sorted(hyper)

    # The hyperexponential queue is never shorter, and the gap widens with the
    # repair time (the "over-optimistic prediction" message of the figure).
    assert all(h >= e for h, e in zip(hyper, exponential))
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.1

    # Magnitudes in the paper's range: L grows from ~10 to the mid-20s.
    assert 8.0 < exponential[0] < 13.0
    assert 18.0 < hyper[-1] < 32.0
