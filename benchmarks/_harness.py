"""Shared machinery of the benchmark-tracking runners.

Both CI benchmark scripts (``scenario_bench.py``, ``transient_bench.py``)
time a fixed dict of representative workloads, write the wall-clock results
to a JSON file, and optionally compare them against a committed baseline,
failing when any benchmark regresses by more than a tolerance factor.  The
timing loop, the JSON format, the baseline comparison and the CLI live here;
each script contributes only its workload functions.

Wall-clock numbers are noisy across machines, so committed baselines are
recorded generously (the measured time padded by :data:`BASELINE_PADDING`)
and the regression gate is a factor, not a delta: only a genuine slowdown —
an accidental algorithmic regression, a lost cache — trips it.
"""

from __future__ import annotations

import argparse
import json
import time
from collections.abc import Callable
from pathlib import Path

#: Padding applied when recording a baseline, so machine noise and CI runners
#: slower than the recording machine do not trip the regression gate (together
#: with the default 2x factor this gives ~4x headroom over the measured time).
BASELINE_PADDING = 2.0


def run_benchmarks(
    benchmarks: dict[str, Callable[[bool], None]], *, quick: bool, repeats: int
) -> dict[str, float]:
    """Run every benchmark ``repeats`` times and keep the best wall-clock."""
    timings: dict[str, float] = {}
    for name, function in benchmarks.items():
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            function(quick)
            best = min(best, time.perf_counter() - start)
        timings[name] = best
        print(f"{name:>24}: {best:8.3f}s")
    return timings


def write_results(path: Path, timings: dict[str, float], *, quick: bool) -> None:
    """Write one timing JSON (the artifact CI uploads, and the baseline format)."""
    payload = {
        "mode": "quick" if quick else "full",
        "benchmarks": {name: {"seconds": seconds} for name, seconds in timings.items()},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def check_against_baseline(
    timings: dict[str, float], baseline_path: Path, *, factor: float, quick: bool
) -> int:
    """Compare timings to a baseline file; return the number of regressions.

    A baseline recorded in a different mode (quick vs full) makes the factor
    comparison meaningless, so a mode mismatch counts as a failure instead of
    silently disabling the gate.
    """
    payload = json.loads(baseline_path.read_text())
    mode = "quick" if quick else "full"
    baseline_mode = payload.get("mode")
    if baseline_mode != mode:
        print(
            f"baseline {baseline_path} was recorded in {baseline_mode!r} mode but this "
            f"run used {mode!r}; re-record it with --update-baseline"
            + (" --quick" if quick else "")
        )
        return 1
    baseline = payload["benchmarks"]
    regressions = 0
    for name, seconds in timings.items():
        if name not in baseline:
            print(f"{name:>24}: no baseline entry (new benchmark, skipped)")
            continue
        reference = float(baseline[name]["seconds"])
        ratio = seconds / reference if reference > 0 else float("inf")
        status = "ok"
        if ratio > factor:
            status = f"REGRESSION (> {factor:.1f}x)"
            regressions += 1
        print(f"{name:>24}: {seconds:8.3f}s vs baseline {reference:8.3f}s ({ratio:4.2f}x) {status}")
    for name in baseline:
        if name not in timings:
            print(f"{name:>24}: present in baseline but not measured")
    return regressions


def bench_main(
    benchmarks: dict[str, Callable[[bool], None]],
    *,
    description: str,
    default_output: str,
    argv: list[str] | None = None,
) -> int:
    """The CLI shared by the benchmark scripts (run, write, check, re-baseline)."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--quick", action="store_true", help="reduced workloads (what the CI bench job runs)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="runs per benchmark (best kept)")
    parser.add_argument(
        "--output", default=default_output, help="where to write the timing JSON"
    )
    parser.add_argument("--check", default=None, help="baseline JSON to compare against")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when a benchmark exceeds its baseline by more than this factor",
    )
    parser.add_argument(
        "--update-baseline",
        default=None,
        help="write the measured timings (doubled for headroom) to this baseline file and exit",
    )
    arguments = parser.parse_args(argv)

    timings = run_benchmarks(benchmarks, quick=arguments.quick, repeats=arguments.repeats)

    if arguments.update_baseline is not None:
        padded = {name: seconds * BASELINE_PADDING for name, seconds in timings.items()}
        write_results(Path(arguments.update_baseline), padded, quick=arguments.quick)
        return 0

    write_results(Path(arguments.output), timings, quick=arguments.quick)
    if arguments.check is not None:
        regressions = check_against_baseline(
            timings, Path(arguments.check), factor=arguments.factor, quick=arguments.quick
        )
        if regressions:
            print(f"{regressions} benchmark(s) regressed beyond {arguments.factor:.1f}x")
            return 1
        print("all benchmarks within the regression budget")
    return 0
