"""Shared machinery of the benchmark-tracking runners.

Both CI benchmark scripts (``scenario_bench.py``, ``transient_bench.py``)
time a fixed dict of representative workloads, write the wall-clock results
to a JSON file, and optionally compare them against a committed baseline,
failing when any benchmark regresses by more than a tolerance factor.  The
timing loop, the JSON format, the baseline comparison and the CLI live here;
each script contributes only its workload functions.

Wall-clock numbers are noisy across machines, so committed baselines are
recorded generously (the measured time padded by :data:`BASELINE_PADDING`)
and the regression gate is a factor, not a delta: only a genuine slowdown —
an accidental algorithmic regression, a lost cache — trips it.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from collections.abc import Callable
from pathlib import Path

#: Padding applied when recording a baseline, so machine noise and CI runners
#: slower than the recording machine do not trip the regression gate (together
#: with the default 2x factor this gives ~4x headroom over the measured time).
BASELINE_PADDING = 2.0

#: ``ru_maxrss`` is kilobytes on Linux but *bytes* on macOS.
_RSS_TO_MB = 1.0 / (1024.0 * 1024.0) if sys.platform == "darwin" else 1.0 / 1024.0


def peak_rss_mb() -> float:
    """The process's high-water resident set size, in megabytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RSS_TO_MB


def child_peak_rss_mb() -> float:
    """The largest high-water RSS among *reaped* child processes, in megabytes.

    ``RUSAGE_CHILDREN`` only covers children that have been waited on, and
    ``ru_maxrss`` there is the *maximum over children*, not their sum — which
    is exactly the right shape for the sharded service benchmark: after the
    pool shuts down it reports the hungriest worker, where the parent-only
    number used to under-report the tier's footprint entirely.
    """
    return resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * _RSS_TO_MB


def run_benchmarks(
    benchmarks: dict[str, Callable[[bool], object]], *, quick: bool, repeats: int
) -> dict[str, dict[str, object]]:
    """Run every benchmark ``repeats`` times and keep the best wall-clock.

    Each record carries the best ``seconds``, the process-wide ``peak_rss_mb``
    observed after the benchmark (monotone over the run — it attributes the
    high-water mark, not the increment), the reaped-children high-water
    ``child_peak_rss_mb`` (the hungriest worker process, for benchmarks that
    spawn a sharded pool), and whatever metadata dict the workload chose to
    return (state-space sizes, truncation levels, ...), so the uploaded JSON
    explains *what* was timed, not just how long it took.
    """
    records: dict[str, dict[str, object]] = {}
    for name, function in benchmarks.items():
        best = float("inf")
        metadata: dict[str, object] = {}
        for _ in range(repeats):
            start = time.perf_counter()
            returned = function(quick)
            best = min(best, time.perf_counter() - start)
            if isinstance(returned, dict):
                metadata = {str(key): value for key, value in returned.items()}
        records[name] = {
            "seconds": best,
            "peak_rss_mb": round(peak_rss_mb(), 1),
            "child_peak_rss_mb": round(child_peak_rss_mb(), 1),
            **metadata,
        }
        sizes = ", ".join(f"{key}={value}" for key, value in metadata.items())
        print(f"{name:>24}: {best:8.3f}s" + (f"  [{sizes}]" if sizes else ""))
    return records


def write_results(path: Path, records: dict[str, dict[str, object]], *, quick: bool) -> None:
    """Write one timing JSON (the artifact CI uploads, and the baseline format)."""
    payload = {
        "mode": "quick" if quick else "full",
        "benchmarks": records,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def check_against_baseline(
    records: dict[str, dict[str, object]], baseline_path: Path, *, factor: float, quick: bool
) -> int:
    """Compare timings to a baseline file; return the number of regressions.

    A baseline recorded in a different mode (quick vs full) makes the factor
    comparison meaningless, so a mode mismatch counts as a failure instead of
    silently disabling the gate.
    """
    payload = json.loads(baseline_path.read_text())
    mode = "quick" if quick else "full"
    baseline_mode = payload.get("mode")
    if baseline_mode != mode:
        print(
            f"baseline {baseline_path} was recorded in {baseline_mode!r} mode but this "
            f"run used {mode!r}; re-record it with --update-baseline"
            + (" --quick" if quick else "")
        )
        return 1
    baseline = payload["benchmarks"]
    regressions = 0
    for name, record in records.items():
        seconds = float(record["seconds"])  # type: ignore[arg-type]
        if name not in baseline:
            print(f"{name:>24}: no baseline entry (new benchmark, skipped)")
            continue
        reference = float(baseline[name]["seconds"])
        ratio = seconds / reference if reference > 0 else float("inf")
        status = "ok"
        if ratio > factor:
            status = f"REGRESSION (> {factor:.1f}x)"
            regressions += 1
        print(f"{name:>24}: {seconds:8.3f}s vs baseline {reference:8.3f}s ({ratio:4.2f}x) {status}")
    for name in baseline:
        if name not in records:
            print(f"{name:>24}: present in baseline but not measured")
    return regressions


def bench_main(
    benchmarks: dict[str, Callable[[bool], object]],
    *,
    description: str,
    default_output: str,
    argv: list[str] | None = None,
) -> int:
    """The CLI shared by the benchmark scripts (run, write, check, re-baseline)."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--quick", action="store_true", help="reduced workloads (what the CI bench job runs)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="runs per benchmark (best kept)")
    parser.add_argument(
        "--output", default=default_output, help="where to write the timing JSON"
    )
    parser.add_argument("--check", default=None, help="baseline JSON to compare against")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when a benchmark exceeds its baseline by more than this factor",
    )
    parser.add_argument(
        "--update-baseline",
        default=None,
        help="write the measured timings (doubled for headroom) to this baseline file and exit",
    )
    arguments = parser.parse_args(argv)

    records = run_benchmarks(benchmarks, quick=arguments.quick, repeats=arguments.repeats)

    if arguments.update_baseline is not None:
        padded = {
            name: {**record, "seconds": float(record["seconds"]) * BASELINE_PADDING}  # type: ignore[arg-type]
            for name, record in records.items()
        }
        write_results(Path(arguments.update_baseline), padded, quick=arguments.quick)
        return 0

    write_results(Path(arguments.output), records, quick=arguments.quick)
    if arguments.check is not None:
        regressions = check_against_baseline(
            records, Path(arguments.check), factor=arguments.factor, quick=arguments.quick
        )
        if regressions:
            print(f"{regressions} benchmark(s) regressed beyond {arguments.factor:.1f}x")
            return 1
        print("all benchmarks within the regression budget")
    return 0
