"""Benchmark-tracking runner for the CI ``bench`` job (scenario workloads).

Times a fixed set of representative workloads (scenario CTMC solves,
scenario simulation, the sweep engine, the homogeneous spectral solver) and
tracks them against a committed baseline via the shared harness in
:mod:`_harness`.

Usage::

    # write BENCH_scenarios.json and fail on >2x regression vs the baseline
    python benchmarks/scenario_bench.py --quick \
        --output BENCH_scenarios.json --check benchmarks/BENCH_baseline.json

    # refresh the committed baseline after an intentional perf change
    python benchmarks/scenario_bench.py --quick \
        --update-baseline benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import sys
from collections.abc import Callable

from _harness import (  # noqa: F401 - re-exported for the bench unit tests
    BASELINE_PADDING,
    bench_main,
    check_against_baseline,
    run_benchmarks,
    write_results,
)


def _bench_scenario_ctmc_gallery(quick: bool) -> None:
    from repro.scenarios import preset_names, scenario_preset

    for name in preset_names():
        scenario_preset(name).solve_ctmc()


def _bench_scenario_simulation(quick: bool) -> None:
    from repro.scenarios import scenario_preset

    horizon = 10_000.0 if quick else 50_000.0
    scenario_preset("repair-starved-two-speed").simulate(horizon=horizon, seed=2006)


def _bench_scenario_sweep(quick: bool) -> None:
    from repro.scenarios import scenario_preset
    from repro.sweeps import SolverPolicy, SweepRunner, SweepSpec

    rates = (1.2, 1.5) if quick else (1.0, 1.2, 1.5, 1.8)
    spec = SweepSpec(
        base_model=scenario_preset("two-speed-cluster"),
        axes=[("repair_capacity", (1, 2, 4)), ("arrival_rate", rates)],
        policy=SolverPolicy(order=("ctmc",)),
        name="bench-scenario-sweep",
    )
    SweepRunner(cache=False).run(spec)


def _bench_homogeneous_spectral(quick: bool) -> None:
    from repro.queueing import sun_fitted_model
    from repro.solvers import SolutionCache, solve

    cache = SolutionCache()  # private cache: measure solves, not memoisation
    servers = 10 if quick else 14
    for arrival_rate in (6.0, 6.5, 7.0, 7.5, 8.0):
        solve(sun_fitted_model(servers, arrival_rate), "spectral", cache=cache)


#: The tracked benchmarks, in report order.
BENCHMARKS: dict[str, Callable[[bool], None]] = {
    "scenario_ctmc_gallery": _bench_scenario_ctmc_gallery,
    "scenario_simulation": _bench_scenario_simulation,
    "scenario_sweep": _bench_scenario_sweep,
    "homogeneous_spectral": _bench_homogeneous_spectral,
}


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        BENCHMARKS,
        description="scenario benchmark runner",
        default_output="BENCH_scenarios.json",
        argv=argv,
    )


if __name__ == "__main__":
    sys.exit(main())
