"""Benchmark-tracking runner for the CI ``bench`` job (scenario workloads).

Times a fixed set of representative workloads (scenario CTMC solves,
scenario simulation, the sweep engine, the homogeneous spectral solver) and
tracks them against a committed baseline via the shared harness in
:mod:`_harness`.

Usage::

    # write BENCH_scenarios.json and fail on >2x regression vs the baseline
    python benchmarks/scenario_bench.py --quick \
        --output BENCH_scenarios.json --check benchmarks/BENCH_baseline.json

    # refresh the committed baseline after an intentional perf change
    python benchmarks/scenario_bench.py --quick \
        --update-baseline benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import sys
from collections.abc import Callable

from _harness import (  # noqa: F401 - re-exported for the bench unit tests
    BASELINE_PADDING,
    bench_main,
    check_against_baseline,
    run_benchmarks,
    write_results,
)


def _bench_scenario_ctmc_gallery(quick: bool) -> dict[str, object]:
    from repro.scenarios import preset_names, scenario_preset

    states = 0
    for name in preset_names():
        states += scenario_preset(name).solve_ctmc().num_solved_states
    return {"num_states": states}


def _bench_lumped_scenario(quick: bool) -> dict[str, object]:
    """A K=3, N=30 lumped solve whose product space would be astronomically large.

    Three groups of ten exponential servers give ``11^3 = 1331`` lumped modes
    against ``2^30 ~ 1.1e9`` per-server-labelled modes — the chain only exists
    because of the count-based lumping.  At the explicit truncation level the
    chain has ~81k states, which exercises the IAD steady-state path of the
    kernel layer (direct factorisation is far too fill-heavy here).
    """
    from repro.distributions import Exponential
    from repro.scenarios import ScenarioModel, ServerGroup

    model = ScenarioModel(
        groups=(
            ServerGroup(
                name="fast",
                size=10,
                service_rate=2.0,
                operative=Exponential(rate=0.05),
                inoperative=Exponential(rate=1.0),
            ),
            ServerGroup(
                name="mid",
                size=10,
                service_rate=1.0,
                operative=Exponential(rate=0.04),
                inoperative=Exponential(rate=0.8),
            ),
            ServerGroup(
                name="slow",
                size=10,
                service_rate=0.5,
                operative=Exponential(rate=0.03),
                inoperative=Exponential(rate=0.6),
            ),
        ),
        arrival_rate=20.0,
        repair_capacity=4,
        name="bench-lumped-30",
    )
    level = 60 if quick else 120
    solution = model.solve_ctmc(max_queue_length=level)
    environment = model.environment
    return {
        "num_modes": environment.num_modes,
        "num_levels": level + 1,
        "num_states": solution.num_solved_states,
        "num_product_modes": environment.num_product_modes,
        "representation": solution.representation,
    }


def _bench_scenario_simulation(quick: bool) -> None:
    from repro.scenarios import scenario_preset

    horizon = 10_000.0 if quick else 50_000.0
    scenario_preset("repair-starved-two-speed").simulate(horizon=horizon, seed=2006)


def _bench_scenario_sweep(quick: bool) -> None:
    from repro.scenarios import scenario_preset
    from repro.sweeps import SolverPolicy, SweepRunner, SweepSpec

    rates = (1.2, 1.5) if quick else (1.0, 1.2, 1.5, 1.8)
    spec = SweepSpec(
        base_model=scenario_preset("two-speed-cluster"),
        axes=[("repair_capacity", (1, 2, 4)), ("arrival_rate", rates)],
        policy=SolverPolicy(order=("ctmc",)),
        name="bench-scenario-sweep",
    )
    SweepRunner(cache=False).run(spec)


def _bench_homogeneous_spectral(quick: bool) -> None:
    from repro.queueing import sun_fitted_model
    from repro.solvers import SolutionCache, solve

    cache = SolutionCache()  # private cache: measure solves, not memoisation
    servers = 10 if quick else 14
    for arrival_rate in (6.0, 6.5, 7.0, 7.5, 8.0):
        solve(sun_fitted_model(servers, arrival_rate), "spectral", cache=cache)


#: The tracked benchmarks, in report order.
BENCHMARKS: dict[str, Callable[[bool], object]] = {
    "scenario_ctmc_gallery": _bench_scenario_ctmc_gallery,
    "lumped_scenario": _bench_lumped_scenario,
    "scenario_simulation": _bench_scenario_simulation,
    "scenario_sweep": _bench_scenario_sweep,
    "homogeneous_spectral": _bench_homogeneous_spectral,
}


def main(argv: list[str] | None = None) -> int:
    return bench_main(
        BENCHMARKS,
        description="scenario benchmark runner",
        default_output="BENCH_scenarios.json",
        argv=argv,
    )


if __name__ == "__main__":
    sys.exit(main())
