"""Evaluate a user-defined parameter grid with the sweep engine.

The paper's Section-4 experiments are all parameter sweeps; this example
shows how to run your own with :mod:`repro.sweeps`: a grid over the number of
servers and the arrival rate, solved exactly with automatic fallback to the
geometric approximation, fanned out over worker processes, and exported to
CSV for plotting.

Run with::

    PYTHONPATH=src python examples/sweep_grid.py

The same sweep is available from the command line::

    PYTHONPATH=src python -m repro sweep \
        --servers 9,10,11,12 --arrival-rates 6.5,7.0,7.5,8.0 \
        --parallel --csv sweep.csv
"""

from __future__ import annotations

from repro.queueing import sun_fitted_model
from repro.sweeps import SolverPolicy, SweepRunner, SweepSpec


def main() -> None:
    spec = SweepSpec(
        base_model=sun_fitted_model(num_servers=10, arrival_rate=7.0),
        axes=[
            ("num_servers", (9, 10, 11, 12)),
            ("arrival_rate", (6.5, 7.0, 7.5, 8.0)),
        ],
        policy=SolverPolicy(order=("spectral", "geometric")),
        name="example-grid",
    )
    runner = SweepRunner(parallel=True)
    results = runner.run(spec)

    print(f"{'N':>3}  {'lambda':>6}  {'solver':>9}  {'L':>8}  {'W':>7}")
    for row in results:
        print(
            f"{row.parameters['num_servers']:>3}  "
            f"{row.parameters['arrival_rate']:>6.2f}  "
            f"{(row.solver or '-'):>9}  "
            f"{row.metric('mean_queue_length'):>8.4f}  "
            f"{row.metric('mean_response_time'):>7.4f}"
        )

    path = results.to_csv("sweep_grid.csv")
    print(f"\nwrote {path} ({len(results)} rows); cache: {runner.cache_info()}")


if __name__ == "__main__":
    main()
