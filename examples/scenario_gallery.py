"""Tour of the scenario library: every named preset, cross-validated.

The scenario library generalises the paper's homogeneous pool to
heterogeneous server groups and limited repair crews.  This example walks the
preset gallery and, for each scenario, compares the truncated-CTMC reference
solution against a discrete-event simulation — the same cross-validation the
test-suite enforces — then sweeps the repair-crew size of the two-speed
cluster to show how crew contention inflates the queue.

Run with::

    PYTHONPATH=src python examples/scenario_gallery.py

The presets are also available from the command line::

    PYTHONPATH=src python -m repro scenario --list
    PYTHONPATH=src python -m repro scenario --preset two-speed-cluster
"""

from __future__ import annotations

from repro.scenarios import preset_description, preset_names, scenario_preset
from repro.sweeps import SolverPolicy, SweepRunner, SweepSpec


def cross_validate_gallery(horizon: float) -> None:
    print(f"{'preset':>26}  {'modes':>5}  {'L ctmc':>8}  {'L sim':>8}  {'+-':>6}  {'util':>6}")
    for name in preset_names():
        scenario = scenario_preset(name)
        ctmc = scenario.solve_ctmc()
        estimate = scenario.simulate(horizon=horizon, seed=2006)
        interval = estimate.mean_queue_length
        print(
            f"{name:>26}  {scenario.num_modes:>5}  "
            f"{ctmc.mean_queue_length:>8.4f}  {interval.estimate:>8.4f}  "
            f"{interval.half_width:>6.4f}  {ctmc.utilisation:>6.4f}"
        )


def sweep_repair_crew() -> None:
    base = scenario_preset("two-speed-cluster")
    spec = SweepSpec(
        base_model=base,
        axes=[("repair_capacity", (1, 2, 3, 4))],
        policy=SolverPolicy(order=("ctmc",)),
        name="repair-crew-sweep",
    )
    results = SweepRunner().run(spec)
    print(f"\n{'R':>3}  {'L':>8}  {'W':>8}")
    for row in results:
        print(
            f"{row.parameters['repair_capacity']:>3}  "
            f"{row.metric('mean_queue_length'):>8.4f}  "
            f"{row.metric('mean_response_time'):>8.4f}"
        )


def main() -> None:
    print("Scenario gallery")
    print("================")
    for name in preset_names():
        print(f"* {name}: {preset_description(name)}")
    print()
    cross_validate_gallery(horizon=20_000.0)
    sweep_repair_crew()


if __name__ == "__main__":
    main()
