"""End-to-end breakdown-trace analysis: from an outage log to a queueing model.

This example mirrors Section 2 of the paper on a synthetic outage log (the
original Sun Microsystems trace is confidential).  It shows the full pipeline
a practitioner would run on their own data:

1. write/read the outage log as CSV (Outage Duration, Time Between Events);
2. drop anomalous rows and derive the operative periods (paper Figure 2);
3. estimate moments, test the exponential hypothesis with the
   Kolmogorov–Smirnov statistic, and fit a 2-phase hyperexponential;
4. plug the fitted distributions into the queueing model and compare the
   predictions against the (wrong) exponential assumption.

Run with:

    python examples/trace_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.data import generate_small_trace, read_trace_csv, write_trace_csv
from repro.distributions import Exponential
from repro.fitting import fit_exponential, fit_two_phase_from_moments
from repro.queueing import UnreliableQueueModel
from repro.stats import EmpiricalDensity, estimate_moments, ks_test_grid


def main() -> None:
    # --- 1. obtain the outage log (here: synthetic, written to a temp CSV) ---
    raw_trace = generate_small_trace(num_events=50_000, seed=2006)
    csv_path = Path(tempfile.gettempdir()) / "outage_log.csv"
    write_trace_csv(raw_trace, csv_path)
    trace = read_trace_csv(csv_path)
    print(f"Loaded {trace.num_events} outage records from {csv_path}")
    print(f"Anomalous rows (Time Between Events < Outage Duration): "
          f"{trace.anomalous_fraction:.1%} - dropped")

    # --- 2. clean and derive period samples ---
    cleaned = trace.cleaned()
    operative = cleaned.operative_periods()
    inoperative = cleaned.inoperative_periods()
    print(f"Mean operative period   : {operative.mean():.2f}")
    print(f"Mean inoperative period : {inoperative.mean():.4f}")
    print()

    # --- 3. fit and test distributions for the operative periods ---
    moments = estimate_moments(operative, 3)
    density = EmpiricalDensity.from_observations(operative, num_bins=50, upper=250.0)

    exponential_fit = fit_exponential(moments)
    exponential_ks = ks_test_grid(density, exponential_fit.cdf)
    print("Exponential hypothesis for operative periods:")
    print(f"  D = {exponential_ks.statistic:.4f}  "
          f"(5% critical value {exponential_ks.critical_value(0.05):.4f})  "
          f"-> {'accepted' if exponential_ks.passes(0.05) else 'REJECTED'}")

    hyper_fit = fit_two_phase_from_moments(moments).distribution
    hyper_ks = ks_test_grid(density, hyper_fit.cdf)
    print("2-phase hyperexponential fit:")
    print(f"  weights = {[round(float(w), 4) for w in hyper_fit.weights]}, "
          f"rates = {[round(float(r), 4) for r in hyper_fit.rates]}")
    print(f"  D = {hyper_ks.statistic:.4f}  "
          f"-> {'accepted' if hyper_ks.passes(0.05) else 'rejected'} at 5%")
    print()

    # --- 4. feed the fitted distributions into the queueing model ---
    # With the observed repair times (mean ~0.08) availability is so high that
    # the distribution of operative periods barely matters.  The planning
    # question where it does matter (paper Figure 7) is a what-if with slower
    # repairs — e.g. rolling upgrades that keep a failed server out for a few
    # service times — so that is the scenario evaluated here.
    what_if_repair_mean = 5.0
    repair = Exponential.from_mean(what_if_repair_mean)
    realistic = UnreliableQueueModel(
        num_servers=10,
        arrival_rate=8.0,
        service_rate=1.0,
        operative=hyper_fit,
        inoperative=repair,
    )
    naive = realistic.with_periods(operative=Exponential.from_mean(float(operative.mean())))

    realistic_solution = realistic.solve_spectral()
    naive_solution = naive.solve_spectral()
    print(
        "What-if: 10 servers, arrival rate 8.0, repairs slowed to a mean of "
        f"{what_if_repair_mean} (planned-maintenance scenario):"
    )
    print(f"  fitted hyperexponential periods : L = {realistic_solution.mean_queue_length:.2f}, "
          f"W = {realistic_solution.mean_response_time:.3f}")
    print(f"  exponential periods (same mean) : L = {naive_solution.mean_queue_length:.2f}, "
          f"W = {naive_solution.mean_response_time:.3f}")
    print(
        "  -> assuming exponential operative periods would underestimate the mean "
        f"response time by {realistic_solution.mean_response_time / naive_solution.mean_response_time:.2f}x"
    )


if __name__ == "__main__":
    main()
