"""Exact solution vs geometric approximation vs simulation across the load range.

The paper proposes the geometric approximation (Section 3.2) for systems too
large for the exact spectral expansion, and validates it under heavy load
(Figure 8).  This example cross-checks all three evaluation routes the library
offers on one configuration and shows where the approximation can and cannot
be trusted.

Run with:

    python examples/approximation_and_simulation.py
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.queueing import sun_fitted_model

NUM_SERVERS = 6
LOADS = (0.70, 0.85, 0.95, 0.99)
SIMULATION_HORIZON = 40_000.0


def main() -> None:
    template = sun_fitted_model(num_servers=NUM_SERVERS, arrival_rate=1.0)
    capacity = template.mean_operative_servers

    rows = []
    for load in LOADS:
        model = template.with_arrival_rate(load * capacity)
        exact = model.solve_spectral()
        approximate = model.solve_geometric()
        simulated = model.simulate(horizon=SIMULATION_HORIZON, seed=7, num_batches=10)
        rows.append(
            (
                load,
                exact.mean_queue_length,
                approximate.mean_queue_length,
                simulated.mean_queue_length.estimate,
                simulated.mean_queue_length.half_width,
                abs(approximate.mean_queue_length - exact.mean_queue_length)
                / exact.mean_queue_length,
            )
        )

    print(
        format_table(
            (
                "load",
                "L exact",
                "L geometric",
                "L simulated",
                "sim 95% half-width",
                "approx rel. error",
            ),
            rows,
            title=f"Mean queue length with {NUM_SERVERS} unreliable servers",
        )
    )
    print()
    print(
        "The geometric approximation underestimates the queue at moderate load "
        "but converges to the exact solution as the load approaches saturation "
        "(the paper's Figure 8); the simulation confirms the exact values "
        "within its confidence interval throughout."
    )


if __name__ == "__main__":
    main()
