"""Tour of the solver service: queries, coalescing, backpressure, stats.

Embeds a :class:`~repro.service.ThreadedService` in-process (the same server
``repro serve`` runs standalone), then demonstrates the serving features one
by one: the three query kinds, cache-accelerated repeats, single-flight
coalescing of a burst of identical requests, a deliberately missed deadline,
and the ``/stats`` observability payload.

Run with::

    PYTHONPATH=src python examples/service_client.py

Against a standalone server instead::

    PYTHONPATH=src python -m repro serve --port 8080
    curl -s -X POST http://127.0.0.1:8080/solve \
        -d '{"model": {"servers": 10, "arrival_rate": 7.0}}'
"""

from __future__ import annotations

import asyncio

from repro.service import (
    AsyncServiceClient,
    ServiceClient,
    ServiceConfig,
    ThreadedService,
)


def query_each_kind(client: ServiceClient) -> None:
    print("== one query of each kind ==")
    queries = [
        {"model": {"servers": 10, "arrival_rate": 7.0}},
        {"query": "scenario", "preset": "two-speed-cluster"},
        {
            "query": "transient",
            "model": {"servers": 4, "arrival_rate": 2.0},
            "times": [1.0, 5.0, 25.0],
        },
    ]
    for query in queries:
        payload = client.solve_ok(query)
        metrics = payload["metrics"]
        headline = metrics.get("mean_queue_length")
        print(
            f"  {payload['query']:>12} -> solver={payload['solver']:<9} "
            f"L={headline:8.4f}  ({payload['elapsed_ms']:.1f} ms)"
        )
    repeat = client.solve_ok(queries[0])
    print(f"  repeat of the first query: cached={repeat['cached']}")


def burst_of_identical_requests(service: ThreadedService) -> None:
    print("\n== single-flight: 50 identical concurrent requests ==")
    request = {"model": {"servers": 8, "arrival_rate": 5.5}, "solvers": ["ctmc"]}

    async def burst():
        client = AsyncServiceClient(service.host, service.port)
        return await asyncio.gather(*(client.solve(request) for _ in range(50)))

    responses = asyncio.run(burst())
    coalesced = sum(response.payload["coalesced"] for response in responses)
    print(f"  {len(responses)} answers, {coalesced} coalesced onto one computation")


def missed_deadline(client: ServiceClient) -> None:
    print("\n== a deadline the simulator cannot meet ==")
    response = client.solve(
        {
            "model": {"servers": 5, "arrival_rate": 3.0},
            "solvers": ["simulate"],
            "simulate": {"horizon": 30000.0},
            "deadline": 0.01,
        }
    )
    error = response.payload["error"]
    print(f"  HTTP {response.status}: error.code={error['code']!r}")
    print("  (the solve still completes in the background and lands in the cache)")


def service_stats(client: ServiceClient) -> None:
    print("\n== /stats ==")
    payload = client.stats().payload
    scheduler = payload["scheduler"]
    cache = scheduler["cache"]
    print(
        f"  requests={scheduler['requests_total']}  "
        f"coalesced={scheduler['coalesced_total']}  "
        f"batches={scheduler['batches_total']}  "
        f"rejected={scheduler['rejected_total']}"
    )
    print(
        f"  cache: solves={cache['solves']}  hits={cache['hits']}  "
        f"hit_rate={cache['hit_rate']:.2f}  size={cache['size']}"
    )


def main() -> None:
    with ThreadedService(ServiceConfig(port=0, batch_window=0.01)) as service:
        print(f"service listening on {service.address}\n")
        with ServiceClient(service.host, service.port) as client:
            query_each_kind(client)
            burst_of_identical_requests(service)
            missed_deadline(client)
            service_stats(client)


if __name__ == "__main__":
    main()
