"""Tour of the transient subsystem: trajectories, first passage, time sweeps.

Steady-state analysis answers "what does the system look like eventually";
this example walks the time-dependent side of the library:

1. queue build-up and point availability ``A(t)`` for every scenario preset,
   with the analytical uniformization trajectory cross-validated against an
   ensemble of simulation replications (the same check the tests enforce);
2. a "rack just failed" study: the availability ramp from an all-down start
   against the all-operative start, on the paper's homogeneous model;
3. first-passage laws: time to "all servers down" and time until the backlog
   exceeds a threshold, per repair-crew size;
4. a sweep crossing a parameter axis with a :class:`~repro.sweeps.TimeGridAxis`.

Run with::

    PYTHONPATH=src python examples/transient_gallery.py

The same analyses are available from the command line::

    PYTHONPATH=src python -m repro transient --preset two-speed-cluster --times 1,5,20
    PYTHONPATH=src python -m repro transient --servers 10 --arrival-rate 7 \
        --first-passage queue-exceeds --queue-threshold 20
"""

from __future__ import annotations

from repro.queueing import sun_fitted_model
from repro.scenarios import preset_names, scenario_preset
from repro.sweeps import SweepRunner, SweepSpec, TimeGridAxis
from repro.transient import first_passage_time, simulate_transient, solve_transient

GRID = (1.0, 2.0, 5.0, 10.0, 20.0)


def gallery_trajectories() -> None:
    """Analytical L(t) per preset, checked against the simulation ensemble."""
    print(f"{'preset':>26}  {'t':>5}  {'L(t)':>8}  {'sim 95% CI':>18}  {'A(t)':>7}")
    for name in preset_names():
        scenario = scenario_preset(name)
        solution = solve_transient(scenario, GRID)
        ensemble = simulate_transient(scenario, GRID, num_replications=200, seed=2006)
        for index, t in enumerate(GRID):
            interval = ensemble.mean_queue_length[index]
            print(
                f"{name if index == 0 else '':>26}  {t:>5.1f}  "
                f"{solution.mean_queue_length[index]:>8.4f}  "
                f"[{interval.lower:>7.4f}, {interval.upper:>7.4f}]  "
                f"{solution.availability[index]:>7.4f}"
            )


def rack_failure_ramp() -> None:
    """Availability recovery from an all-down start vs the fresh-cluster start."""
    model = sun_fitted_model(num_servers=10, arrival_rate=7.0)
    times = (0.01, 0.05, 0.1, 0.2, 0.5, 1.0)
    fresh = solve_transient(model, times)
    failed = solve_transient(model, times, initial="empty-inoperative")
    print(f"\n{'t':>6}  {'A(t) fresh':>10}  {'A(t) all-down':>13}")
    for index, t in enumerate(times):
        print(
            f"{t:>6.2f}  {fresh.availability[index]:>10.4f}  "
            f"{failed.availability[index]:>13.4f}"
        )


def first_passage_study() -> None:
    """First-passage laws under repair-crew starvation."""
    times = (10.0, 50.0, 200.0)
    print(f"\n{'R':>3}  {'mean T(all down)':>17}  " + "  ".join(f"F({t:g})" for t in times))
    base = scenario_preset("single-repairman")
    for crew in (1, 2, 3):
        passage = first_passage_time(
            base.with_repair_capacity(crew), times, target="all-servers-down"
        )
        cdf = "  ".join(f"{value:6.4f}" for value in passage.cdf)
        print(f"{crew:>3}  {passage.mean:>17.2f}  {cdf}")

    threshold = 8
    passage = first_passage_time(
        sun_fitted_model(num_servers=4, arrival_rate=2.8),
        times,
        target="queue-exceeds",
        queue_threshold=threshold,
    )
    print(
        f"\nhomogeneous N=4, lambda=2.8: mean time until Q > {threshold}: "
        f"{passage.mean:.2f} (F({times[-1]:g}) = {passage.cdf[-1]:.4f})"
    )


def time_parameter_sweep() -> None:
    """Cross a repair-capacity axis with a time axis in one sweep."""
    spec = SweepSpec(
        base_model=scenario_preset("two-speed-cluster"),
        axes=[("repair_capacity", (1, 4)), TimeGridAxis((2.0, 10.0))],
        name="transient-crew-sweep",
    )
    results = SweepRunner().run(spec)
    print(f"\n{'R':>3}  {'t':>5}  {'L(t)':>8}  {'A(t)':>7}")
    for row in results:
        print(
            f"{row.parameters['repair_capacity']:>3}  {row.parameters['time']:>5.1f}  "
            f"{row.metric('mean_queue_length'):>8.4f}  {row.metric('availability'):>7.4f}"
        )


def main() -> None:
    print("Transient gallery")
    print("=================")
    gallery_trajectories()
    rack_failure_ramp()
    first_passage_study()
    time_parameter_sweep()


if __name__ == "__main__":
    main()
