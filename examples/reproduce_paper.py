"""Reproduce every experiment of the paper and print a consolidated report.

Runs the Section-2 trace analysis (Figures 3–4) and all Section-4 numerical
experiments (Figures 5–9) and prints the series each figure plots.  Pass
``--quick`` to use reduced parameter grids (a couple of minutes instead of
roughly ten).

Run with:

    python examples/reproduce_paper.py [--quick] [--output report.md]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import render_report, run_all_experiments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced parameter grids so the run finishes in a couple of minutes",
    )
    parser.add_argument(
        "--skip-section2",
        action="store_true",
        help="skip the (slower) Section-2 trace analysis",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="optional path to also write the report to (markdown-friendly text)",
    )
    arguments = parser.parse_args()

    reports = run_all_experiments(
        include_section2=not arguments.skip_section2,
        quick=arguments.quick,
    )
    rendered = render_report(reports)
    print(rendered)

    if arguments.output is not None:
        arguments.output.write_text(rendered + "\n")
        print(f"\nReport written to {arguments.output}")


if __name__ == "__main__":
    main()
