"""Quickstart: evaluate a cluster of unreliable servers in a few lines.

The scenario is the paper's running example: a service-provisioning cluster
(web-service / grid style) where jobs arrive in a Poisson stream, each server
serves one job at a time, and servers intermittently fail and get repaired.
Operative periods follow the hyperexponential distribution fitted to the Sun
Microsystems breakdown trace; repairs are exponential with mean 0.04 time
units.

Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import UnreliableQueueModel
from repro.distributions import SUN_OPERATIVE_FIT, Exponential
from repro.queueing import mmc_metrics


def main() -> None:
    model = UnreliableQueueModel(
        num_servers=10,
        arrival_rate=7.0,      # jobs per time unit
        service_rate=1.0,      # mean service time = 1
        operative=SUN_OPERATIVE_FIT,
        inoperative=Exponential(rate=25.0),
    )

    print("Model")
    print("-----")
    print(f"servers                     : {model.num_servers}")
    print(f"offered load (lambda/mu)    : {model.offered_load:.3f}")
    print(f"server availability         : {model.availability:.4f}")
    print(f"average operative servers   : {model.mean_operative_servers:.3f}")
    print(f"stable (paper Eq. 11)       : {model.is_stable}")
    print(f"operational modes s         : {model.num_modes}")
    print()

    # Exact solution by spectral expansion (paper Section 3.1).
    exact = model.solve_spectral()
    print("Exact spectral-expansion solution")
    print("---------------------------------")
    print(f"mean jobs in system  L      : {exact.mean_queue_length:.4f}")
    print(f"mean response time   W      : {exact.mean_response_time:.4f}")
    print(f"P(system empty)             : {exact.probability_empty:.4f}")
    print(f"P(arriving job must wait)   : {exact.probability_delay:.4f}")
    print(f"90th percentile of queue    : {exact.queue_length_quantile(0.9)}")
    print(f"queue-length decay rate z_s : {exact.decay_rate:.4f}")
    print()

    # Heavy-load geometric approximation (paper Section 3.2).
    approximate = model.solve_geometric()
    print("Geometric approximation")
    print("-----------------------")
    print(f"mean jobs in system  L      : {approximate.mean_queue_length:.4f}")
    print(f"mean response time   W      : {approximate.mean_response_time:.4f}")
    print()

    # What a reliability-blind M/M/c model would have predicted.
    naive = mmc_metrics(model.num_servers, model.arrival_rate, model.service_rate)
    print("Reliability-blind M/M/c baseline")
    print("--------------------------------")
    print(f"mean jobs in system  L      : {naive.mean_queue_length:.4f}")
    print(f"mean response time   W      : {naive.mean_response_time:.4f}")
    print()
    penalty = exact.mean_response_time / naive.mean_response_time
    print(
        "With the Sun repair times (mean 0.04) availability is 99.9%, so "
        f"breakdowns cost only a factor {penalty:.2f} in response time here."
    )
    print()

    # The same cluster with slow repairs (mean repair time 2): now the
    # breakdown model matters, and so does the operative-period variability.
    degraded = model.with_periods(inoperative=Exponential(rate=0.5))
    degraded_solution = degraded.solve_spectral()
    print("Same cluster with slow repairs (mean repair time 2.0)")
    print("------------------------------------------------------")
    print(f"server availability         : {degraded.availability:.4f}")
    print(f"mean response time   W      : {degraded_solution.mean_response_time:.4f}")
    print(
        "Ignoring breakdowns would now underestimate the response time by a "
        f"factor of {degraded_solution.mean_response_time / naive.mean_response_time:.2f}."
    )


if __name__ == "__main__":
    main()
