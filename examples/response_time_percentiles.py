"""Response-time percentiles — tackling the paper's open problem.

The paper's conclusions point out that the spectral-expansion solution yields
the distribution of the queue *size* and hence the mean response time, but not
the distribution (e.g. the 90th percentile) of the response time itself.  This
example shows the two answers the library provides: an empirical distribution
from the discrete-event simulator, and a closed-form heavy-traffic estimate.

Run with:

    python examples/response_time_percentiles.py
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.extensions import (
    fcfs_exponential_capacity_bound,
    simulated_response_time_distribution,
)
from repro.queueing import sun_fitted_model

NUM_SERVERS = 10
ARRIVAL_RATES = (7.0, 8.5, 9.5)
HORIZON = 60_000.0


def main() -> None:
    rows = []
    for arrival_rate in ARRIVAL_RATES:
        model = sun_fitted_model(num_servers=NUM_SERVERS, arrival_rate=arrival_rate)
        exact_mean = model.solve_spectral().mean_response_time
        simulated = simulated_response_time_distribution(model, horizon=HORIZON, seed=17)
        heavy_traffic_p90 = fcfs_exponential_capacity_bound(model, 0.9)
        rows.append(
            (
                arrival_rate,
                exact_mean,
                simulated.mean,
                simulated.quantile(0.5),
                simulated.percentile_90,
                simulated.quantile(0.99),
                heavy_traffic_p90,
            )
        )

    print(
        format_table(
            (
                "lambda",
                "W mean (exact)",
                "W mean (sim)",
                "W p50 (sim)",
                "W p90 (sim)",
                "W p99 (sim)",
                "W p90 (heavy-traffic est.)",
            ),
            rows,
            title=f"Response-time percentiles with {NUM_SERVERS} unreliable servers",
        )
    )
    print()
    print(
        "The simulated mean confirms the exact (Little's law) value; the "
        "percentiles answer the paper's open question empirically, and the "
        "closed-form heavy-traffic estimate becomes usable as the load grows."
    )


if __name__ == "__main__":
    main()
