"""Capacity planning for a hosting provider with unreliable servers.

The paper's introduction poses three planning questions; this example answers
all of them for a concrete scenario, and contrasts the breakdown-aware answer
with the classical Erlang-C answer that assumes perfectly reliable servers.

Scenario: a hosting provider receives 8 jobs per time unit (mean service time
1), servers follow the Sun-trace operative-period distribution, repairs are
slow (2 time units on average, e.g. a full reboot plus health checks),
holding a job costs 4 per unit time and running a server costs 1 per unit
time, and the provider has promised a mean response time of at most 1.25.

Run with:

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.optimization import (
    cost_curve,
    minimum_servers_for_response_time,
    minimum_stable_servers,
    optimal_server_count,
)
from repro.queueing import mmc_metrics, sun_fitted_model

ARRIVAL_RATE = 8.0
MEAN_REPAIR_TIME = 2.0
HOLDING_COST = 4.0
SERVER_COST = 1.0
RESPONSE_TIME_TARGET = 1.25


def main() -> None:
    base_model = sun_fitted_model(
        num_servers=10, arrival_rate=ARRIVAL_RATE, repair_rate=1.0 / MEAN_REPAIR_TIME
    )

    # Question 1: how many servers are needed for the queue to be stable at all?
    minimum = minimum_stable_servers(base_model)
    print(f"Smallest stable number of servers (Eq. 11): {minimum}")
    print()

    # Question 2: what is the cost-optimal number of servers (Eq. 22)?
    curve = cost_curve(
        base_model,
        server_counts=range(minimum + 1, minimum + 10),
        holding_cost=HOLDING_COST,
        server_cost=SERVER_COST,
    )
    print(
        format_table(
            ("N", "mean jobs L", "cost C = c1 L + c2 N"),
            [(p.num_servers, p.mean_queue_length, p.cost) for p in curve.points],
            title="Cost as a function of the number of servers",
        )
    )
    best = optimal_server_count(
        base_model, holding_cost=HOLDING_COST, server_cost=SERVER_COST
    )
    print(f"\nCost-optimal number of servers: {best.num_servers} "
          f"(cost {best.cost:.2f}, mean jobs {best.mean_queue_length:.2f})")
    print()

    # Question 3: what is the minimum N meeting the response-time promise?
    sizing = minimum_servers_for_response_time(
        base_model, target_response_time=RESPONSE_TIME_TARGET
    )
    print(
        format_table(
            ("N", "mean response time W", "meets target"),
            [
                (p.num_servers, p.mean_response_time, p.meets_target)
                for p in sizing.evaluations
            ],
            title=f"Sizing for W <= {RESPONSE_TIME_TARGET}",
        )
    )
    print(f"\nServers required for W <= {RESPONSE_TIME_TARGET}: {sizing.required_servers}")
    print()

    # What a reliability-blind plan (plain M/M/c) would have said for the
    # same response-time promise.
    naive_servers = None
    for candidate in range(int(ARRIVAL_RATE) + 1, 100):
        if mmc_metrics(candidate, ARRIVAL_RATE, 1.0).mean_response_time <= RESPONSE_TIME_TARGET:
            naive_servers = candidate
            break
    print(
        f"A reliability-blind M/M/c plan would provision {naive_servers} servers "
        f"for the same promise; with breakdowns and slow repairs the model shows "
        f"{sizing.required_servers} are needed."
    )


if __name__ == "__main__":
    main()
