"""Tests for :mod:`repro.analysis`: the rule set, suppressions, registry and CLI.

Each built-in rule gets at least one *trigger* fixture (the rule must fire)
and one *near-miss* fixture (a superficially similar construct the rule must
NOT fire on).  Scoped rules (RPR003, RPR006) are exercised through the
``module=`` override of :func:`repro.analysis.analyze_source`, so fixtures
never need to live at magic paths.  The suite also pins the PR 2
cache-collision bug class as a regression: re-introducing a ``Distribution``
subclass without ``parameter_key()`` must be caught by RPR002.
"""

from __future__ import annotations

import ast
import json
import textwrap
from collections.abc import Iterator
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisError,
    AnalysisReport,
    BUILTIN_RULE_IDS,
    Finding,
    LintRule,
    ModuleContext,
    RuleRegistry,
    SuppressionIndex,
    analyze_paths,
    analyze_source,
    builtin_rules,
    default_registry,
    iter_python_files,
    module_name_for,
    register_rule,
    suppressed_rules,
    unregister_rule,
)
from repro.cli import main as cli_main
from repro.exceptions import ParameterError

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(source: str, module: str = "fixture") -> list[Finding]:
    """Run the full default rule set over a dedented fixture."""
    return analyze_source(textwrap.dedent(source), module=module)


def fired(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings}


# --------------------------------------------------------------------------- #
# RPR001 — blocking calls inside async def
# --------------------------------------------------------------------------- #


class TestBlockingCallRule:
    def test_time_sleep_in_async_def_fires(self) -> None:
        findings = lint(
            """
            import time

            async def handler():
                time.sleep(1.0)
            """
        )
        assert fired(findings) == {"RPR001"}
        assert "time.sleep" in findings[0].message

    def test_from_import_does_not_evade(self) -> None:
        findings = lint(
            """
            from time import sleep

            async def handler():
                sleep(0.5)
            """
        )
        assert fired(findings) == {"RPR001"}

    def test_subprocess_alias_fires(self) -> None:
        findings = lint(
            """
            import subprocess as sp

            async def handler():
                sp.run(["ls"])
            """
        )
        assert fired(findings) == {"RPR001"}

    def test_sync_solver_facade_fires(self) -> None:
        findings = lint(
            """
            from repro.solvers import solve_many

            async def handler(models):
                return solve_many(models)
            """
        )
        assert fired(findings) == {"RPR001"}

    def test_open_and_file_io_methods_fire(self) -> None:
        findings = lint(
            """
            async def handler(path):
                with open(path) as fh:
                    data = fh.read()
                return path.read_text()
            """
        )
        assert [finding.rule for finding in findings] == ["RPR001", "RPR001"]

    def test_sync_function_is_not_flagged(self) -> None:
        findings = lint(
            """
            import time

            def handler():
                time.sleep(1.0)
            """
        )
        assert findings == []

    def test_nested_sync_helper_inside_async_is_not_flagged(self) -> None:
        findings = lint(
            """
            import time

            async def handler():
                def run_off_loop():
                    time.sleep(1.0)
                return run_off_loop
            """
        )
        assert findings == []

    def test_asyncio_sleep_is_not_flagged(self) -> None:
        findings = lint(
            """
            import asyncio

            async def handler():
                await asyncio.sleep(1.0)
            """
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# RPR002 — Distribution subclass without parameter_key (the PR 2 bug class)
# --------------------------------------------------------------------------- #


class TestDistributionParameterKeyRule:
    def test_subclass_without_parameter_key_fires(self) -> None:
        findings = lint(
            """
            from repro.distributions import Distribution

            class Weird(Distribution):
                def mean(self):
                    return 1.0
            """
        )
        assert fired(findings) == {"RPR002"}
        assert "Weird" in findings[0].message

    def test_subclass_with_parameter_key_is_clean(self) -> None:
        findings = lint(
            """
            from repro.distributions import Distribution

            class Fine(Distribution):
                def parameter_key(self):
                    return ("fine",)
            """
        )
        assert findings == []

    def test_transitive_subclass_is_flagged(self) -> None:
        findings = lint(
            """
            from repro.distributions import Distribution

            class Base(Distribution):
                def parameter_key(self):
                    return ("base",)

            class Leaf(Base):
                pass
            """
        )
        # Leaf inherits parameter_key from the in-module Base: clean.
        assert findings == []

    def test_transitive_subclass_without_key_anywhere_fires_once_per_class(self) -> None:
        findings = lint(
            """
            from repro.distributions import Distribution

            class Base(Distribution):
                pass

            class Leaf(Base):
                pass
            """
        )
        assert [finding.rule for finding in findings] == ["RPR002", "RPR002"]

    def test_unrelated_class_is_not_flagged(self) -> None:
        findings = lint(
            """
            class NotADistribution:
                pass
            """
        )
        assert findings == []

    def test_reintroducing_the_pr2_bug_is_caught(self) -> None:
        """Regression pin: the PR 2 cache-collision bug class.

        PR 2 fixed solution-cache collisions caused by distributions whose
        cache identity fell back to ``repr``.  Re-introducing such a subclass
        — here a ``Deterministic`` look-alike with parameters but no
        ``parameter_key()`` — must be caught by RPR002.
        """
        findings = lint(
            """
            from repro.distributions import Distribution

            class Deterministic2(Distribution):
                def __init__(self, value):
                    self._value = value

                def mean(self):
                    return self._value

                def scv(self):
                    return 0.0
            """
        )
        assert fired(findings) == {"RPR002"}
        assert "cache" in findings[0].message


# --------------------------------------------------------------------------- #
# RPR003 — float-literal equality in numerical modules
# --------------------------------------------------------------------------- #

FLOAT_EQ_FIXTURE = """
def classify(scv):
    if scv == 0.25:
        return "quarter"
    return "other"
"""

FLOAT_SENTINEL_FIXTURE = """
def classify(scv, rate):
    if scv == 0.0 or scv == 1.0 or rate != -1.0:
        return "sentinel"
    return "other"
"""


class TestFloatEqualityRule:
    def test_non_sentinel_literal_in_numerical_module_fires(self) -> None:
        findings = lint(FLOAT_EQ_FIXTURE, module="repro.markov.environment")
        assert fired(findings) == {"RPR003"}
        assert "0.25" in findings[0].message

    def test_sentinel_values_are_exempt(self) -> None:
        findings = lint(FLOAT_SENTINEL_FIXTURE, module="repro.distributions.fixture")
        assert findings == []

    def test_rule_is_scoped_to_numerical_packages(self) -> None:
        # The identical comparison outside the numerical core is not flagged.
        findings = lint(FLOAT_EQ_FIXTURE, module="repro.experiments.figure6")
        assert findings == []

    def test_negated_literal_is_unwrapped(self) -> None:
        findings = lint(
            """
            def check(x):
                return x == -0.5
            """,
            module="repro.queueing.model",
        )
        assert fired(findings) == {"RPR003"}

    def test_integer_equality_is_not_flagged(self) -> None:
        findings = lint(
            """
            def check(n):
                return n == 3
            """,
            module="repro.queueing.model",
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# RPR004 — solver backends touching scenarios without a declared contract
# --------------------------------------------------------------------------- #


class TestScenarioContractRule:
    def test_undeclared_scenario_branching_fires(self) -> None:
        findings = lint(
            """
            from repro.solvers.base import Solver
            from repro.solvers.backends import is_scenario_model

            class HalfBaked(Solver):
                name = "half-baked"

                def solve(self, model, **options):
                    if is_scenario_model(model):
                        return None
                    return model.solve_spectral()

                def metrics(self, solution):
                    return {}
            """
        )
        assert fired(findings) == {"RPR004"}
        assert "HalfBaked" in findings[0].message

    def test_declared_supports_scenarios_is_clean(self) -> None:
        findings = lint(
            """
            from repro.solvers.base import Solver
            from repro.solvers.backends import is_scenario_model

            class Declared(Solver):
                name = "declared"
                supports_scenarios = True

                def solve(self, model, **options):
                    if is_scenario_model(model):
                        return model.solve_ctmc()
                    return model.solve_spectral()

                def metrics(self, solution):
                    return {}
            """
        )
        assert findings == []

    def test_raising_unsupported_scenario_error_is_clean(self) -> None:
        findings = lint(
            """
            from repro.exceptions import UnsupportedScenarioError
            from repro.solvers.base import Solver
            from repro.solvers.backends import is_scenario_model

            class Refusing(Solver):
                name = "refusing"

                def solve(self, model, **options):
                    if is_scenario_model(model):
                        raise UnsupportedScenarioError("homogeneous only")
                    return model.solve_spectral()

                def metrics(self, solution):
                    return {}
            """
        )
        assert findings == []

    def test_contract_inherited_from_in_module_base_is_clean(self) -> None:
        findings = lint(
            """
            from repro.solvers.base import Solver
            from repro.solvers.backends import is_scenario_model

            class Base(Solver):
                supports_scenarios = False

            class Leaf(Base):
                name = "leaf"

                def solve(self, model, **options):
                    if is_scenario_model(model):
                        return None
                    return model.solve_spectral()

                def metrics(self, solution):
                    return {}
            """
        )
        assert findings == []

    def test_non_solver_class_is_not_flagged(self) -> None:
        findings = lint(
            """
            class Router:
                def solve(self, model):
                    return getattr(model, "is_scenario", False)
            """
        )
        assert findings == []

    def test_solver_not_touching_scenarios_is_not_flagged(self) -> None:
        findings = lint(
            """
            from repro.solvers.base import Solver

            class Plain(Solver):
                name = "plain"

                def solve(self, model, **options):
                    return model.solve_spectral()

                def metrics(self, solution):
                    return {}
            """
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# RPR005 — duplicate / unstable service error codes
# --------------------------------------------------------------------------- #


class TestErrorCodeStabilityRule:
    def test_duplicate_codes_fire(self) -> None:
        findings = lint(
            """
            class ServiceError(Exception):
                code = "internal"

            class QueueFullError(ServiceError):
                code = "queue-full"

            class BackpressureError(ServiceError):
                code = "queue-full"
            """
        )
        assert fired(findings) == {"RPR005"}
        assert "duplicates" in findings[0].message

    def test_computed_code_fires(self) -> None:
        findings = lint(
            """
            PREFIX = "queue"

            class ServiceError(Exception):
                code = "internal"

            class QueueFullError(ServiceError):
                code = PREFIX + "-full"
            """
        )
        assert fired(findings) == {"RPR005"}
        assert "runtime" in findings[0].message

    def test_non_kebab_code_fires(self) -> None:
        findings = lint(
            """
            class ServiceError(Exception):
                code = "internal"

            class BadJson(ServiceError):
                code = "Bad_JSON"
            """
        )
        assert fired(findings) == {"RPR005"}
        assert "kebab" in findings[0].message

    def test_unique_literal_codes_are_clean(self) -> None:
        findings = lint(
            """
            class ServiceError(Exception):
                code = "internal"

            class QueueFullError(ServiceError):
                code = "queue-full"

            class BadJsonError(ServiceError):
                code = "bad-json"
            """
        )
        assert findings == []

    def test_codes_outside_the_service_error_family_are_ignored(self) -> None:
        findings = lint(
            """
            class HttpResponse:
                code = "Not A Wire Code"
            """
        )
        assert findings == []

    def test_real_service_errors_module_is_clean_and_codes_unique(self) -> None:
        errors_path = REPO_ROOT / "src" / "repro" / "service" / "errors.py"
        source = errors_path.read_text(encoding="utf-8")
        findings = analyze_source(source, path=str(errors_path))
        assert [f for f in findings if f.rule == "RPR005"] == []


# --------------------------------------------------------------------------- #
# RPR006 — swallowed cancellation / bare except in the service layer
# --------------------------------------------------------------------------- #

SWALLOWED_FIXTURE = """
import asyncio

async def worker(queue):
    try:
        await queue.get()
    except asyncio.CancelledError:
        pass
"""


class TestSwallowedCancellationRule:
    def test_swallowed_cancelled_error_fires(self) -> None:
        findings = lint(SWALLOWED_FIXTURE, module="repro.service.worker")
        assert fired(findings) == {"RPR006"}

    def test_rule_is_scoped_to_service_modules(self) -> None:
        findings = lint(SWALLOWED_FIXTURE, module="repro.solvers.facade")
        assert findings == []

    def test_bare_except_fires(self) -> None:
        findings = lint(
            """
            def read(path):
                try:
                    return path.read_text()
                except:
                    return None
            """,
            module="repro.service.util",
        )
        assert fired(findings) == {"RPR006"}
        assert "bare" in findings[0].message

    def test_base_exception_in_tuple_fires(self) -> None:
        findings = lint(
            """
            async def run(task):
                try:
                    await task
                except (ValueError, BaseException):
                    return None
            """,
            module="repro.service.runner",
        )
        assert fired(findings) == {"RPR006"}

    def test_reraising_handler_is_clean(self) -> None:
        findings = lint(
            """
            import asyncio

            async def worker(queue, writer):
                try:
                    await queue.get()
                except asyncio.CancelledError:
                    writer.close()
                    raise
            """,
            module="repro.service.worker",
        )
        assert findings == []

    def test_except_exception_is_not_flagged(self) -> None:
        # `except Exception` does not capture CancelledError (3.8+): fine.
        findings = lint(
            """
            async def worker(queue):
                try:
                    await queue.get()
                except Exception:
                    return None
            """,
            module="repro.service.worker",
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# RPR007 — mutable default arguments
# --------------------------------------------------------------------------- #


class TestMutableDefaultRule:
    def test_list_literal_default_fires(self) -> None:
        findings = lint(
            """
            def collect(item, bucket=[]):
                bucket.append(item)
                return bucket
            """
        )
        assert fired(findings) == {"RPR007"}
        assert "'bucket'" in findings[0].message

    def test_keyword_only_dict_default_fires(self) -> None:
        findings = lint(
            """
            def configure(*, overrides={}):
                return overrides
            """
        )
        assert fired(findings) == {"RPR007"}

    def test_constructor_call_default_fires(self) -> None:
        findings = lint(
            """
            from collections import deque

            def buffer(items=deque()):
                return items
            """
        )
        assert fired(findings) == {"RPR007"}

    def test_none_and_immutable_defaults_are_clean(self) -> None:
        findings = lint(
            """
            def configure(bucket=None, order=("spectral", "geometric"), name="x"):
                return bucket, order, name
            """
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# RPR008 — dense generator allocation on a CTMC hot path
# --------------------------------------------------------------------------- #


class TestDenseGeneratorRule:
    def test_square_num_modes_allocation_fires(self) -> None:
        findings = lint(
            """
            import numpy as np

            def build(self):
                return np.zeros((self.num_modes, self.num_modes))
            """,
            module="repro.markov.fixture",
        )
        assert fired(findings) == {"RPR008"}
        assert "sparsely" in findings[0].message

    def test_bare_name_and_other_allocators_fire(self) -> None:
        findings = lint(
            """
            from numpy import empty

            def build(num_states):
                return empty((num_states, num_states))
            """,
            module="repro.scenarios.fixture",
        )
        assert fired(findings) == {"RPR008"}

    def test_expression_over_a_global_count_fires(self) -> None:
        findings = lint(
            """
            import numpy as np

            def build(env, num_levels):
                size = 0  # noise
                return np.ones((env.num_modes * num_levels, env.num_modes * num_levels))
            """,
            module="repro.transient.fixture",
        )
        assert fired(findings) == {"RPR008"}

    def test_local_phase_dimensions_are_clean(self) -> None:
        findings = lint(
            """
            import numpy as np

            def local_block(n, m):
                return np.zeros((n + m, n + m))
            """,
            module="repro.markov.fixture",
        )
        assert findings == []

    def test_rectangular_allocations_are_clean(self) -> None:
        findings = lint(
            """
            import numpy as np

            def by_level(self):
                return np.zeros((self.num_levels, self.num_modes))
            """,
            module="repro.transient.fixture",
        )
        assert findings == []

    def test_outside_the_hot_packages_is_clean(self) -> None:
        findings = lint(
            """
            import numpy as np

            def build(self):
                return np.zeros((self.num_modes, self.num_modes))
            """,
            module="repro.service.fixture",
        )
        assert findings == []

    def test_noqa_opts_out_per_line(self) -> None:
        findings = lint(
            """
            import numpy as np

            def build(self):
                return np.zeros((self.num_modes, self.num_modes))  # repro: noqa RPR008
            """,
            module="repro.markov.fixture",
        )
        assert findings == []

    def test_numerical_core_is_clean(self) -> None:
        report = analyze_paths([str(REPO_ROOT / "src" / "repro" / "markov")])
        assert not any(finding.rule == "RPR008" for finding in report.findings)


# --------------------------------------------------------------------------- #
# RPR009 — multiprocessing primitives created inside async def
# --------------------------------------------------------------------------- #


class TestAsyncMultiprocessingRule:
    def test_pipe_in_async_def_fires(self) -> None:
        findings = lint(
            """
            import multiprocessing

            async def start_pool():
                parent, child = multiprocessing.Pipe()
                return parent, child
            """,
            module="repro.service.fixture",
        )
        assert fired(findings) == {"RPR009"}
        assert "run_in_executor" in findings[0].message

    def test_from_import_process_fires(self) -> None:
        findings = lint(
            """
            from multiprocessing import Process

            async def start_worker(target):
                worker = Process(target=target)
                worker.start()
                return worker
            """,
            module="repro.service.fixture",
        )
        assert fired(findings) == {"RPR009"}

    def test_module_alias_does_not_evade(self) -> None:
        findings = lint(
            """
            import multiprocessing as mp

            async def plumbing():
                return mp.Queue()
            """,
            module="repro.service.fixture",
        )
        assert fired(findings) == {"RPR009"}

    def test_sync_pool_helper_is_clean(self) -> None:
        findings = lint(
            """
            import multiprocessing

            def start_pool():
                return multiprocessing.Pipe()
            """,
            module="repro.service.fixture",
        )
        assert findings == []

    def test_outside_the_service_layer_is_clean(self) -> None:
        findings = lint(
            """
            import multiprocessing

            async def start_pool():
                return multiprocessing.Pipe()
            """,
            module="repro.solvers.fixture",
        )
        assert findings == []

    def test_opaque_context_objects_are_not_resolved(self) -> None:
        # Documented limitation: a context object is untrackable textually.
        findings = lint(
            """
            import multiprocessing

            async def start_pool():
                ctx = multiprocessing.get_context("spawn")
                return ctx.Pipe()
            """,
            module="repro.service.fixture",
        )
        assert findings == []

    def test_service_layer_is_clean(self) -> None:
        report = analyze_paths([str(REPO_ROOT / "src" / "repro" / "service")])
        assert not any(finding.rule == "RPR009" for finding in report.findings)


# --------------------------------------------------------------------------- #
# RPR010 — bare print() / root-logger calls in the service and obs layers
# --------------------------------------------------------------------------- #


class TestStructuredLoggingRule:
    def test_bare_print_in_service_fires(self) -> None:
        findings = lint(
            """
            def announce(url):
                print(f"serving on {url}")
            """,
            module="repro.service.fixture",
        )
        assert fired(findings) == {"RPR010"}
        assert "structured logger" in findings[0].message

    def test_root_logger_call_in_obs_fires(self) -> None:
        findings = lint(
            """
            import logging

            def emit(event):
                logging.info("event=%s", event)
            """,
            module="repro.obs.fixture",
        )
        assert fired(findings) == {"RPR010"}

    def test_from_import_root_logger_does_not_evade(self) -> None:
        findings = lint(
            """
            from logging import warning

            def emit(event):
                warning("event=%s", event)
            """,
            module="repro.service.fixture",
        )
        assert fired(findings) == {"RPR010"}

    def test_bound_structured_logger_is_clean(self) -> None:
        # Near miss: a bound logger call honours the configured format.
        findings = lint(
            """
            from repro.obs import get_logger

            logger = get_logger("repro.service")

            def emit(event):
                logger.info(event, shard=0)
            """,
            module="repro.service.fixture",
        )
        assert findings == []

    def test_get_logger_attribute_is_clean(self) -> None:
        # Near miss: logging.getLogger is configuration, not emission.
        findings = lint(
            """
            import logging

            def quiet():
                logging.getLogger("asyncio").setLevel(logging.WARNING)
            """,
            module="repro.service.fixture",
        )
        assert findings == []

    def test_print_outside_scoped_packages_is_clean(self) -> None:
        # Near miss: the CLI's tables are its user interface, not telemetry.
        findings = lint(
            """
            def render(rows):
                print(rows)
            """,
            module="repro.cli",
        )
        assert findings == []

    def test_service_and_obs_layers_are_clean(self) -> None:
        for package in ("service", "obs"):
            report = analyze_paths([str(REPO_ROOT / "src" / "repro" / package)])
            assert not any(finding.rule == "RPR010" for finding in report.findings)


# --------------------------------------------------------------------------- #
# RPR011 — time.time() used for duration measurement in the service/obs layers
# --------------------------------------------------------------------------- #


class TestWallClockDurationRule:
    def test_direct_subtraction_fires(self) -> None:
        findings = lint(
            """
            import time

            def elapsed(started):
                return time.time() - started
            """,
            module="repro.service.fixture",
        )
        assert fired(findings) == {"RPR011"}
        assert "monotonic" in findings[0].message

    def test_stamped_name_subtracted_later_fires(self) -> None:
        findings = lint(
            """
            import time

            def measure(work):
                started = time.time()
                work()
                return time.time() - started
            """,
            module="repro.obs.fixture",
        )
        assert fired(findings) == {"RPR011"}

    def test_aliased_import_does_not_evade(self) -> None:
        findings = lint(
            """
            from time import time

            def shrink(budget):
                budget -= time()
                return budget
            """,
            module="repro.service.fixture",
        )
        assert fired(findings) == {"RPR011"}

    def test_monotonic_arithmetic_is_clean(self) -> None:
        findings = lint(
            """
            import time

            def measure(work):
                started = time.perf_counter()
                work()
                return time.perf_counter() - started
            """,
            module="repro.service.fixture",
        )
        assert findings == []

    def test_wall_clock_timestamp_is_clean(self) -> None:
        # Near miss: a displayed stamp that is never subtracted is fine.
        findings = lint(
            """
            import time

            def stamp(trace):
                trace.started_at = time.time()
                return trace
            """,
            module="repro.obs.fixture",
        )
        assert findings == []

    def test_deadline_addition_is_clean(self) -> None:
        # Near miss: time.time() + ttl is an absolute deadline, not a duration.
        findings = lint(
            """
            import time

            def expires(ttl):
                return time.time() + ttl
            """,
            module="repro.service.fixture",
        )
        assert findings == []

    def test_outside_the_scoped_packages_is_clean(self) -> None:
        findings = lint(
            """
            import time

            def elapsed(started):
                return time.time() - started
            """,
            module="repro.markov.fixture",
        )
        assert findings == []

    def test_service_and_obs_layers_are_clean(self) -> None:
        for package in ("service", "obs"):
            report = analyze_paths([str(REPO_ROOT / "src" / "repro" / package)])
            assert not any(finding.rule == "RPR011" for finding in report.findings)


# --------------------------------------------------------------------------- #
# Suppression comments
# --------------------------------------------------------------------------- #


class TestSuppressions:
    def test_bare_noqa_suppresses_everything_on_the_line(self) -> None:
        findings = lint(
            """
            def collect(item, bucket=[]):  # repro: noqa
                return bucket
            """
        )
        assert findings == []

    def test_scoped_noqa_suppresses_only_named_rules(self) -> None:
        source = """
        def classify(scv):
            return scv == 0.25  # repro: noqa RPR003
        """
        assert lint(source, module="repro.markov.env") == []

    def test_noqa_for_a_different_rule_does_not_suppress(self) -> None:
        source = """
        def classify(scv):
            return scv == 0.25  # repro: noqa RPR007
        """
        findings = lint(source, module="repro.markov.env")
        assert fired(findings) == {"RPR003"}

    def test_suppressed_rules_parser(self) -> None:
        assert suppressed_rules("x = 1") is None
        assert suppressed_rules("x = 1  # repro: noqa") == frozenset()
        assert suppressed_rules("x  # repro: noqa RPR003") == {"RPR003"}
        assert suppressed_rules("x  # repro: noqa RPR003, rpr006") == {"RPR003", "RPR006"}
        # ruff/flake8-style noqa does not collide with the namespaced marker.
        assert suppressed_rules("x = 1  # noqa: F401") is None

    def test_suppression_index_len(self) -> None:
        index = SuppressionIndex("a\nb  # repro: noqa\nc\n")
        assert len(index) == 1


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #


class _NamingRule(LintRule):
    rule_id = "RPR900"
    title = "test rule"
    rationale = "exists only for registry tests"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "forbidden":
                yield context.finding(self, node, "function name 'forbidden' is forbidden")


class TestRuleRegistry:
    def test_builtin_rule_ids_are_registered_in_order(self) -> None:
        assert default_registry().rule_ids()[: len(BUILTIN_RULE_IDS)] == BUILTIN_RULE_IDS
        assert BUILTIN_RULE_IDS == tuple(rule.rule_id for rule in builtin_rules())

    def test_every_builtin_rule_documents_itself(self) -> None:
        for rule in builtin_rules():
            assert rule.rule_id.startswith("RPR")
            assert rule.title
            assert rule.rationale

    def test_register_select_unregister_roundtrip(self) -> None:
        register_rule(_NamingRule())
        try:
            findings = lint("def forbidden():\n    pass\n")
            assert fired(findings) == {"RPR900"}
        finally:
            unregister_rule("RPR900")
        assert "RPR900" not in default_registry()

    def test_duplicate_registration_requires_replace(self) -> None:
        registry = RuleRegistry([_NamingRule()])
        with pytest.raises(ParameterError, match="already registered"):
            registry.register(_NamingRule())
        registry.register(_NamingRule(), replace=True)
        assert len(registry) == 1

    def test_unknown_rule_ids_raise_instead_of_silently_disabling(self) -> None:
        registry = default_registry()
        with pytest.raises(ParameterError, match="unknown rule"):
            registry.select(select=["RPR999"])
        with pytest.raises(ParameterError, match="unknown rule"):
            registry.select(ignore=["RPR999"])

    def test_select_and_ignore_filters(self) -> None:
        registry = default_registry()
        only = registry.select(select=["RPR003", "RPR007"])
        assert tuple(rule.rule_id for rule in only) == ("RPR003", "RPR007")
        without = registry.select(ignore=["RPR001"])
        assert "RPR001" not in {rule.rule_id for rule in without}


# --------------------------------------------------------------------------- #
# Engine: paths, reports, errors
# --------------------------------------------------------------------------- #


class TestEngine:
    def test_module_name_for_resolves_package_layout(self) -> None:
        path = REPO_ROOT / "src" / "repro" / "service" / "server.py"
        assert module_name_for(path) == "repro.service.server"

    def test_module_name_for_loose_file_falls_back_to_stem(self, tmp_path: Path) -> None:
        loose = tmp_path / "fixture.py"
        loose.write_text("x = 1\n")
        assert module_name_for(loose) == "fixture"

    def test_iter_python_files_skips_caches(self, tmp_path: Path) -> None:
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "real.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "real.cpython-311.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path])
        assert [file.name for file in files] == ["real.py"]

    def test_missing_path_raises_analysis_error(self) -> None:
        with pytest.raises(AnalysisError, match="no such file"):
            iter_python_files(["definitely/not/a/path"])

    def test_syntax_error_raises_analysis_error(self) -> None:
        with pytest.raises(AnalysisError, match="cannot analyse"):
            analyze_source("def broken(:\n", path="broken.py")

    def test_report_exit_codes_and_json_payload(self, tmp_path: Path) -> None:
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def collect(bucket=[]):\n    return bucket\n")
        report = analyze_paths([dirty])
        assert report.exit_code == 1
        assert report.files_analyzed == 1
        assert report.counts_by_rule() == {"RPR007": 1}
        payload = report.to_json_payload()
        assert payload["exit_code"] == 1
        assert payload["findings"][0]["rule"] == "RPR007"
        # The payload must be JSON-serialisable as-is.
        json.dumps(payload)
        assert "RPR007" in report.render_text()

    def test_clean_report(self, tmp_path: Path) -> None:
        clean = tmp_path / "clean.py"
        clean.write_text("def fine(bucket=None):\n    return bucket\n")
        report = analyze_paths([clean])
        assert report.exit_code == 0
        assert report.findings == ()
        assert "clean" in report.render_text()

    def test_findings_sort_stably(self) -> None:
        a = Finding(path="a.py", line=2, column=0, rule="RPR007", message="m")
        b = Finding(path="a.py", line=1, column=4, rule="RPR003", message="m")
        c = Finding(path="b.py", line=1, column=0, rule="RPR001", message="m")
        assert sorted([c, a, b]) == [b, a, c]
        assert a.render() == "a.py:2:0: RPR007 m"


# --------------------------------------------------------------------------- #
# The repository itself must be clean (the dogfooding gate)
# --------------------------------------------------------------------------- #


class TestRepositoryIsClean:
    def test_analyzer_is_clean_on_src(self) -> None:
        report = analyze_paths([REPO_ROOT / "src"])
        assert report.exit_code == 0, report.render_text()
        assert report.files_analyzed > 50
        assert report.rules_run == BUILTIN_RULE_IDS

    def test_repro_lint_cli_exits_zero_on_src(self, capsys: pytest.CaptureFixture) -> None:
        assert cli_main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "clean" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #


class TestLintCli:
    def test_json_format(self, tmp_path: Path, capsys: pytest.CaptureFixture) -> None:
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def collect(bucket=[]):\n    return bucket\n")
        assert cli_main(["lint", str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro lint"
        assert payload["counts_by_rule"] == {"RPR007": 1}

    def test_select_filter(self, tmp_path: Path, capsys: pytest.CaptureFixture) -> None:
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def collect(bucket=[]):\n    return bucket\n")
        # Selecting an unrelated rule must make the same file pass.
        assert cli_main(["lint", str(dirty), "--select", "RPR001"]) == 0
        capsys.readouterr()
        assert cli_main(["lint", str(dirty), "--ignore", "RPR007"]) == 0

    def test_unknown_rule_is_a_usage_error(self, capsys: pytest.CaptureFixture) -> None:
        assert cli_main(["lint", "--select", "RPR999", str(REPO_ROOT / "src")]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys: pytest.CaptureFixture) -> None:
        assert cli_main(["lint", "definitely/not/a/path"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys: pytest.CaptureFixture) -> None:
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in BUILTIN_RULE_IDS:
            assert rule_id in out


# --------------------------------------------------------------------------- #
# Typing gate (satellites: py.typed marker, __all__ hygiene, annotations)
# --------------------------------------------------------------------------- #


class TestTypingGate:
    def test_py_typed_marker_exists(self) -> None:
        assert (REPO_ROOT / "src" / "repro" / "py.typed").is_file()

    def test_every_package_init_pins_all(self) -> None:
        """Every ``__init__.py`` declares ``__all__`` and its entries resolve."""
        import importlib

        for init in sorted((REPO_ROOT / "src" / "repro").rglob("__init__.py")):
            relative = init.relative_to(REPO_ROOT / "src").parent
            module_name = ".".join(relative.parts)
            tree = ast.parse(init.read_text(encoding="utf-8"))
            assigned = {
                target.id
                for node in tree.body
                if isinstance(node, ast.Assign)
                for target in node.targets
                if isinstance(target, ast.Name)
            }
            assert "__all__" in assigned, f"{module_name} does not pin __all__"
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.__all__ names missing {name!r}"

    def test_every_signature_in_src_is_annotated(self) -> None:
        """AST-level stand-in for the CI mypy gate (mypy is not vendored here).

        Every function parameter and return in ``src/repro`` must carry an
        annotation (``self``/``cls`` and ``__init__`` returns excepted), so
        the strict mypy run in CI starts from a fully-annotated surface.
        """
        missing: list[str] = []
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                arguments = node.args
                for argument in (
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                    *filter(None, (arguments.vararg, arguments.kwarg)),
                ):
                    if argument.arg in ("self", "cls"):
                        continue
                    if argument.annotation is None:
                        missing.append(f"{path}:{node.lineno} {node.name}({argument.arg})")
                if node.returns is None and node.name != "__init__":
                    missing.append(f"{path}:{node.lineno} {node.name} -> ?")
        assert missing == [], "unannotated signatures:\n" + "\n".join(missing)

    def test_mypy_strict_passes_when_available(self) -> None:
        """The real gate, exercised locally only when mypy is installed."""
        pytest.importorskip("mypy")
        from mypy import api

        stdout, stderr, status = api.run(
            ["--config-file", str(REPO_ROOT / "pyproject.toml")]
        )
        assert status == 0, stdout + stderr
