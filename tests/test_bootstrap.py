"""Unit tests for the bootstrap utilities in :mod:`repro.stats.bootstrap`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential, HyperExponential
from repro.exceptions import DataError, ParameterError
from repro.stats import bootstrap_mean, bootstrap_scv, bootstrap_statistic


class TestBootstrapStatistic:
    def test_point_estimate_is_statistic_of_sample(self, rng):
        data = rng.exponential(scale=2.0, size=500)
        result = bootstrap_statistic(data, lambda s: float(np.mean(s)), rng=rng)
        assert result.point_estimate == pytest.approx(float(np.mean(data)))

    def test_interval_brackets_point_estimate(self, rng):
        data = rng.exponential(scale=2.0, size=500)
        result = bootstrap_statistic(data, lambda s: float(np.mean(s)), rng=rng)
        assert result.lower <= result.point_estimate <= result.upper

    def test_reproducible_with_default_seed(self):
        data = np.arange(1.0, 101.0)
        first = bootstrap_statistic(data, lambda s: float(np.mean(s)))
        second = bootstrap_statistic(data, lambda s: float(np.mean(s)))
        assert first.lower == second.lower
        assert first.upper == second.upper

    def test_number_of_replicates(self, rng):
        data = np.arange(1.0, 51.0)
        result = bootstrap_statistic(
            data, lambda s: float(np.mean(s)), num_resamples=77, rng=rng
        )
        assert result.replicates.size == 77

    def test_half_width_and_contains(self, rng):
        data = np.arange(1.0, 101.0)
        result = bootstrap_statistic(data, lambda s: float(np.mean(s)), rng=rng)
        assert result.half_width == pytest.approx((result.upper - result.lower) / 2.0)
        assert result.contains(result.point_estimate)

    def test_empty_sample_rejected(self):
        with pytest.raises(DataError):
            bootstrap_statistic([], lambda s: 0.0)

    def test_invalid_confidence_rejected(self):
        with pytest.raises((DataError, ParameterError)):
            bootstrap_statistic([1.0, 2.0], lambda s: 0.0, confidence=1.5)

    def test_invalid_resamples_rejected(self):
        with pytest.raises(ParameterError):
            bootstrap_statistic([1.0, 2.0], lambda s: 0.0, num_resamples=0)


class TestConvenienceWrappers:
    def test_bootstrap_mean_covers_true_mean(self, rng):
        dist = Exponential(rate=0.5)
        data = dist.sample(rng, size=3000)
        result = bootstrap_mean(data, rng=rng, num_resamples=300)
        assert result.contains(dist.mean)

    def test_bootstrap_scv_covers_true_scv(self, rng):
        dist = HyperExponential(weights=[0.7, 0.3], rates=[1.0, 0.1])
        data = dist.sample(rng, size=20_000)
        result = bootstrap_scv(data, rng=rng, num_resamples=200)
        # The SCV estimator is biased for heavy-tailed data; allow a wide check.
        assert result.lower < dist.scv * 1.2
        assert result.upper > dist.scv * 0.6

    def test_wider_confidence_gives_wider_interval(self, rng):
        data = rng.exponential(scale=1.0, size=500)
        narrow = bootstrap_mean(data, confidence=0.8, rng=np.random.default_rng(1))
        wide = bootstrap_mean(data, confidence=0.99, rng=np.random.default_rng(1))
        assert wide.half_width > narrow.half_width
