"""Tests for :class:`~repro.solvers.SolutionCache` spill/load snapshots.

The sharded serving tier survives restarts by spilling each shard's cache to
JSON and reloading it on startup; these tests pin the snapshot contract the
workers rely on — exact key round trips (including the policy), atomic
writes, cold-start semantics for missing files, a loud
:class:`~repro.exceptions.CachePersistenceError` for corrupt ones, and
best-effort skipping of entries the codec cannot represent.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import CachePersistenceError
from repro.queueing import sun_fitted_model
from repro.solvers import SolutionCache, SolverPolicy, evaluate, solution_cache_key
from repro.solvers.cache import SPILL_FORMAT_VERSION


def _solved_cache(policy: SolverPolicy | None = None) -> tuple[SolutionCache, tuple]:
    """A cache holding one genuinely solved outcome, plus its key."""
    cache = SolutionCache()
    model = sun_fitted_model(num_servers=4, arrival_rate=2.0)
    policy = policy if policy is not None else SolverPolicy()
    outcome = evaluate(model, policy)
    key = solution_cache_key(model, policy)
    cache.store(key, outcome)
    return cache, key


class TestSpillLoadRoundTrip:
    def test_round_trip_preserves_key_and_outcome(self, tmp_path):
        cache, key = _solved_cache()
        path = tmp_path / "snapshot.json"
        assert cache.spill(path) == 1

        restored = SolutionCache()
        assert restored.load(path) == 1
        hit = restored.lookup(key)
        assert hit is not None
        original = cache.lookup(key)
        assert hit.solver == original.solver
        assert hit.stable is original.stable
        assert hit.metrics == original.metrics
        assert hit.error == original.error

    def test_round_trip_preserves_non_default_policies(self, tmp_path):
        policy = SolverPolicy(order=("geometric", "simulate"), simulate_seed=7)
        cache, key = _solved_cache(policy)
        path = tmp_path / "snapshot.json"
        cache.spill(path)

        restored = SolutionCache()
        restored.load(path)
        # The decoded key must be *equal* to the live one: a policy that came
        # back as a near-copy (list order, float drift) would never hit.
        assert restored.lookup(key) is not None
        miss_key = solution_cache_key(
            sun_fitted_model(num_servers=4, arrival_rate=2.0),
            SolverPolicy(order=("geometric", "simulate"), simulate_seed=8),
        )
        assert restored.lookup(miss_key) is None

    def test_spill_is_atomic_and_leaves_no_temporaries(self, tmp_path):
        cache, _ = _solved_cache()
        path = tmp_path / "deep" / "snapshot.json"
        cache.spill(path)
        cache.spill(path)  # overwrite via os.replace, not append
        assert [entry.name for entry in path.parent.iterdir()] == ["snapshot.json"]
        payload = json.loads(path.read_text())
        assert payload["version"] == SPILL_FORMAT_VERSION
        assert len(payload["entries"]) == 1


class TestLoadFailureModes:
    def test_missing_file_is_a_cold_start(self, tmp_path):
        assert SolutionCache().load(tmp_path / "absent.json") == 0

    def test_corrupt_json_raises_persistence_error(self, tmp_path):
        path = tmp_path / "snapshot.json"
        path.write_text('{"version": 1, "entries": [')
        with pytest.raises(CachePersistenceError, match="not valid JSON"):
            SolutionCache().load(path)

    def test_wrong_version_raises_persistence_error(self, tmp_path):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps({"version": 999, "entries": []}))
        with pytest.raises(CachePersistenceError, match="version"):
            SolutionCache().load(path)

    def test_bad_entries_are_skipped_individually(self, tmp_path):
        cache, key = _solved_cache()
        path = tmp_path / "snapshot.json"
        cache.spill(path)
        payload = json.loads(path.read_text())
        payload["entries"].append({"key": ["??", "bogus"], "outcome": {}})
        payload["entries"].append({"outcome": {"solver": "spectral"}})
        path.write_text(json.dumps(payload))

        restored = SolutionCache()
        assert restored.load(path) == 1
        assert restored.lookup(key) is not None


class TestUnspillableKeys:
    def test_instance_keyed_entries_are_skipped_not_fatal(self, tmp_path):
        class Opaque:
            """Hashable third-party stand-in without ``parameter_key()``."""

        cache, good_key = _solved_cache()
        solved = cache.lookup(good_key)
        cache.store((Opaque(), SolverPolicy()), solved)
        path = tmp_path / "snapshot.json"
        # Only the representable entry lands in the snapshot.
        assert cache.spill(path) == 1
        restored = SolutionCache()
        assert restored.load(path) == 1
        assert restored.lookup(good_key) is not None
