"""Unit tests for the geometric (heavy-load) approximation of Section 3.2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential, HyperExponential
from repro.exceptions import SolverError, UnstableQueueError
from repro.queueing import UnreliableQueueModel
from repro.spectral import (
    ModulatedQueueMatrices,
    decay_rate_bisection,
    decay_rate_from_eigensystem,
    solve_geometric,
    solve_spectral,
)


def _model(arrival_rate: float, num_servers: int = 3) -> UnreliableQueueModel:
    return UnreliableQueueModel(
        num_servers=num_servers,
        arrival_rate=arrival_rate,
        service_rate=1.0,
        operative=HyperExponential(weights=[0.7, 0.3], rates=[0.25, 0.02]),
        inoperative=Exponential(rate=4.0),
    )


class TestDecayRate:
    def test_bisection_matches_full_eigensystem(self):
        model = _model(2.0)
        matrices = ModulatedQueueMatrices(model.environment, model.arrival_rate, 1.0)
        assert decay_rate_bisection(matrices) == pytest.approx(
            decay_rate_from_eigensystem(matrices), abs=1e-8
        )

    def test_decay_rate_matches_exact_solution(self):
        model = _model(2.2)
        exact = solve_spectral(model)
        approx = solve_geometric(model)
        assert approx.decay_rate == pytest.approx(exact.decay_rate, abs=1e-8)

    def test_decay_rate_increases_with_load(self):
        low = solve_geometric(_model(1.0)).decay_rate
        high = solve_geometric(_model(2.5)).decay_rate
        assert high > low

    def test_unstable_model_rejected(self):
        with pytest.raises((UnstableQueueError, SolverError)):
            solve_geometric(_model(10.0))

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError):
            solve_geometric(_model(1.0), method="magic")

    def test_eigensystem_method_agrees(self):
        model = _model(2.0)
        bisected = solve_geometric(model, method="bisection")
        eigen = solve_geometric(model, method="eigensystem")
        assert bisected.decay_rate == pytest.approx(eigen.decay_rate, abs=1e-8)


class TestGeometricLaw:
    def test_pmf_is_geometric(self):
        solution = solve_geometric(_model(2.0))
        z = solution.decay_rate
        for level in range(6):
            assert solution.queue_length_pmf(level) == pytest.approx(
                (1 - z) * z**level
            )

    def test_pmf_sums_to_one(self):
        solution = solve_geometric(_model(2.0))
        total = sum(solution.queue_length_pmf(level) for level in range(2000))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_mean_queue_length_closed_form(self):
        solution = solve_geometric(_model(2.0))
        z = solution.decay_rate
        assert solution.mean_queue_length == pytest.approx(z / (1 - z))

    def test_tail_closed_form(self):
        solution = solve_geometric(_model(2.0))
        z = solution.decay_rate
        assert solution.queue_length_tail(4) == pytest.approx(z**5)

    def test_mode_marginals_normalised_and_nonnegative(self):
        solution = solve_geometric(_model(2.0))
        marginals = solution.mode_marginals()
        assert marginals.sum() == pytest.approx(1.0)
        assert np.all(marginals >= 0.0)

    def test_level_vector_consistent_with_pmf(self):
        solution = solve_geometric(_model(2.0))
        assert solution.level_vector(3).sum() == pytest.approx(
            solution.queue_length_pmf(3)
        )

    def test_mean_jobs_waiting_formula(self):
        solution = solve_geometric(_model(2.0, num_servers=3))
        z = solution.decay_rate
        assert solution.mean_jobs_waiting == pytest.approx(z**4 / (1 - z))

    def test_littles_law(self):
        model = _model(2.0)
        solution = solve_geometric(model)
        assert solution.mean_response_time == pytest.approx(
            solution.mean_queue_length / model.arrival_rate
        )


class TestAccuracyUnderLoad:
    def test_relative_error_shrinks_as_load_grows(self):
        """Paper Figure 8: the approximation becomes exact in heavy traffic."""
        errors = []
        for arrival_rate in (1.5, 2.5, 2.9):
            model = _model(arrival_rate)
            exact = solve_spectral(model).mean_queue_length
            approx = solve_geometric(model).mean_queue_length
            errors.append(abs(approx - exact) / exact)
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.1

    def test_heavy_load_mode_marginals_close_to_exact(self):
        model = _model(2.58)  # capacity is ~2.62 operative servers
        exact = solve_spectral(model)
        approx = solve_geometric(model)
        np.testing.assert_allclose(
            approx.mode_marginals(), exact.mode_marginals(), atol=0.05
        )
