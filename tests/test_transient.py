"""Tests for the transient-analysis subsystem (:mod:`repro.transient`).

Covers the uniformization engine (matrix-exponential parity, checkpointed
multi-time evaluation, stationarity detection, input validation), the
model-level solution and its derived metrics, the two acceptance criteria of
the subsystem — large-``t`` agreement with the steady-state CTMC solver to
1e-6 for the legacy model and every scenario preset, and the analytical
trajectory lying inside the simulation ensemble's 95% intervals — plus
first-passage analysis, the ``transient`` solver registry entry with its
grid-aware cache keys, and the sweep/CLI wiring hooks.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg

from repro.distributions import Deterministic, Exponential
from repro.exceptions import ParameterError, UnstableQueueError
from repro.queueing import UnreliableQueueModel, sun_fitted_model
from repro.scenarios import preset_names, scenario_preset
from repro.solvers import SolutionCache, SolverPolicy, solve
from repro.transient import (
    first_passage_time,
    initial_distribution,
    simulate_transient,
    solve_transient,
    target_mask,
    transient_distributions,
    uniformization_rate,
    uniformized_matrix,
)

#: Time grid of the trajectory cross-validation tests (no zero: every point
#: is an interior point of the transient regime).
CROSS_VALIDATION_GRID = (1.0, 2.0, 5.0, 10.0, 20.0)


def _random_generator(size: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A dense irreducible generator and a random initial distribution."""
    rng = np.random.default_rng(seed)
    rates = rng.uniform(0.0, 1.0, (size, size))
    np.fill_diagonal(rates, 0.0)
    generator = rates - np.diag(rates.sum(axis=1))
    return generator, rng.dirichlet(np.ones(size))


def _legacy_model() -> UnreliableQueueModel:
    """The paper's homogeneous model at a comfortable load."""
    return sun_fitted_model(num_servers=4, arrival_rate=2.2)


class TestUniformizationEngine:
    def test_matches_matrix_exponential(self):
        generator, initial = _random_generator(10)
        times = (0.0, 0.25, 1.0, 4.0, 16.0)
        result = transient_distributions(generator, initial, times)
        for index, t in enumerate(times):
            exact = initial @ scipy.linalg.expm(generator * t)
            assert result.distributions[index] == pytest.approx(exact, abs=1e-10)

    def test_one_pass_grid_equals_separate_evaluations(self):
        """Checkpointed multi-t evaluation returns what single passes return."""
        generator, initial = _random_generator(8, seed=3)
        times = (0.5, 2.0, 7.0)
        grid = transient_distributions(generator, initial, times)
        for index, t in enumerate(times):
            single = transient_distributions(generator, initial, (t,))
            assert grid.distributions[index] == pytest.approx(
                single.distributions[0], abs=1e-12
            )

    def test_subnormal_poisson_seed_window(self):
        """Regression: Lambda*t in ~(708, 745) makes exp(-Lambda*t) subnormal.

        A subnormal seed carries only a few significant bits; seeding the
        linear weight recurrence from it used to corrupt pi(t) by ~1e-2.
        Such times must stay in log space until the weights re-enter the
        normal range.
        """
        generator = np.array([[-14.88, 14.88], [7.0, -7.0]])
        initial = np.array([1.0, 0.0])
        times = (47.6, 50.0, 50.06)  # Lambda*t ~ 708.2, 744, 744.9
        result = transient_distributions(generator, initial, times)
        assert result.distributions.sum(axis=1) == pytest.approx(np.ones(3), abs=1e-10)
        for index, t in enumerate(times):
            exact = initial @ scipy.linalg.expm(generator * t)
            assert result.distributions[index] == pytest.approx(exact, abs=1e-10)

    def test_rows_are_distributions(self):
        generator, initial = _random_generator(15, seed=5)
        result = transient_distributions(generator, initial, (0.1, 3.0, 50.0))
        assert result.distributions.min() >= 0.0
        assert result.distributions.sum(axis=1) == pytest.approx(
            np.ones(3), abs=1e-10
        )

    def test_stationarity_detection_reaches_steady_state(self):
        from repro.markov import steady_state_from_generator

        generator, initial = _random_generator(10, seed=7)
        stationary = steady_state_from_generator(generator)
        result = transient_distributions(generator, initial, (10_000.0,))
        assert result.stationary_step is not None
        assert result.steps < 10_000.0 * result.rate / 2
        assert result.distributions[0] == pytest.approx(stationary, abs=1e-9)

    def test_zero_generator_is_identity(self):
        initial = np.array([0.3, 0.7])
        result = transient_distributions(np.zeros((2, 2)), initial, (0.0, 5.0))
        assert result.rate == 0.0 and result.steps == 0
        assert result.distributions == pytest.approx(np.vstack([initial, initial]))

    def test_uniformized_matrix_rejects_small_rate(self):
        generator, _ = _random_generator(4)
        with pytest.raises(ParameterError, match="below the largest exit rate"):
            uniformized_matrix(generator, rate=0.5 * uniformization_rate(generator))

    @pytest.mark.parametrize(
        ("times", "message"),
        [((), "at least one"), ((-1.0,), "non-negative")],
    )
    def test_bad_times_rejected(self, times, message):
        generator, initial = _random_generator(4)
        with pytest.raises(ParameterError, match=message):
            transient_distributions(generator, initial, times)

    def test_bad_initial_rejected(self):
        generator, _ = _random_generator(4)
        with pytest.raises(ParameterError, match="shape"):
            transient_distributions(generator, np.ones(3) / 3, (1.0,))
        with pytest.raises(ParameterError, match="sum to one"):
            transient_distributions(generator, np.full(4, 0.5), (1.0,))


class TestTransientSolution:
    def test_initial_conditions_fix_the_start(self):
        model = _legacy_model()
        fresh = solve_transient(model, (0.0, 1.0))
        assert fresh.availability[0] == pytest.approx(1.0)
        assert fresh.probability_empty[0] == pytest.approx(1.0)
        assert fresh.mean_queue_length[0] == pytest.approx(0.0)
        down = solve_transient(model, (0.0, 1.0), initial="empty-inoperative")
        assert down.availability[0] == pytest.approx(0.0)
        assert down.probability_all_inoperative[0] == pytest.approx(1.0)
        # Repairs are fast (eta = 25): availability mostly recovers within t=1.
        assert down.availability[1] > 0.95

    def test_equilibrium_start_keeps_environment_stationary(self):
        model = _legacy_model()
        solution = solve_transient(model, (0.0, 3.0), initial="empty-equilibrium")
        expected = model.environment.availability
        assert solution.availability[0] == pytest.approx(expected, abs=1e-9)
        assert solution.availability[1] == pytest.approx(expected, abs=1e-9)

    def test_trajectories_are_consistent_distributions(self):
        model = _legacy_model()
        solution = solve_transient(model, CROSS_VALIDATION_GRID)
        assert solution.queue_tail_probability(0) == pytest.approx(
            np.ones(len(CROSS_VALIDATION_GRID))
        )
        complement = solution.probability_empty + solution.queue_tail_probability(1)
        assert complement == pytest.approx(np.ones(len(CROSS_VALIDATION_GRID)))
        # Tail probabilities decrease in the level, truncation mass is tiny.
        assert np.all(
            solution.queue_tail_probability(2) <= solution.queue_tail_probability(1)
        )
        assert solution.truncation_mass.max() < 1e-9
        beyond = solution.queue_tail_probability(solution.truncation_level + 1)
        assert beyond == pytest.approx(np.zeros(len(CROSS_VALIDATION_GRID)))

    def test_mean_queue_length_grows_from_empty_start(self):
        solution = solve_transient(_legacy_model(), CROSS_VALIDATION_GRID)
        lengths = solution.mean_queue_length
        assert np.all(np.diff(lengths) > 0.0) or lengths[-1] == pytest.approx(
            lengths[-2], rel=1e-3
        )

    def test_grid_is_sorted_and_deduplicated(self):
        solution = solve_transient(_legacy_model(), (5.0, 1.0, 5.0))
        assert solution.times == (1.0, 5.0)
        assert solution.index_of(5.0) == 1
        with pytest.raises(ParameterError, match="not on the evaluation grid"):
            solution.index_of(2.0)

    def test_export_rows_csv_json(self, tmp_path):
        import csv
        import json

        solution = solve_transient(_legacy_model(), (1.0, 5.0))
        rows = solution.to_rows()
        assert [row["time"] for row in rows] == [1.0, 5.0]
        assert rows[0]["availability"] == pytest.approx(solution.availability[0])
        path = solution.to_csv(tmp_path / "transient.csv")
        with path.open() as handle:
            read = list(csv.DictReader(handle))
        assert len(read) == 2 and float(read[1]["time"]) == 5.0
        payload = json.loads(solution.to_json(tmp_path / "transient.json"))
        assert payload["truncation_level"] == solution.truncation_level
        assert len(payload["rows"]) == 2

    def test_solution_reports_its_representation_and_state_space(self, tmp_path):
        import json

        solution = solve_transient(_legacy_model(), (1.0,))
        assert solution.representation == "lumped"
        expected = (solution.truncation_level + 1) * solution.num_modes
        assert solution.num_solved_states == expected
        payload = json.loads(solution.to_json(tmp_path / "transient.json"))
        assert payload["representation"] == "lumped"
        assert payload["num_solved_states"] == expected

    def test_product_representation_rejected_for_homogeneous_models(self):
        with pytest.raises(ParameterError, match="no lumping to undo"):
            solve_transient(_legacy_model(), (1.0,), representation="product")
        with pytest.raises(ParameterError, match="representation"):
            solve_transient(_legacy_model(), (1.0,), representation="dense")

    def test_unstable_model_rejected(self):
        with pytest.raises(UnstableQueueError):
            solve_transient(sun_fitted_model(num_servers=2, arrival_rate=50.0), (1.0,))

    def test_initial_distribution_accepts_vectors(self):
        model = _legacy_model()
        modes = model.environment.num_modes
        vector = np.zeros(modes)
        vector[0] = 1.0
        flat = initial_distribution(model, 5, vector)
        assert flat.shape == (5 * modes,) and flat[0] == 1.0 and flat.sum() == 1.0
        assert initial_distribution(model, 5, flat) == pytest.approx(flat)
        with pytest.raises(ParameterError, match="unknown initial condition"):
            initial_distribution(model, 5, "warm")
        with pytest.raises(ParameterError, match="shape"):
            initial_distribution(model, 5, np.ones(7))


class TestSteadyStateAgreement:
    """Acceptance: pi(t) at large t matches the steady-state CTMC solver."""

    def test_legacy_model_converges_to_ctmc_steady_state(self):
        model = _legacy_model()
        reference = model.solve_ctmc()
        solution = solve_transient(
            model, (400.0,), max_queue_length=reference.truncation_level
        )
        assert solution.mean_queue_length[-1] == pytest.approx(
            reference.mean_queue_length, abs=1e-6
        )
        pmf = solution.queue_length_pmf(400.0)
        stationary = np.array(
            [reference.queue_length_pmf(level) for level in range(pmf.size)]
        )
        assert np.abs(pmf - stationary).max() < 1e-6

    @pytest.mark.parametrize("name", preset_names())
    def test_every_preset_converges_to_ctmc_steady_state(self, name):
        scenario = scenario_preset(name)
        reference = scenario.solve_ctmc()
        solution = solve_transient(
            scenario, (400.0,), max_queue_length=reference.truncation_level
        )
        assert solution.mean_queue_length[-1] == pytest.approx(
            reference.mean_queue_length, abs=1e-6
        )
        pmf = solution.queue_length_pmf(400.0)
        stationary = np.array(
            [reference.queue_length_pmf(level) for level in range(pmf.size)]
        )
        assert np.abs(pmf - stationary).max() < 1e-6


class TestEnsembleCrossValidation:
    """Acceptance: the analytical trajectory lies inside the simulator's CIs."""

    @pytest.mark.parametrize("name", preset_names())
    def test_analytical_trajectory_inside_ensemble_intervals(self, name):
        scenario = scenario_preset(name)
        solution = solve_transient(scenario, CROSS_VALIDATION_GRID)
        ensemble = simulate_transient(
            scenario, CROSS_VALIDATION_GRID, num_replications=200, seed=2006
        )
        contained = [
            interval.contains(float(value))
            for interval, value in zip(
                ensemble.mean_queue_length, solution.mean_queue_length
            )
        ]
        # 95% intervals: an occasional miss is expected, three interior hits
        # are required (the acceptance criterion of the subsystem).
        assert sum(contained) >= 3, (name, contained)

    def test_ensemble_availability_tracks_analytical(self):
        scenario = scenario_preset("single-repairman")
        solution = solve_transient(scenario, CROSS_VALIDATION_GRID)
        ensemble = simulate_transient(
            scenario, CROSS_VALIDATION_GRID, num_replications=200, seed=11
        )
        estimated = np.array(ensemble.availability())
        assert estimated == pytest.approx(solution.availability, abs=0.05)
        assert ensemble.num_servers == scenario.num_servers
        assert ensemble.queue_length_samples.shape == (200, len(CROSS_VALIDATION_GRID))

    def test_ensemble_handles_non_phase_type_periods(self):
        model = UnreliableQueueModel(
            num_servers=2,
            arrival_rate=0.8,
            service_rate=1.0,
            operative=Deterministic(value=30.0),
            inoperative=Exponential(rate=5.0),
        )
        ensemble = simulate_transient(model, (1.0, 5.0), num_replications=20, seed=3)
        assert len(ensemble.mean_queue_length) == 2
        assert ensemble.mean_queue_length[1].estimate >= 0.0

    def test_replication_floor(self):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError, match="two replications"):
            simulate_transient(_legacy_model(), (1.0,), num_replications=1)


class TestFirstPassage:
    def test_single_machine_breakdown_is_exponential(self):
        """N=1, exponential periods: T(all down) ~ Exp(xi) exactly."""
        rate = 0.5
        model = UnreliableQueueModel(
            num_servers=1,
            arrival_rate=0.1,
            service_rate=1.0,
            operative=Exponential(rate=rate),
            inoperative=Exponential(rate=2.0),
        )
        times = (0.5, 1.0, 2.0, 4.0)
        passage = first_passage_time(model, times, target="all-servers-down")
        expected = [1.0 - np.exp(-rate * t) for t in times]
        assert list(passage.cdf) == pytest.approx(expected, abs=1e-9)
        assert passage.mean == pytest.approx(1.0 / rate, rel=1e-9)

    def test_single_repairman_all_down_matches_birth_death_formula(self):
        """The environment is queue-independent: hand-computed hitting time.

        3 servers, xi = 0.2, eta = 1, R = 1: breakdown rates (3, 2, 1) * xi,
        repair rate 1 from every broken count.  The standard birth-death
        ladder gives E[T(0 -> 3)] = h0 + h1 + h2 = 5/3 + 20/3 + 115/3 = 140/3.
        """
        passage = first_passage_time(
            scenario_preset("single-repairman"),
            (50.0,),
            target="all-servers-down",
        )
        assert passage.mean == pytest.approx(140.0 / 3.0, rel=1e-9)

    def test_queue_exceeds_cdf_monotone_and_threshold_ordered(self):
        model = sun_fitted_model(num_servers=3, arrival_rate=2.0)
        times = (2.0, 5.0, 10.0, 25.0)
        lower = first_passage_time(
            model, times, target="queue-exceeds", queue_threshold=4
        )
        higher = first_passage_time(
            model, times, target="queue-exceeds", queue_threshold=8
        )
        assert list(lower.cdf) == sorted(lower.cdf)
        assert all(0.0 <= value <= 1.0 for value in lower.cdf)
        # A higher backlog threshold is hit later, stochastically and in mean.
        assert all(h <= low for h, low in zip(higher.cdf, lower.cdf))
        assert higher.mean > lower.mean > 0.0
        assert lower.survival() == pytest.approx(
            tuple(1.0 - value for value in lower.cdf)
        )

    def test_target_validation(self):
        model = _legacy_model()
        with pytest.raises(ParameterError, match="unknown first-passage target"):
            first_passage_time(model, (1.0,), target="meltdown")
        with pytest.raises(ParameterError, match="queue_threshold"):
            first_passage_time(model, (1.0,), target="queue-exceeds")
        with pytest.raises(ParameterError, match="truncation"):
            first_passage_time(
                model, (1.0,), target="queue-exceeds", queue_threshold=10**6
            )
        num_levels = 8
        with pytest.raises(ParameterError, match="shape"):
            target_mask(model, num_levels, np.zeros(3, dtype=bool))
        size = num_levels * model.environment.num_modes
        with pytest.raises(ParameterError, match="empty"):
            target_mask(model, num_levels, np.zeros(size, dtype=bool))
        with pytest.raises(ParameterError, match="every state"):
            target_mask(model, num_levels, np.ones(size, dtype=bool))

    def test_explicit_mask_equals_named_target(self):
        model = _legacy_model()
        level = model.num_servers + 40
        num_levels = level + 1
        named = first_passage_time(
            model,
            (5.0, 20.0),
            target="all-servers-down",
            max_queue_length=level,
        )
        counts = np.asarray(model.environment.operative_counts)
        mask = np.tile(counts == 0.0, num_levels)
        explicit = first_passage_time(
            model, (5.0, 20.0), target=mask, max_queue_length=level
        )
        assert list(explicit.cdf) == pytest.approx(list(named.cdf), abs=1e-12)
        assert explicit.mean == pytest.approx(named.mean)
        assert explicit.target == "custom" and named.num_target_states == mask.sum()


class TestTransientSolverBackend:
    def test_policy_grid_drives_the_backend(self):
        model = _legacy_model()
        policy = SolverPolicy(order=("transient",), transient_times=(2.0, 10.0))
        outcome = solve(model, policy, cache=False)
        assert outcome.solver == "transient"
        assert outcome.metrics["evaluation_time"] == 10.0
        reference = solve_transient(model, (2.0, 10.0))
        assert outcome.metrics["mean_queue_length"] == pytest.approx(
            float(reference.mean_queue_length[-1])
        )
        assert outcome.metrics["availability"] == pytest.approx(
            float(reference.availability[-1])
        )
        assert "mean_response_time" not in outcome.metrics

    def test_cache_keys_fold_in_the_time_grid(self):
        model = _legacy_model()
        cache = SolutionCache()
        short = SolverPolicy(order=("transient",), transient_times=(2.0,))
        long = SolverPolicy(order=("transient",), transient_times=(40.0,))
        first = solve(model, short, cache=cache)
        again = solve(model, short, cache=cache)
        other = solve(model, long, cache=cache)
        stats = cache.stats()
        assert stats["solves"] == 2 and stats["hits"] == 1 and stats["size"] == 2
        assert first == again
        assert other.metrics["evaluation_time"] == 40.0
        assert other.metrics["mean_queue_length"] > first.metrics["mean_queue_length"]

    def test_non_markovian_model_falls_through(self):
        model = UnreliableQueueModel(
            num_servers=2,
            arrival_rate=0.5,
            service_rate=1.0,
            operative=Deterministic(value=30.0),
            inoperative=Exponential(rate=5.0),
        )
        policy = SolverPolicy(
            order=("transient", "simulate"), simulate_horizon=2_000.0
        )
        outcome = solve(model, policy, cache=False)
        assert outcome.solver == "simulate"

    def test_policy_rejects_negative_times(self):
        with pytest.raises(ParameterError, match="non-negative"):
            SolverPolicy(order=("transient",), transient_times=(-1.0,))

    def test_with_transient_times_helper(self):
        policy = SolverPolicy().with_transient_times(1.0, 5.0)
        assert policy.transient_times == (1.0, 5.0)
