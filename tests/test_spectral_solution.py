"""Unit and consistency tests for the exact spectral-expansion solution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential, HyperExponential
from repro.exceptions import UnstableQueueError
from repro.queueing import UnreliableQueueModel, mm1_queue_length_pmf, mmc_metrics
from repro.spectral import solve_spectral


class TestBasicProperties:
    def test_distribution_normalised(self, small_model):
        solution = solve_spectral(small_model)
        assert solution.normalisation_error() < 1e-9

    def test_pmf_values_nonnegative(self, small_model):
        solution = solve_spectral(small_model)
        for level in range(60):
            assert solution.queue_length_pmf(level) >= 0.0

    def test_pmf_sums_to_one(self, small_model):
        solution = solve_spectral(small_model)
        total = sum(solution.queue_length_pmf(level) for level in range(400))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_pmf_negative_level_is_zero(self, small_model):
        assert solve_spectral(small_model).queue_length_pmf(-1) == 0.0

    def test_number_of_eigenvalues(self, small_model):
        solution = solve_spectral(small_model)
        assert solution.eigenvalues.size == small_model.num_modes

    def test_decay_rate_in_unit_interval(self, small_model):
        solution = solve_spectral(small_model)
        assert 0.0 < solution.decay_rate < 1.0

    def test_boundary_vectors_shape(self, small_model):
        solution = solve_spectral(small_model)
        assert solution.boundary_vectors.shape == (
            small_model.num_servers,
            small_model.num_modes,
        )

    def test_level_vector_sums_to_pmf(self, small_model):
        solution = solve_spectral(small_model)
        for level in (0, 1, 2, 5, 11):
            assert solution.level_vector(level).sum() == pytest.approx(
                solution.queue_length_pmf(level), abs=1e-12
            )

    def test_unstable_model_rejected(self, small_model):
        overloaded = small_model.with_arrival_rate(50.0)
        with pytest.raises(UnstableQueueError):
            solve_spectral(overloaded)

    def test_repr_contains_queue_length(self, small_model):
        text = repr(solve_spectral(small_model))
        assert "SpectralSolution" in text


class TestFlowBalanceAndMarginals:
    def test_throughput_equals_arrival_rate(self, small_model):
        """Flow balance: mu * E[busy servers] = lambda for a stable queue."""
        solution = solve_spectral(small_model)
        assert solution.throughput == pytest.approx(small_model.arrival_rate, rel=1e-8)

    def test_throughput_medium_model(self, medium_model):
        solution = solve_spectral(medium_model)
        assert solution.throughput == pytest.approx(medium_model.arrival_rate, rel=1e-8)

    def test_mode_marginals_match_environment_steady_state(self, small_model):
        """Summing v_j over j gives the marginal law of the environment, which is
        independent of the queue (the environment evolves autonomously)."""
        solution = solve_spectral(small_model)
        np.testing.assert_allclose(
            solution.mode_marginals(),
            small_model.environment.steady_state,
            atol=1e-8,
        )

    def test_mean_jobs_decomposition(self, small_model):
        solution = solve_spectral(small_model)
        assert solution.mean_queue_length == pytest.approx(
            solution.mean_jobs_in_service + solution.mean_jobs_waiting, rel=1e-10
        )

    def test_littles_law(self, small_model):
        solution = solve_spectral(small_model)
        assert solution.mean_response_time == pytest.approx(
            solution.mean_queue_length / small_model.arrival_rate
        )

    def test_mean_queue_length_matches_pmf_summation(self, small_model):
        solution = solve_spectral(small_model)
        direct = sum(level * solution.queue_length_pmf(level) for level in range(500))
        assert solution.mean_queue_length == pytest.approx(direct, rel=1e-9)

    def test_tail_matches_pmf_summation(self, small_model):
        solution = solve_spectral(small_model)
        for threshold in (0, 1, 3, 7):
            direct = sum(
                solution.queue_length_pmf(level) for level in range(threshold + 1, 500)
            )
            assert solution.queue_length_tail(threshold) == pytest.approx(direct, abs=1e-9)

    def test_probability_delay_bounds(self, small_model):
        solution = solve_spectral(small_model)
        assert 0.0 <= solution.probability_delay <= 1.0
        # Delay probability is at least the probability that >= N jobs are present.
        assert solution.probability_delay >= solution.queue_length_tail(
            small_model.num_servers - 1
        ) - 1e-12

    def test_summary_consistent(self, small_model):
        solution = solve_spectral(small_model)
        summary = solution.summary()
        assert summary.mean_jobs == pytest.approx(solution.mean_queue_length)
        assert summary.probability_empty == pytest.approx(solution.queue_length_pmf(0))

    def test_total_cost_formula(self, small_model):
        solution = solve_spectral(small_model)
        assert solution.total_cost(4.0, 1.0) == pytest.approx(
            4.0 * solution.mean_queue_length + 1.0 * small_model.num_servers
        )


class TestReductionToClassicalQueues:
    def test_reduces_to_mm1_with_reliable_server(self):
        """With breakdowns vanishingly rare the model collapses to M/M/1."""
        model = UnreliableQueueModel(
            num_servers=1,
            arrival_rate=0.6,
            service_rate=1.0,
            operative=Exponential(rate=1e-8),   # essentially never breaks
            inoperative=Exponential(rate=1e3),  # and repairs instantly if it does
        )
        solution = solve_spectral(model)
        for level in range(10):
            assert solution.queue_length_pmf(level) == pytest.approx(
                mm1_queue_length_pmf(0.6, 1.0, level), abs=1e-5
            )

    def test_reduces_to_mmc_with_reliable_servers(self):
        model = UnreliableQueueModel(
            num_servers=3,
            arrival_rate=2.0,
            service_rate=1.0,
            operative=Exponential(rate=1e-8),
            inoperative=Exponential(rate=1e3),
        )
        solution = solve_spectral(model)
        reference = mmc_metrics(3, 2.0, 1.0)
        assert solution.mean_queue_length == pytest.approx(
            reference.mean_queue_length, rel=1e-4
        )
        assert solution.mean_response_time == pytest.approx(
            reference.mean_response_time, rel=1e-4
        )

    def test_single_unreliable_server_exponential_periods(self):
        """Cross-check the smallest non-trivial breakdown model (N=1, n=m=1)
        against the truncated-CTMC reference solver."""
        model = UnreliableQueueModel(
            num_servers=1,
            arrival_rate=0.4,
            service_rate=1.0,
            operative=Exponential(rate=0.1),
            inoperative=Exponential(rate=1.0),
        )
        spectral = solve_spectral(model)
        reference = model.solve_ctmc(2000)
        assert spectral.mean_queue_length == pytest.approx(
            reference.mean_queue_length, rel=1e-6
        )


class TestAgainstTruncatedCTMC:
    @pytest.mark.parametrize(
        "num_servers, arrival_rate",
        [(2, 1.0), (3, 2.0), (4, 2.5)],
    )
    def test_queue_length_distribution_matches(self, num_servers, arrival_rate):
        model = UnreliableQueueModel(
            num_servers=num_servers,
            arrival_rate=arrival_rate,
            service_rate=1.0,
            operative=HyperExponential(weights=[0.7, 0.3], rates=[0.25, 0.02]),
            inoperative=Exponential(rate=4.0),
        )
        spectral = solve_spectral(model)
        reference = model.solve_ctmc()
        assert reference.truncation_mass() < 1e-8
        assert spectral.mean_queue_length == pytest.approx(
            reference.mean_queue_length, rel=1e-6
        )
        for level in range(0, 20, 3):
            assert spectral.queue_length_pmf(level) == pytest.approx(
                reference.queue_length_pmf(level), abs=1e-8
            )

    def test_hyperexponential_repairs_match(self):
        """Both periods hyperexponential (n = m = 2)."""
        model = UnreliableQueueModel(
            num_servers=2,
            arrival_rate=0.8,
            service_rate=1.0,
            operative=HyperExponential(weights=[0.7, 0.3], rates=[0.3, 0.03]),
            inoperative=HyperExponential(weights=[0.9, 0.1], rates=[5.0, 0.5]),
        )
        spectral = solve_spectral(model)
        reference = model.solve_ctmc()
        assert spectral.mean_queue_length == pytest.approx(
            reference.mean_queue_length, rel=1e-6
        )
        np.testing.assert_allclose(
            spectral.mode_marginals(), reference.mode_marginals(), atol=1e-7
        )
