"""Property-based cross-validation of the scenario solver stack.

Hypothesis draws random *stable* scenario configurations — one or two server
groups with their own sizes, speeds and failure/repair rates, and a random
repair-crew limit — and asserts that the truncated-CTMC solution and the
discrete-event simulation agree on utilisation and mean queue length.  The
two implementations share no code beyond the model definition, so agreement
over a random family of configurations is strong evidence that both the
product-mode generator and the event engine implement the same process.

``derandomize=True`` pins the drawn examples, so the test is deterministic
across runs and CI machines (the simulator is seeded explicitly).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential
from repro.scenarios import ScenarioModel, ServerGroup


@st.composite
def stable_scenarios(draw) -> ScenarioModel:
    """A random stable scenario with 1-2 groups and a random crew limit."""
    num_groups = draw(st.integers(min_value=1, max_value=2))
    groups = []
    for index in range(num_groups):
        groups.append(
            ServerGroup(
                name=f"group{index}",
                size=draw(st.integers(min_value=1, max_value=2)),
                service_rate=draw(
                    st.floats(min_value=0.5, max_value=2.0, allow_nan=False)
                ),
                operative=Exponential(
                    rate=draw(st.floats(min_value=0.05, max_value=0.3))
                ),
                inoperative=Exponential(
                    rate=draw(st.floats(min_value=1.0, max_value=5.0))
                ),
            )
        )
    num_servers = sum(group.size for group in groups)
    repair_capacity = draw(st.integers(min_value=1, max_value=num_servers))
    scenario = ScenarioModel(
        groups=tuple(groups),
        arrival_rate=1.0,  # placeholder; replaced via the utilisation draw
        repair_capacity=repair_capacity,
    )
    utilisation = draw(st.floats(min_value=0.3, max_value=0.7))
    return scenario.with_arrival_rate(utilisation * scenario.mean_service_capacity)


@given(scenario=stable_scenarios())
@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_ctmc_agrees_with_simulation(scenario: ScenarioModel):
    assert scenario.is_stable
    solution = scenario.solve_ctmc()
    estimate = scenario.simulate(horizon=30_000.0, seed=2006)
    interval = estimate.mean_queue_length

    # Mean queue length: within the simulation confidence interval (with a
    # guard band for the batch-means CI's own estimation error).
    tolerance = 4.0 * interval.half_width + 0.05
    assert abs(solution.mean_queue_length - interval.estimate) <= tolerance, (
        f"CTMC L={solution.mean_queue_length:.4f} vs simulation "
        f"{interval.estimate:.4f} +- {interval.half_width:.4f} for {scenario!r}"
    )

    # Utilisation: both sides measure mean busy servers / N.
    assert abs(solution.utilisation - estimate.utilisation) <= 0.025, (
        f"CTMC util={solution.utilisation:.4f} vs simulation "
        f"{estimate.utilisation:.4f} for {scenario!r}"
    )
