"""Tests of the scenario library: groups, repair crews, CTMC and presets.

The headline guarantees pinned here:

* a ``K = 1, R = N`` scenario is the paper's model — the generalised
  environment reproduces the homogeneous one exactly and the scenario CTMC
  agrees with the homogeneous spectral and CTMC solvers to 1e-8;
* the limited repair crew scales inoperative completion rates with
  ``min(broken, R)``;
* scenarios dispatch correctly through the solver registry: ``ctmc`` and
  ``simulate`` accept them, ``spectral``/``geometric`` raise
  :class:`UnsupportedScenarioError` and fallback chains skip past them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Deterministic, Exponential, HyperExponential
from repro.exceptions import (
    ParameterError,
    UnstableQueueError,
    UnsupportedScenarioError,
)
from repro.markov import BreakdownEnvironment, ScenarioEnvironment
from repro.queueing import UnreliableQueueModel
from repro.scenarios import (
    SCENARIO_PRESETS,
    ScenarioModel,
    ServerGroup,
    preset_description,
    preset_names,
    scenario_preset,
)
from repro.solvers import SolutionCache, SolverPolicy, solve
from repro.solvers.registry import default_registry

OPERATIVE = HyperExponential(weights=[0.6, 0.4], rates=[0.2, 0.02])
REPAIR = Exponential(rate=2.0)


def _one_group_scenario(**overrides) -> ScenarioModel:
    parameters = {
        "groups": (
            ServerGroup(
                name="servers",
                size=2,
                service_rate=1.0,
                operative=OPERATIVE,
                inoperative=REPAIR,
            ),
        ),
        "arrival_rate": 1.0,
    }
    parameters.update(overrides)
    return ScenarioModel(**parameters)


def _two_group_scenario(repair_capacity=None, arrival_rate=1.2) -> ScenarioModel:
    return ScenarioModel(
        groups=(
            ServerGroup("fast", 2, 1.5, Exponential(rate=0.1), Exponential(rate=5.0)),
            ServerGroup("slow", 2, 0.5, Exponential(rate=0.05), Exponential(rate=2.0)),
        ),
        arrival_rate=arrival_rate,
        repair_capacity=repair_capacity,
    )


class TestServerGroup:
    def test_validates_parameters(self):
        with pytest.raises(ParameterError):
            ServerGroup("g", 0, 1.0, OPERATIVE, REPAIR)
        with pytest.raises(ParameterError):
            ServerGroup("g", 2, -1.0, OPERATIVE, REPAIR)
        with pytest.raises(ParameterError):
            ServerGroup("", 2, 1.0, OPERATIVE, REPAIR)

    def test_markovian_detection(self):
        assert ServerGroup("g", 1, 1.0, OPERATIVE, REPAIR).is_markovian
        deterministic = ServerGroup("g", 1, 1.0, Deterministic(value=3.0), REPAIR)
        assert not deterministic.is_markovian

    def test_parameter_key_distinguishes_parameterisations(self):
        a = ServerGroup("g", 2, 1.0, OPERATIVE, REPAIR)
        b = ServerGroup("g", 2, 1.0, OPERATIVE, Exponential(rate=3.0))
        assert a.parameter_key() != b.parameter_key()


class TestScenarioModel:
    def test_requires_groups_and_unique_names(self):
        with pytest.raises(ParameterError):
            ScenarioModel(groups=(), arrival_rate=1.0)
        with pytest.raises(ParameterError, match="duplicate server-group names"):
            ScenarioModel(
                groups=(
                    ServerGroup("g", 1, 1.0, OPERATIVE, REPAIR),
                    ServerGroup("g", 1, 1.0, OPERATIVE, REPAIR),
                ),
                arrival_rate=1.0,
            )

    def test_counts_and_capacity(self):
        scenario = _two_group_scenario()
        assert scenario.num_servers == 4
        assert scenario.num_groups == 2
        assert scenario.service_rates == (1.5, 0.5)
        # Full capacity with everything operative: 2*1.5 + 2*0.5 = 4.
        assert float(scenario.capacity_vector.max()) == pytest.approx(4.0)

    def test_effective_repair_capacity_clamps_to_num_servers(self):
        assert _two_group_scenario().effective_repair_capacity == 4
        assert _two_group_scenario(repair_capacity=1).effective_repair_capacity == 1
        assert _two_group_scenario(repair_capacity=99).effective_repair_capacity == 4

    def test_group_lookup_and_with_group(self):
        scenario = _two_group_scenario()
        assert scenario.group("fast").size == 2
        with pytest.raises(ParameterError, match="no server group"):
            scenario.group("turbo")
        slower = scenario.with_group("slow", service_rate=0.25)
        assert slower.group("slow").service_rate == 0.25
        assert slower.group("fast").service_rate == 1.5
        with pytest.raises(ParameterError, match="cannot change group field"):
            scenario.with_group("slow", name="renamed")

    def test_limited_crew_reduces_capacity_and_stability(self):
        unlimited = _two_group_scenario()
        starved = _two_group_scenario(repair_capacity=1)
        assert starved.mean_service_capacity < unlimited.mean_service_capacity
        assert starved.effective_load > unlimited.effective_load

    def test_require_stable_raises_for_overload(self):
        scenario = _two_group_scenario(arrival_rate=50.0)
        assert not scenario.is_stable
        with pytest.raises(UnstableQueueError):
            scenario.require_stable()

    def test_service_capacity_by_level_fastest_first(self):
        scenario = _two_group_scenario()
        capacities = scenario.service_capacity_by_level
        environment = scenario.environment
        all_up = environment.mode_of((((2,), (0,)), ((2,), (0,))))
        # Levels fill the fast servers (1.5 each) before the slow ones (0.5).
        assert capacities[0, all_up] == 0.0
        assert capacities[1, all_up] == pytest.approx(1.5)
        assert capacities[2, all_up] == pytest.approx(3.0)
        assert capacities[3, all_up] == pytest.approx(3.5)
        assert capacities[4, all_up] == pytest.approx(4.0)

    def test_solution_key_separates_distinct_scenarios(self):
        base = _two_group_scenario()
        assert base.solution_key() != base.with_repair_capacity(1).solution_key()
        assert base.solution_key() != base.with_arrival_rate(2.0).solution_key()
        assert base.solution_key() != base.with_group("slow", size=1).solution_key()
        # The label does not participate: same parameters share cached work.
        from dataclasses import replace

        assert base.solution_key() == replace(base, name="other").solution_key()


class TestScenarioEnvironment:
    def test_product_mode_space(self):
        environment = _two_group_scenario().environment
        # Each exponential/exponential group of 2 servers has 3 local modes.
        assert environment.num_modes == 9
        assert environment.group_sizes == (2, 2)

    def test_reduces_to_homogeneous_environment(self):
        homogeneous = BreakdownEnvironment(
            num_servers=3, operative=OPERATIVE, inoperative=REPAIR
        )
        scenario = ScenarioEnvironment(groups=[(3, OPERATIVE, REPAIR)])
        assert scenario.num_modes == homogeneous.num_modes
        assert [(mode,) for mode in homogeneous.modes] == scenario.modes
        np.testing.assert_allclose(
            scenario.transition_matrix, homogeneous.transition_matrix
        )
        np.testing.assert_allclose(scenario.steady_state, homogeneous.steady_state)
        assert scenario.availability == pytest.approx(homogeneous.availability)

    def test_repair_rates_scale_with_crew_limit(self):
        unlimited = ScenarioEnvironment(groups=[(3, Exponential(rate=0.5), REPAIR)])
        limited = ScenarioEnvironment(
            groups=[(3, Exponential(rate=0.5), REPAIR)], repair_capacity=1
        )
        # Mode with all three servers broken: repairs run at eta * min(3, R).
        broken_mode = unlimited.mode_of((((0,), (3,)),))
        total_unlimited = unlimited.transition_matrix[broken_mode].sum()
        total_limited = limited.transition_matrix[broken_mode].sum()
        assert total_unlimited == pytest.approx(3 * 2.0)
        assert total_limited == pytest.approx(1 * 2.0)
        # Breakdown rates are crew-independent.
        up_mode = unlimited.mode_of((((3,), (0,)),))
        assert unlimited.transition_matrix[up_mode].sum() == pytest.approx(
            limited.transition_matrix[up_mode].sum()
        )

    def test_limited_crew_lowers_availability(self):
        unlimited = ScenarioEnvironment(groups=[(3, Exponential(rate=0.5), REPAIR)])
        limited = ScenarioEnvironment(
            groups=[(3, Exponential(rate=0.5), REPAIR)], repair_capacity=1
        )
        assert limited.availability < unlimited.availability

    def test_service_capacities_shape_check(self):
        environment = _two_group_scenario().environment
        with pytest.raises(ParameterError):
            environment.service_capacities([1.0])


class TestHomogeneousEquivalence:
    """Pinned: K = 1, R = N scenarios reproduce the homogeneous solvers to 1e-8."""

    def _pair(self):
        model = UnreliableQueueModel(
            num_servers=2,
            arrival_rate=1.0,
            service_rate=1.0,
            operative=OPERATIVE,
            inoperative=REPAIR,
        )
        return model, ScenarioModel.from_homogeneous(model)

    def test_scenario_ctmc_matches_spectral_to_1e8(self):
        model, scenario = self._pair()
        spectral = model.solve_spectral()
        solution = scenario.solve_ctmc()
        assert solution.mean_queue_length == pytest.approx(
            spectral.mean_queue_length, abs=1e-8
        )
        assert solution.mean_response_time == pytest.approx(
            spectral.mean_response_time, abs=1e-8
        )
        assert solution.probability_empty == pytest.approx(
            spectral.probability_empty, abs=1e-8
        )

    def test_scenario_ctmc_matches_homogeneous_ctmc_to_1e8(self):
        model, scenario = self._pair()
        homogeneous = model.solve_ctmc()
        solution = scenario.solve_ctmc()
        assert solution.mean_queue_length == pytest.approx(
            homogeneous.mean_queue_length, abs=1e-8
        )
        for level in range(10):
            assert solution.queue_length_pmf(level) == pytest.approx(
                homogeneous.queue_length_pmf(level), abs=1e-10
            )

    def test_stability_condition_reduces(self):
        model, scenario = self._pair()
        assert scenario.effective_load == pytest.approx(model.effective_load)
        assert scenario.is_stable == model.is_stable

    def test_round_trip_conversions(self):
        model, scenario = self._pair()
        assert scenario.as_homogeneous() == model
        with pytest.raises(ParameterError, match="no homogeneous equivalent"):
            _one_group_scenario(repair_capacity=1).as_homogeneous()
        with pytest.raises(ParameterError, match="single-group"):
            _two_group_scenario().as_homogeneous()


class TestScenarioCTMC:
    def test_distribution_is_normalised(self):
        solution = _two_group_scenario(repair_capacity=1).solve_ctmc()
        total = sum(solution.queue_length_pmf(j) for j in range(solution.truncation_level + 1))
        assert total == pytest.approx(1.0, abs=1e-9)
        assert solution.truncation_mass() < 1e-9

    def test_throughput_matches_arrival_rate(self):
        scenario = _two_group_scenario()
        solution = scenario.solve_ctmc()
        assert solution.throughput == pytest.approx(scenario.arrival_rate, rel=1e-6)

    def test_limited_crew_inflates_queue(self):
        base = _two_group_scenario()
        starved = _two_group_scenario(repair_capacity=1)
        assert (
            starved.solve_ctmc().mean_queue_length > base.solve_ctmc().mean_queue_length
        )

    def test_explicit_truncation_level_validated(self):
        scenario = _two_group_scenario()
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            scenario.solve_ctmc(max_queue_length=scenario.num_servers)

    def test_unstable_scenario_rejected(self):
        with pytest.raises(UnstableQueueError):
            _two_group_scenario(arrival_rate=10.0).solve_ctmc()


class TestSolverDispatch:
    def test_spectral_and_geometric_raise_unsupported(self):
        scenario = _two_group_scenario()
        registry = default_registry()
        for name in ("spectral", "geometric"):
            solver = registry.get(name)
            assert not solver.supports(scenario)
            assert "scenario" in solver.unsupported_reason(scenario)
            with pytest.raises(UnsupportedScenarioError):
                solver.solve(scenario)

    def test_fallback_chain_skips_to_ctmc(self):
        scenario = _two_group_scenario()
        outcome = solve(scenario, ("spectral", "geometric", "ctmc"), cache=False)
        assert outcome.solver == "ctmc"
        assert outcome.stable
        assert outcome.metrics["mean_queue_length"] == pytest.approx(
            scenario.solve_ctmc().mean_queue_length
        )
        assert "utilisation" in outcome.metrics

    def test_homogeneous_only_chain_reports_all_failures(self):
        outcome = solve(_two_group_scenario(), ("spectral", "geometric"), cache=False)
        assert outcome.solver is None
        assert outcome.stable
        assert "spectral" in outcome.error and "geometric" in outcome.error

    def test_unstable_scenario_yields_infinite_metrics(self):
        outcome = solve(_two_group_scenario(arrival_rate=10.0), "ctmc", cache=False)
        assert not outcome.stable
        assert outcome.metrics["mean_queue_length"] == np.inf

    def test_simulate_backend_accepts_scenarios(self):
        policy = SolverPolicy(
            order=("simulate",), simulate_horizon=2_000.0, simulate_num_batches=5
        )
        outcome = solve(_two_group_scenario(), policy, cache=False)
        assert outcome.solver == "simulate"
        assert outcome.metrics["mean_queue_length"] > 0.0

    def test_cache_distinguishes_repair_capacity(self):
        cache = SolutionCache()
        base = _two_group_scenario()
        first = solve(base, "ctmc", cache=cache)
        again = solve(base, "ctmc", cache=cache)
        other = solve(base.with_repair_capacity(1), "ctmc", cache=cache)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["solves"] == 2
        assert first.metrics == again.metrics
        assert other.metrics["mean_queue_length"] > first.metrics["mean_queue_length"]


class TestPresets:
    def test_registry_contents(self):
        assert set(preset_names()) == set(SCENARIO_PRESETS)
        for name in ("two-speed-cluster", "single-repairman", "legacy-homogeneous"):
            assert name in preset_names()
        for name in preset_names():
            assert preset_description(name)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ParameterError, match="unknown scenario preset"):
            scenario_preset("warp-drive")

    def test_presets_build_stable_scenarios(self):
        for name in preset_names():
            scenario = scenario_preset(name)
            assert scenario.name == name
            assert scenario.is_stable, name

    def test_overrides(self):
        scenario = scenario_preset("two-speed-cluster", arrival_rate=0.5, repair_capacity=2)
        assert scenario.arrival_rate == 0.5
        assert scenario.effective_repair_capacity == 2

    def test_legacy_homogeneous_matches_spectral(self):
        scenario = scenario_preset("legacy-homogeneous")
        spectral = scenario.as_homogeneous().solve_spectral()
        assert scenario.solve_ctmc().mean_queue_length == pytest.approx(
            spectral.mean_queue_length, abs=1e-8
        )


class TestNonMarkovianScenarios:
    """Scenarios with general period distributions stay solvable (by simulation)."""

    def _deterministic_scenario(self) -> ScenarioModel:
        return ScenarioModel(
            groups=(
                ServerGroup(
                    "servers", 2, 1.0, Deterministic(value=30.0), Exponential(rate=5.0)
                ),
            ),
            arrival_rate=0.8,
        )

    def test_stability_uses_matched_means(self):
        scenario = self._deterministic_scenario()
        assert not scenario.is_markovian
        # Unlimited crew: availability depends on the period means only, so
        # the stability condition is exact: 2 * 1.0 * 30 / 30.2.
        assert scenario.mean_service_capacity == pytest.approx(2 * 30.0 / 30.2)
        assert scenario.is_stable

    def test_facade_falls_through_to_simulate(self):
        scenario = self._deterministic_scenario()
        policy = SolverPolicy(
            order=("spectral", "ctmc", "simulate"),
            simulate_horizon=2_000.0,
            simulate_num_batches=5,
        )
        outcome = solve(scenario, policy, cache=False)
        assert outcome.solver == "simulate"
        assert outcome.metrics["mean_queue_length"] > 0.0

    def test_limited_crew_stability_heuristic_is_finite(self):
        scenario = ScenarioModel(
            groups=(
                ServerGroup(
                    "servers", 2, 1.0, Deterministic(value=30.0), Exponential(rate=5.0)
                ),
            ),
            arrival_rate=0.8,
            repair_capacity=1,
        )
        assert 0.0 < scenario.mean_service_capacity <= 2.0
        assert scenario.is_stable

    def test_group_labels_do_not_fragment_the_cache(self):
        fast = ServerGroup("alpha", 2, 1.0, OPERATIVE, REPAIR)
        renamed = ServerGroup("beta", 2, 1.0, OPERATIVE, REPAIR)
        a = ScenarioModel(groups=(fast,), arrival_rate=1.0)
        b = ScenarioModel(groups=(renamed,), arrival_rate=1.0)
        assert a.solution_key() == b.solution_key()
