"""Unit tests for the model front end, its stability condition and baselines."""

from __future__ import annotations

import pytest

from repro.distributions import Deterministic, Exponential, SUN_OPERATIVE_FIT
from repro.exceptions import ParameterError, UnstableQueueError
from repro.queueing import (
    MMcMetrics,
    UnreliableQueueModel,
    erlang_b,
    erlang_c,
    mm1_mean_queue_length,
    mm1_queue_length_pmf,
    mmc_metrics,
    required_servers_erlang_c,
    sun_fitted_model,
)


class TestModelConstruction:
    def test_parameters_stored(self, paper_model):
        assert paper_model.num_servers == 10
        assert paper_model.arrival_rate == 7.0
        assert paper_model.mean_service_time == 1.0

    def test_invalid_servers_rejected(self):
        with pytest.raises(ParameterError):
            UnreliableQueueModel(
                num_servers=0,
                arrival_rate=1.0,
                service_rate=1.0,
                operative=Exponential(rate=1.0),
                inoperative=Exponential(rate=1.0),
            )

    def test_invalid_arrival_rate_rejected(self):
        with pytest.raises(ParameterError):
            UnreliableQueueModel(
                num_servers=1,
                arrival_rate=-1.0,
                service_rate=1.0,
                operative=Exponential(rate=1.0),
                inoperative=Exponential(rate=1.0),
            )

    def test_sun_fitted_model_helper(self):
        model = sun_fitted_model(num_servers=12, arrival_rate=8.0)
        assert model.operative == SUN_OPERATIVE_FIT
        assert isinstance(model.inoperative, Exponential)
        assert model.inoperative.rate == pytest.approx(25.0)

    def test_with_servers_returns_new_model(self, paper_model):
        modified = paper_model.with_servers(12)
        assert modified.num_servers == 12
        assert paper_model.num_servers == 10

    def test_with_arrival_rate(self, paper_model):
        assert paper_model.with_arrival_rate(8.5).arrival_rate == 8.5

    def test_with_periods(self, paper_model):
        new_operative = Exponential(rate=0.0289)
        modified = paper_model.with_periods(operative=new_operative)
        assert modified.operative == new_operative
        assert modified.inoperative == paper_model.inoperative


class TestDerivedQuantities:
    def test_offered_load(self, paper_model):
        assert paper_model.offered_load == pytest.approx(7.0)

    def test_availability_from_means(self, paper_model):
        operative_mean = paper_model.operative.mean
        expected = operative_mean / (operative_mean + 0.04)
        assert paper_model.availability == pytest.approx(expected)

    def test_mean_operative_servers(self, paper_model):
        assert paper_model.mean_operative_servers == pytest.approx(
            10 * paper_model.availability
        )

    def test_effective_load(self, paper_model):
        assert paper_model.effective_load == pytest.approx(
            7.0 / paper_model.mean_operative_servers
        )

    def test_num_modes_formula(self, paper_model):
        """s = (N+2)(N+1)/2 for n=2, m=1 (paper Section 4)."""
        assert paper_model.num_modes == 66

    def test_markovian_flag(self, paper_model):
        assert paper_model.is_markovian
        non_markovian = paper_model.with_periods(operative=Deterministic(value=34.62))
        assert not non_markovian.is_markovian

    def test_environment_caching(self, paper_model):
        assert paper_model.environment is paper_model.environment


class TestStability:
    def test_paper_condition_eq11(self):
        """lambda/mu < N eta / (xi + eta)."""
        model = sun_fitted_model(num_servers=10, arrival_rate=7.0)
        capacity = 10 * model.availability
        assert model.is_stable == (7.0 < capacity)

    def test_borderline_unstable(self):
        # availability ~ 0.99885 -> capacity with 8 servers ~ 7.99; 8.0 is unstable.
        model = sun_fitted_model(num_servers=8, arrival_rate=8.0)
        assert not model.is_stable
        with pytest.raises(UnstableQueueError):
            model.require_stable()

    def test_stability_depends_only_on_means(self):
        """Eq. 11 depends on the period means, not their distributions."""
        mean_operative, mean_repair = 34.62, 0.04
        hyper = UnreliableQueueModel(
            num_servers=9,
            arrival_rate=8.0,
            service_rate=1.0,
            operative=SUN_OPERATIVE_FIT,
            inoperative=Exponential(rate=1.0 / mean_repair),
        )
        exponential = hyper.with_periods(operative=Exponential(rate=1.0 / mean_operative))
        assert hyper.is_stable == exponential.is_stable
        assert hyper.mean_operative_servers == pytest.approx(
            exponential.mean_operative_servers, rel=1e-4
        )

    def test_unstable_error_carries_values(self):
        model = sun_fitted_model(num_servers=2, arrival_rate=5.0)
        with pytest.raises(UnstableQueueError) as excinfo:
            model.require_stable()
        assert excinfo.value.offered_load == pytest.approx(5.0)
        assert excinfo.value.effective_servers < 2.0


class TestErlangBaselines:
    def test_erlang_c_single_server_equals_utilisation(self):
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_erlang_c_known_value(self):
        # Classic tabulated value: c=5, a=3 Erlangs -> P(wait) ~ 0.23.
        assert erlang_c(5, 3.0) == pytest.approx(0.2362, abs=1e-3)

    def test_erlang_c_unstable_rejected(self):
        with pytest.raises(UnstableQueueError):
            erlang_c(2, 2.5)

    def test_erlang_b_recurrence(self):
        # Known value: c=3, a=2 -> B = 0.2105...
        assert erlang_b(3, 2.0) == pytest.approx(4.0 / 19.0, rel=1e-9)

    def test_erlang_b_less_than_erlang_c(self):
        assert erlang_b(5, 3.0) < erlang_c(5, 3.0)

    def test_mmc_metrics_consistency(self):
        metrics = mmc_metrics(4, 2.5, 1.0)
        assert isinstance(metrics, MMcMetrics)
        assert metrics.mean_queue_length == pytest.approx(
            metrics.mean_jobs_waiting + 2.5, rel=1e-9
        )
        assert metrics.mean_response_time == pytest.approx(
            metrics.mean_waiting_time + 1.0, rel=1e-9
        )

    def test_mm1_special_case_of_mmc(self):
        single = mmc_metrics(1, 0.7, 1.0)
        assert single.mean_queue_length == pytest.approx(mm1_mean_queue_length(0.7, 1.0))

    def test_mm1_pmf_geometric(self):
        assert mm1_queue_length_pmf(0.5, 1.0, 3) == pytest.approx(0.5 * 0.5**3)

    def test_mm1_unstable_rejected(self):
        with pytest.raises(UnstableQueueError):
            mm1_mean_queue_length(2.0, 1.0)

    def test_required_servers_erlang_c(self):
        servers = required_servers_erlang_c(8.0, 1.0, max_wait_probability=0.2)
        assert erlang_c(servers, 8.0) <= 0.2
        assert servers >= 9
        if servers > 9:
            assert erlang_c(servers - 1, 8.0) > 0.2

    def test_required_servers_invalid_target(self):
        with pytest.raises(ValueError):
            required_servers_erlang_c(8.0, 1.0, max_wait_probability=1.5)
