"""Unit tests for the Erlang, Coxian, Deterministic and PhaseType distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Coxian,
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    PhaseType,
    erlang_scv,
    stages_for_scv,
)
from repro.exceptions import ParameterError


class TestErlang:
    def test_mean_and_scv(self):
        dist = Erlang(shape=4, rate=2.0)
        assert dist.mean == pytest.approx(2.0)
        assert dist.scv == pytest.approx(0.25)

    def test_from_mean_and_shape(self):
        dist = Erlang.from_mean_and_shape(mean=10.0, shape=5)
        assert dist.mean == pytest.approx(10.0)
        assert dist.shape == 5

    def test_single_stage_is_exponential(self):
        erlang = Erlang(shape=1, rate=0.5)
        exponential = Exponential(rate=0.5)
        for k in range(1, 5):
            assert erlang.moment(k) == pytest.approx(exponential.moment(k))

    def test_moment_formula(self):
        dist = Erlang(shape=3, rate=1.5)
        assert dist.moment(2) == pytest.approx(3 * 4 / 1.5**2)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ParameterError):
            Erlang(shape=0, rate=1.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ParameterError):
            Erlang(shape=2, rate=-1.0)

    def test_cdf_monotone(self):
        dist = Erlang(shape=3, rate=1.0)
        xs = np.linspace(0.0, 20.0, 100)
        assert np.all(np.diff(dist.cdf(xs)) >= 0.0)

    def test_pdf_integrates_to_one(self):
        dist = Erlang(shape=4, rate=0.5)
        xs = np.linspace(0.0, 100.0, 100_001)
        assert np.trapezoid(dist.pdf(xs), xs) == pytest.approx(1.0, abs=1e-4)

    def test_sampling_mean(self, rng):
        dist = Erlang(shape=5, rate=1.0)
        draws = dist.sample(rng, size=100_000)
        assert np.mean(draws) == pytest.approx(dist.mean, rel=0.02)

    def test_laplace_transform(self):
        dist = Erlang(shape=2, rate=3.0)
        assert dist.laplace_transform(1.0) == pytest.approx((3.0 / 4.0) ** 2)

    def test_phase_type_view(self):
        dist = Erlang(shape=3, rate=2.0)
        ph = dist.to_phase_type()
        assert ph.num_phases == 3
        assert ph.mean == pytest.approx(dist.mean)
        assert ph.moment(2) == pytest.approx(dist.moment(2), rel=1e-9)

    def test_equality(self):
        assert Erlang(3, 1.0) == Erlang(3, 1.0)
        assert Erlang(3, 1.0) != Erlang(4, 1.0)

    def test_erlang_scv_helper(self):
        assert erlang_scv(4) == pytest.approx(0.25)

    def test_stages_for_scv(self):
        assert stages_for_scv(0.25) == 4
        assert stages_for_scv(1.0) == 1
        assert stages_for_scv(0.3) == 4  # ceil(1/0.3) = 4

    def test_stages_for_scv_zero_rejected(self):
        with pytest.raises(ValueError):
            stages_for_scv(0.0)


class TestDeterministic:
    def test_moments(self):
        dist = Deterministic(value=3.0)
        assert dist.mean == pytest.approx(3.0)
        assert dist.moment(3) == pytest.approx(27.0)
        assert dist.variance == pytest.approx(0.0)
        assert dist.scv == pytest.approx(0.0)

    def test_cdf_step(self):
        dist = Deterministic(value=2.0)
        assert dist.cdf(1.999) == 0.0
        assert dist.cdf(2.0) == 1.0
        assert dist.cdf(5.0) == 1.0

    def test_sampling_is_constant(self, rng):
        dist = Deterministic(value=1.5)
        draws = dist.sample(rng, size=10)
        np.testing.assert_allclose(draws, 1.5)
        assert dist.sample(rng) == 1.5

    def test_laplace_transform(self):
        dist = Deterministic(value=2.0)
        assert dist.laplace_transform(0.5) == pytest.approx(np.exp(-1.0))

    def test_no_phase_type_representation(self):
        with pytest.raises(NotImplementedError):
            Deterministic(value=1.0).to_phase_type()

    def test_invalid_value_rejected(self):
        with pytest.raises(ParameterError):
            Deterministic(value=0.0)

    def test_equality(self):
        assert Deterministic(2.0) == Deterministic(2.0)
        assert Deterministic(2.0) != Deterministic(3.0)


class TestCoxian:
    def test_two_phase_moments_match_construction(self):
        dist = Coxian.two_phase_from_moments(mean=4.0, scv=2.0)
        assert dist.mean == pytest.approx(4.0, rel=1e-9)
        assert dist.scv == pytest.approx(2.0, rel=1e-6)

    def test_scv_below_half_rejected(self):
        with pytest.raises(ParameterError):
            Coxian.two_phase_from_moments(mean=1.0, scv=0.3)

    def test_continue_probs_length_enforced(self):
        with pytest.raises(ParameterError):
            Coxian(rates=[1.0, 2.0], continue_probs=[0.5, 0.5])

    def test_continue_probs_range_enforced(self):
        with pytest.raises(ParameterError):
            Coxian(rates=[1.0, 2.0], continue_probs=[1.5])

    def test_degenerate_single_phase_is_exponential(self):
        dist = Coxian(rates=[2.0], continue_probs=[])
        assert dist.mean == pytest.approx(0.5)
        assert dist.scv == pytest.approx(1.0)

    def test_always_continue_equals_hypoexponential(self):
        dist = Coxian(rates=[1.0, 1.0], continue_probs=[1.0])
        # Sum of two exp(1): mean 2, scv 1/2.
        assert dist.mean == pytest.approx(2.0)
        assert dist.scv == pytest.approx(0.5)

    def test_sampling_mean(self, rng):
        dist = Coxian.two_phase_from_moments(mean=3.0, scv=1.5)
        draws = dist.sample(rng, size=50_000)
        assert np.mean(draws) == pytest.approx(3.0, rel=0.05)

    def test_cdf_monotone(self):
        dist = Coxian(rates=[1.0, 0.5], continue_probs=[0.7])
        xs = np.linspace(0.0, 20.0, 30)
        assert np.all(np.diff(dist.cdf(xs)) >= -1e-12)

    def test_phase_type_view_shares_moments(self):
        dist = Coxian(rates=[2.0, 1.0], continue_probs=[0.4])
        ph = dist.to_phase_type()
        assert ph.mean == pytest.approx(dist.mean)


class TestPhaseType:
    def test_hyperexponential_as_phase_type(self):
        hyper = HyperExponential(weights=[0.3, 0.7], rates=[2.0, 0.5])
        ph = PhaseType(initial=[0.3, 0.7], generator=[[-2.0, 0.0], [0.0, -0.5]])
        for k in range(1, 4):
            assert ph.moment(k) == pytest.approx(hyper.moment(k), rel=1e-9)

    def test_pdf_matches_exponential(self):
        ph = PhaseType(initial=[1.0], generator=[[-1.5]])
        exponential = Exponential(rate=1.5)
        for x in (0.0, 0.3, 1.7):
            assert ph.pdf(x) == pytest.approx(exponential.pdf(x), rel=1e-9)
            assert ph.cdf(x) == pytest.approx(exponential.cdf(x), rel=1e-9)

    def test_invalid_generator_shape(self):
        with pytest.raises(ParameterError):
            PhaseType(initial=[1.0], generator=[[-1.0, 0.0]])

    def test_generator_initial_size_mismatch(self):
        with pytest.raises(ParameterError):
            PhaseType(initial=[0.5, 0.5], generator=[[-1.0]])

    def test_positive_diagonal_rejected(self):
        with pytest.raises(ParameterError):
            PhaseType(initial=[1.0], generator=[[1.0]])

    def test_negative_off_diagonal_rejected(self):
        with pytest.raises(ParameterError):
            PhaseType(initial=[0.5, 0.5], generator=[[-1.0, -0.5], [0.0, -1.0]])

    def test_row_sums_must_be_non_positive(self):
        with pytest.raises(ParameterError):
            PhaseType(initial=[0.5, 0.5], generator=[[-1.0, 2.0], [0.0, -1.0]])

    def test_zero_exit_rate_everywhere_rejected(self):
        with pytest.raises(ParameterError):
            PhaseType(initial=[0.5, 0.5], generator=[[-1.0, 1.0], [1.0, -1.0]])

    def test_laplace_transform_at_zero(self):
        ph = HyperExponential(weights=[0.4, 0.6], rates=[1.0, 0.1]).to_phase_type()
        assert ph.laplace_transform(0.0) == pytest.approx(1.0, rel=1e-9)

    def test_sampling_mean(self, rng):
        ph = Erlang(shape=3, rate=1.0).to_phase_type()
        draws = ph.sample(rng, size=20_000)
        assert np.mean(draws) == pytest.approx(3.0, rel=0.05)

    def test_to_phase_type_is_identity(self):
        ph = PhaseType(initial=[1.0], generator=[[-1.0]])
        assert ph.to_phase_type() is ph


@settings(max_examples=30, deadline=None)
@given(shape=st.integers(min_value=1, max_value=20), rate=st.floats(min_value=0.01, max_value=50.0))
def test_property_erlang_scv_is_reciprocal_shape(shape, rate):
    assert Erlang(shape=shape, rate=rate).scv == pytest.approx(1.0 / shape, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    mean=st.floats(min_value=0.1, max_value=50.0),
    scv=st.floats(min_value=0.5, max_value=20.0),
)
def test_property_coxian_two_phase_matches_first_two_moments(mean, scv):
    dist = Coxian.two_phase_from_moments(mean=mean, scv=scv)
    assert dist.mean == pytest.approx(mean, rel=1e-8)
    assert dist.scv == pytest.approx(scv, rel=1e-5)
