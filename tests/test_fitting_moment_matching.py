"""Unit tests for the moment-matching fitting procedures (paper Eq. 6–8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential, HyperExponential
from repro.exceptions import FittingError
from repro.fitting import (
    fit_exponential,
    fit_two_phase_from_mean_and_scv,
    fit_two_phase_from_moments,
    hyperexponential_moments,
    solve_weights_for_rates,
    weights_are_feasible,
)


class TestHyperexponentialMoments:
    def test_matches_distribution_moments(self):
        dist = HyperExponential(weights=[0.3, 0.7], rates=[2.0, 0.2])
        computed = hyperexponential_moments(dist.weights, dist.rates, 5)
        np.testing.assert_allclose(computed, dist.moments(5))

    def test_single_phase(self):
        computed = hyperexponential_moments([1.0], [0.5], 3)
        np.testing.assert_allclose(computed, Exponential(rate=0.5).moments(3))


class TestSolveWeights:
    def test_recovers_known_weights(self):
        dist = HyperExponential(weights=[0.7246, 0.2754], rates=[0.1663, 0.0091])
        weights = solve_weights_for_rates(dist.rates, dist.moments(3))
        np.testing.assert_allclose(weights, dist.weights, rtol=1e-9)

    def test_three_phase_recovery(self):
        dist = HyperExponential(weights=[0.5, 0.3, 0.2], rates=[3.0, 0.5, 0.05])
        weights = solve_weights_for_rates(dist.rates, dist.moments(5))
        np.testing.assert_allclose(weights, dist.weights, rtol=1e-8)

    def test_requires_enough_moments(self):
        with pytest.raises(FittingError):
            solve_weights_for_rates([1.0, 2.0, 3.0], [5.0])

    def test_non_positive_rates_rejected(self):
        with pytest.raises(FittingError):
            solve_weights_for_rates([1.0, -2.0], [5.0])

    def test_feasibility_helper(self):
        assert weights_are_feasible([0.4, 0.6])
        assert not weights_are_feasible([-0.2, 1.2])
        assert weights_are_feasible([0.0, 1.0 + 1e-12])


class TestExponentialFit:
    def test_matches_first_moment(self):
        fit = fit_exponential([4.0, 32.0])
        assert fit.mean == pytest.approx(4.0)

    def test_invalid_moment_rejected(self):
        with pytest.raises(FittingError):
            fit_exponential([0.0])


class TestTwoPhaseFit:
    def test_roundtrip_recovers_paper_fit(self):
        """Fitting to the moments of the fitted distribution recovers it exactly."""
        original = HyperExponential(weights=[0.7246, 0.2754], rates=[0.1663, 0.0091])
        report = fit_two_phase_from_moments(original.moments(3))
        fitted = report.distribution
        np.testing.assert_allclose(np.sort(fitted.rates), np.sort(original.rates), rtol=1e-6)
        np.testing.assert_allclose(
            np.sort(fitted.weights), np.sort(original.weights), rtol=1e-6
        )

    def test_phases_sorted_by_decreasing_rate(self):
        original = HyperExponential(weights=[0.3, 0.7], rates=[0.05, 5.0])
        fitted = fit_two_phase_from_moments(original.moments(3)).distribution
        assert fitted.rates[0] > fitted.rates[1]

    def test_report_contains_errors(self):
        original = HyperExponential(weights=[0.5, 0.5], rates=[1.0, 0.1])
        report = fit_two_phase_from_moments(original.moments(3))
        assert report.max_relative_error < 1e-8
        np.testing.assert_allclose(report.target_moments, original.moments(3))

    def test_noisy_moments_still_close(self, rng):
        original = HyperExponential(weights=[0.7246, 0.2754], rates=[0.1663, 0.0091])
        draws = original.sample(rng, size=400_000)
        moments = np.array([np.mean(draws**k) for k in (1, 2, 3)])
        fitted = fit_two_phase_from_moments(moments).distribution
        assert fitted.mean == pytest.approx(original.mean, rel=0.05)
        assert fitted.scv == pytest.approx(original.scv, rel=0.2)

    def test_exponential_moments_rejected(self):
        """SCV = 1 data cannot be fitted by a (strict) 2-phase hyperexponential."""
        moments = Exponential(rate=0.5).moments(3)
        with pytest.raises(FittingError):
            fit_two_phase_from_moments(moments)

    def test_low_variability_rejected(self):
        # Erlang-like moments: scv < 1.
        moments = np.array([2.0, 4.5, 11.0])
        with pytest.raises(FittingError):
            fit_two_phase_from_moments(moments)

    def test_too_few_moments_rejected(self):
        with pytest.raises(FittingError):
            fit_two_phase_from_moments([1.0, 3.0])

    def test_non_positive_moments_rejected(self):
        with pytest.raises(FittingError):
            fit_two_phase_from_moments([1.0, -3.0, 10.0])

    def test_mean_scv_wrapper(self):
        fitted = fit_two_phase_from_mean_and_scv(10.0, 4.0)
        assert fitted.mean == pytest.approx(10.0)
        assert fitted.scv == pytest.approx(4.0)


@settings(max_examples=40, deadline=None)
@given(
    alpha=st.floats(min_value=0.05, max_value=0.95),
    rate1=st.floats(min_value=0.05, max_value=10.0),
    ratio=st.floats(min_value=2.0, max_value=200.0),
)
def test_property_three_moment_fit_roundtrip(alpha, rate1, ratio):
    """For any genuine 2-phase hyperexponential, the closed-form fit is exact."""
    original = HyperExponential.two_phase(alpha1=alpha, rate1=rate1, rate2=rate1 / ratio)
    report = fit_two_phase_from_moments(original.moments(3))
    np.testing.assert_allclose(report.fitted_moments, report.target_moments, rtol=1e-6)
