"""Integration tests: all four solution methods must agree with each other.

The library offers four independent routes to the steady state of the same
model — exact spectral expansion, the geometric approximation, a truncated
finite CTMC and discrete-event simulation.  Agreement between independently
implemented methods is the strongest internal evidence that the reproduction
is faithful, so this module cross-validates them on a grid of configurations,
including the paper's own parameter region.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential, HyperExponential
from repro.queueing import UnreliableQueueModel, sun_fitted_model


def _model(num_servers, arrival_rate, operative_scv, mean_operative, mean_repair):
    if operative_scv <= 1.0:
        operative = Exponential(rate=1.0 / mean_operative)
    else:
        operative = HyperExponential.from_mean_and_scv(mean_operative, operative_scv)
    return UnreliableQueueModel(
        num_servers=num_servers,
        arrival_rate=arrival_rate,
        service_rate=1.0,
        operative=operative,
        inoperative=Exponential(rate=1.0 / mean_repair),
    )


class TestSpectralVsCTMCGrid:
    @pytest.mark.parametrize("num_servers", [1, 2, 3, 5])
    @pytest.mark.parametrize("utilisation", [0.3, 0.7, 0.9])
    def test_mean_queue_length_agrees(self, num_servers, utilisation):
        base = _model(num_servers, 1.0, 4.0, 30.0, 2.0)
        arrival_rate = utilisation * base.mean_operative_servers
        model = base.with_arrival_rate(arrival_rate)
        spectral = model.solve_spectral()
        reference = model.solve_ctmc()
        assert reference.truncation_mass() < 1e-7
        assert spectral.mean_queue_length == pytest.approx(
            reference.mean_queue_length, rel=1e-5
        )

    def test_full_distribution_agreement_moderate_case(self):
        model = _model(4, 2.5, 6.0, 40.0, 1.5)
        spectral = model.solve_spectral()
        reference = model.solve_ctmc()
        levels = np.arange(0, 40)
        spectral_pmf = np.array([spectral.queue_length_pmf(int(j)) for j in levels])
        reference_pmf = np.array([reference.queue_length_pmf(int(j)) for j in levels])
        np.testing.assert_allclose(spectral_pmf, reference_pmf, atol=1e-8)


class TestPaperConfiguration:
    def test_paper_n10_configuration_agrees_across_methods(self):
        model = sun_fitted_model(num_servers=10, arrival_rate=7.0)
        spectral = model.solve_spectral()
        ctmc = model.solve_ctmc()
        geometric = model.solve_geometric()
        assert spectral.mean_queue_length == pytest.approx(
            ctmc.mean_queue_length, rel=1e-5
        )
        # The decay rates of the exact and approximate solutions coincide.
        assert geometric.decay_rate == pytest.approx(spectral.decay_rate, abs=1e-7)

    def test_simulation_confirms_spectral_solution(self):
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        exact = model.solve_spectral().mean_queue_length
        estimate = model.simulate(horizon=120_000.0, seed=29, num_batches=20)
        relative_error = abs(estimate.mean_queue_length.estimate - exact) / exact
        assert relative_error < 0.1

    def test_geometric_upper_tail_matches_exact(self):
        """Both solutions share the same geometric tail, so large-queue tail
        probabilities agree in log scale even at moderate load."""
        model = sun_fitted_model(num_servers=5, arrival_rate=4.4)
        exact = model.solve_spectral()
        approx = model.solve_geometric()
        for level in (40, 60, 80):
            exact_tail = exact.queue_length_tail(level)
            approx_tail = approx.queue_length_tail(level)
            assert np.log(approx_tail) == pytest.approx(np.log(exact_tail), rel=0.1)


class TestStabilityBoundary:
    def test_queue_length_diverges_near_saturation(self):
        lengths = []
        for utilisation in (0.7, 0.9, 0.97):
            base = _model(3, 1.0, 4.0, 30.0, 2.0)
            model = base.with_arrival_rate(utilisation * base.mean_operative_servers)
            lengths.append(model.solve_spectral().mean_queue_length)
        assert lengths == sorted(lengths)
        assert lengths[-1] > 5 * lengths[0]

    def test_decay_rate_tends_to_one_at_saturation(self):
        base = _model(3, 1.0, 4.0, 30.0, 2.0)
        decay_rates = [
            base.with_arrival_rate(u * base.mean_operative_servers)
            .solve_geometric()
            .decay_rate
            for u in (0.5, 0.9, 0.99)
        ]
        assert decay_rates == sorted(decay_rates)
        assert decay_rates[-1] > 0.97


class TestTruncationRegression:
    def test_slow_repair_truncation_mass_regression(self):
        """Pinned falsifying example of the old load-based truncation level.

        With slow repairs the true tail decay rate (~0.899) substantially
        exceeds the effective load (0.75), so sizing the truncation from the
        load left ~4.2e-6 mass at the boundary.  The decay-rate-based,
        adaptive solver must meet the 1e-10 target here.
        """
        base = _model(1, 1.0, 3.0, 5.0, 4.0)
        model = base.with_arrival_rate(0.75 * base.mean_operative_servers)
        spectral = model.solve_spectral()
        reference = model.solve_ctmc()
        assert reference.truncation_mass() < 1e-10
        assert spectral.mean_queue_length == pytest.approx(
            reference.mean_queue_length, rel=1e-4, abs=1e-8
        )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    num_servers=st.integers(min_value=1, max_value=4),
    utilisation=st.floats(min_value=0.1, max_value=0.93),
    operative_scv=st.floats(min_value=1.0, max_value=12.0),
    mean_operative=st.floats(min_value=5.0, max_value=80.0),
    mean_repair=st.floats(min_value=0.05, max_value=4.0),
)
def test_property_spectral_matches_ctmc(
    num_servers, utilisation, operative_scv, mean_operative, mean_repair
):
    """For any stable configuration the exact solver agrees with the finite chain."""
    base = _model(num_servers, 1.0, operative_scv, mean_operative, mean_repair)
    model = base.with_arrival_rate(max(utilisation * base.mean_operative_servers, 1e-3))
    spectral = model.solve_spectral()
    reference = model.solve_ctmc()
    assert reference.truncation_mass() < 1e-6
    assert spectral.mean_queue_length == pytest.approx(
        reference.mean_queue_length, rel=1e-4, abs=1e-8
    )
    assert spectral.throughput == pytest.approx(model.arrival_rate, rel=1e-6)
