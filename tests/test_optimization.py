"""Unit tests for cost optimisation and capacity planning (Section 4, Eq. 22)."""

from __future__ import annotations

import math

import pytest

from repro.distributions import Deterministic, Exponential, HyperExponential
from repro.exceptions import ParameterError, SolverError
from repro.optimization import (
    cost_curve,
    evaluate_cost,
    minimum_servers_for_response_time,
    minimum_stable_servers,
    optimal_server_count,
    response_time_curve,
    solver_metrics,
)
from repro.queueing import UnreliableQueueModel
from repro.solvers import SolverPolicy


@pytest.fixture
def base_model() -> UnreliableQueueModel:
    """A small fast model used for optimisation sweeps."""
    return UnreliableQueueModel(
        num_servers=3,
        arrival_rate=2.0,
        service_rate=1.0,
        operative=HyperExponential(weights=[0.7, 0.3], rates=[0.25, 0.02]),
        inoperative=Exponential(rate=4.0),
    )


class TestEvaluateCost:
    def test_cost_formula_eq22(self, base_model):
        point = evaluate_cost(base_model, holding_cost=4.0, server_cost=1.0)
        assert point.cost == pytest.approx(4.0 * point.mean_queue_length + 1.0 * 3)
        assert point.stable

    def test_unstable_configuration_has_infinite_cost(self, base_model):
        point = evaluate_cost(
            base_model.with_servers(1), holding_cost=4.0, server_cost=1.0
        )
        assert not point.stable
        assert math.isinf(point.cost)

    def test_geometric_solver_option(self, base_model):
        exact = evaluate_cost(base_model, 4.0, 1.0, solver="spectral")
        approx = evaluate_cost(base_model, 4.0, 1.0, solver="geometric")
        assert approx.num_servers == exact.num_servers
        assert approx.cost != exact.cost  # the approximation differs at this load

    def test_custom_callable_solver(self, base_model):
        calls = []

        def solver(model):
            calls.append(model.num_servers)
            return model.solve_geometric()

        evaluate_cost(base_model, 1.0, 1.0, solver=solver)
        assert calls == [3]

    def test_unknown_solver_rejected_listing_registered_names(self, base_model):
        with pytest.raises(ParameterError, match="spectral.*geometric.*ctmc.*simulate"):
            evaluate_cost(base_model, 1.0, 1.0, solver="mystery")

    def test_simulate_solver_accepted(self, base_model):
        policy = SolverPolicy(order=("simulate",), simulate_horizon=2_000.0)
        point = evaluate_cost(base_model, 4.0, 1.0, solver=policy)
        assert point.stable
        assert point.cost == pytest.approx(4.0 * point.mean_queue_length + 1.0 * 3)

    def test_fallback_chain_accepted(self, base_model):
        """A non-Markovian model walks the chain down to the simulator."""
        model = base_model.with_periods(operative=Deterministic(value=30.0))
        policy = SolverPolicy(
            order=("spectral", "geometric", "simulate"), simulate_horizon=2_000.0
        )
        point = evaluate_cost(model, 4.0, 1.0, solver=policy)
        assert point.stable and point.mean_queue_length > 0.0

    def test_sequence_of_names_is_a_fallback_chain(self, base_model):
        point = evaluate_cost(
            base_model, 4.0, 1.0, solver=("spectral", "geometric")
        )
        exact = evaluate_cost(base_model, 4.0, 1.0, solver="spectral")
        assert point == exact

    def test_negative_costs_rejected(self, base_model):
        with pytest.raises(ParameterError):
            evaluate_cost(base_model, -1.0, 1.0)


class TestCostCurve:
    def test_curve_points_sorted_by_servers(self, base_model):
        curve = cost_curve(base_model, [5, 3, 4], holding_cost=4.0, server_cost=1.0)
        assert [point.num_servers for point in curve.points] == [3, 4, 5]

    def test_optimal_point_minimises_cost(self, base_model):
        curve = cost_curve(base_model, range(3, 9), holding_cost=4.0, server_cost=1.0)
        best = curve.optimal_point
        assert best.cost == min(point.cost for point in curve.points if point.stable)
        assert curve.optimal_servers == best.num_servers

    def test_as_series(self, base_model):
        curve = cost_curve(base_model, [3, 4], holding_cost=4.0, server_cost=1.0)
        servers, costs = curve.as_series()
        assert servers == [3, 4]
        assert len(costs) == 2

    def test_empty_server_counts_rejected(self, base_model):
        with pytest.raises(ParameterError):
            cost_curve(base_model, [], holding_cost=1.0, server_cost=1.0)

    def test_high_server_cost_pushes_optimum_down(self, base_model):
        cheap_servers = cost_curve(
            base_model, range(3, 10), holding_cost=4.0, server_cost=0.1
        )
        expensive_servers = cost_curve(
            base_model, range(3, 10), holding_cost=4.0, server_cost=10.0
        )
        assert expensive_servers.optimal_servers <= cheap_servers.optimal_servers


class TestOptimalServerCount:
    def test_walks_past_local_plateau(self, base_model):
        result = optimal_server_count(
            base_model, holding_cost=4.0, server_cost=1.0, solver="geometric"
        )
        # Cross-check against an explicit sweep.
        sweep = cost_curve(
            base_model, range(3, 15), holding_cost=4.0, server_cost=1.0, solver="geometric"
        )
        assert result.num_servers == sweep.optimal_servers
        assert result.cost == pytest.approx(sweep.optimal_point.cost)

    def test_minimum_stable_servers(self, base_model):
        minimum = minimum_stable_servers(base_model)
        assert base_model.with_servers(minimum).is_stable
        assert minimum == 1 or not base_model.with_servers(minimum - 1).is_stable

    def test_minimum_stable_servers_unreachable(self, base_model):
        with pytest.raises(SolverError):
            minimum_stable_servers(base_model.with_arrival_rate(50.0), max_servers=10)


class TestSizing:
    def test_response_time_curve_monotone(self, base_model):
        points = response_time_curve(base_model, range(3, 8))
        times = [point.mean_response_time for point in points]
        assert all(later <= earlier + 1e-9 for earlier, later in zip(times, times[1:]))

    def test_unstable_points_reported_infinite(self, base_model):
        points = response_time_curve(base_model, [1, 3])
        assert math.isinf(points[0].mean_response_time)
        assert math.isfinite(points[1].mean_response_time)

    def test_minimum_servers_for_target(self, base_model):
        result = minimum_servers_for_response_time(base_model, target_response_time=1.5)
        final = result.evaluations[-1]
        assert final.num_servers == result.required_servers
        assert final.mean_response_time <= 1.5
        # The previous candidate (if evaluated) must miss the target.
        if len(result.evaluations) > 1:
            assert result.evaluations[-2].mean_response_time > 1.5

    def test_target_below_service_time_rejected(self, base_model):
        with pytest.raises(SolverError):
            minimum_servers_for_response_time(base_model, target_response_time=0.5)

    def test_unreachable_target_raises(self, base_model):
        with pytest.raises(SolverError):
            minimum_servers_for_response_time(
                base_model, target_response_time=1.0000001, max_servers=4
            )

    def test_sizing_accepts_simulate_policy(self, base_model):
        policy = SolverPolicy(order=("simulate",), simulate_horizon=2_000.0)
        points = response_time_curve(base_model, [3, 4], solver=policy)
        assert all(point.mean_response_time > 0.0 for point in points)

    def test_sizing_rejects_unknown_solver_name(self, base_model):
        with pytest.raises(ParameterError, match="registered solvers"):
            response_time_curve(base_model, [3], solver="mystery")
        with pytest.raises(ParameterError, match="registered solvers"):
            minimum_servers_for_response_time(
                base_model, target_response_time=1.5, solver="mystery"
            )


class TestSolverMetricsHelper:
    def test_metrics_by_name_match_direct_solve(self, base_model):
        metrics = solver_metrics(base_model, "spectral")
        solution = base_model.solve_spectral()
        assert metrics["mean_queue_length"] == pytest.approx(solution.mean_queue_length)
        assert metrics["mean_response_time"] == pytest.approx(solution.mean_response_time)

    def test_unstable_model_raises(self, base_model):
        from repro.exceptions import UnstableQueueError

        with pytest.raises(UnstableQueueError):
            solver_metrics(base_model.with_servers(1), "spectral")

    def test_all_solvers_failing_raises_solver_error(self, base_model):
        model = base_model.with_periods(operative=Deterministic(value=30.0))
        with pytest.raises(SolverError, match="spectral"):
            solver_metrics(model, ("spectral", "geometric"))

    def test_callable_bypasses_registry(self, base_model):
        calls = []

        def backend(model):
            calls.append(model.num_servers)
            return model.solve_geometric()

        metrics = solver_metrics(base_model, backend)
        assert calls == [3]
        assert metrics["mean_queue_length"] > 0.0
