"""Contract tests of the shared benchmark harness (``benchmarks/_harness.py``).

The harness lives outside the installable package (it is CI tooling, not
library code), so it is loaded here by file path.  These tests pin the record
format the CI bench job and its uploaded artifacts rely on: best-of-repeats
``seconds``, the ``peak_rss_mb`` high-water mark, workload metadata merged
into the record, and a baseline gate that compares *seconds only* while
ignoring (but preserving) the metadata.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "bench_harness", REPO_ROOT / "benchmarks" / "_harness.py"
)
assert _spec is not None and _spec.loader is not None
harness = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(harness)


class TestRunBenchmarks:
    def test_records_carry_seconds_rss_and_metadata(self, capsys):
        def with_metadata(quick: bool):
            return {"num_states": 42, "representation": "lumped"}

        def plain(quick: bool):
            return None

        records = harness.run_benchmarks(
            {"meta": with_metadata, "plain": plain}, quick=True, repeats=2
        )
        assert set(records) == {"meta", "plain"}
        assert records["meta"]["num_states"] == 42
        assert records["meta"]["representation"] == "lumped"
        for record in records.values():
            assert float(record["seconds"]) >= 0.0
            assert float(record["peak_rss_mb"]) > 0.0
        output = capsys.readouterr().out
        assert "num_states=42" in output

    def test_quick_flag_reaches_the_workload(self):
        seen: list[bool] = []
        harness.run_benchmarks({"probe": lambda quick: seen.append(quick)}, quick=True, repeats=1)
        assert seen == [True]


class TestBaselineGate:
    def _baseline(self, tmp_path: Path, seconds: float, mode: str = "quick") -> Path:
        path = tmp_path / "baseline.json"
        payload = {
            "mode": mode,
            "benchmarks": {"bench": {"seconds": seconds, "peak_rss_mb": 1.0, "num_states": 7}},
        }
        path.write_text(json.dumps(payload))
        return path

    def test_within_budget_passes(self, tmp_path, capsys):
        baseline = self._baseline(tmp_path, seconds=1.0)
        records = {"bench": {"seconds": 1.5, "peak_rss_mb": 2.0, "num_states": 7}}
        assert harness.check_against_baseline(records, baseline, factor=2.0, quick=True) == 0
        assert "ok" in capsys.readouterr().out

    def test_slowdown_beyond_the_factor_regresses(self, tmp_path, capsys):
        baseline = self._baseline(tmp_path, seconds=1.0)
        records = {"bench": {"seconds": 2.5, "peak_rss_mb": 2.0}}
        assert harness.check_against_baseline(records, baseline, factor=2.0, quick=True) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_metadata_never_trips_the_gate(self, tmp_path, capsys):
        baseline = self._baseline(tmp_path, seconds=1.0)
        records = {"bench": {"seconds": 1.0, "peak_rss_mb": 999.0, "num_states": 123456}}
        assert harness.check_against_baseline(records, baseline, factor=2.0, quick=True) == 0

    def test_new_benchmark_without_baseline_entry_is_skipped(self, tmp_path, capsys):
        baseline = self._baseline(tmp_path, seconds=1.0)
        records = {
            "bench": {"seconds": 1.0, "peak_rss_mb": 1.0},
            "fresh": {"seconds": 9.9, "peak_rss_mb": 1.0},
        }
        assert harness.check_against_baseline(records, baseline, factor=2.0, quick=True) == 0
        assert "no baseline entry" in capsys.readouterr().out

    def test_mode_mismatch_fails_loudly(self, tmp_path, capsys):
        baseline = self._baseline(tmp_path, seconds=1.0, mode="full")
        records = {"bench": {"seconds": 0.1, "peak_rss_mb": 1.0}}
        assert harness.check_against_baseline(records, baseline, factor=2.0, quick=True) == 1
        assert "re-record" in capsys.readouterr().out


class TestBenchMain:
    def test_update_baseline_pads_seconds_and_keeps_metadata(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        exit_code = harness.bench_main(
            {"bench": lambda quick: {"num_states": 5}},
            description="test",
            default_output=str(tmp_path / "out.json"),
            argv=["--quick", "--repeats", "1", "--update-baseline", str(baseline_path)],
        )
        assert exit_code == 0
        payload = json.loads(baseline_path.read_text())
        record = payload["benchmarks"]["bench"]
        assert record["num_states"] == 5
        assert "peak_rss_mb" in record
        assert payload["mode"] == "quick"

    def test_run_write_and_check_round_trip(self, tmp_path, capsys):
        output = tmp_path / "out.json"
        baseline = tmp_path / "baseline.json"
        argv = ["--quick", "--repeats", "1", "--update-baseline", str(baseline)]
        assert (
            harness.bench_main(
                {"bench": lambda quick: None},
                description="test",
                default_output=str(output),
                argv=argv,
            )
            == 0
        )
        exit_code = harness.bench_main(
            {"bench": lambda quick: None},
            description="test",
            default_output=str(output),
            argv=["--quick", "--repeats", "1", "--check", str(baseline)],
        )
        assert exit_code == 0
        written = json.loads(output.read_text())
        assert "seconds" in written["benchmarks"]["bench"]
        assert "peak_rss_mb" in written["benchmarks"]["bench"]
