"""Unit tests for :class:`repro.distributions.Exponential`."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential
from repro.exceptions import ParameterError


class TestConstruction:
    def test_rate_is_stored(self):
        assert Exponential(rate=2.5).rate == 2.5

    def test_from_mean(self):
        dist = Exponential.from_mean(4.0)
        assert dist.rate == pytest.approx(0.25)
        assert dist.mean == pytest.approx(4.0)

    @pytest.mark.parametrize("bad_rate", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_rate_rejected(self, bad_rate):
        with pytest.raises(ParameterError):
            Exponential(rate=bad_rate)

    def test_non_numeric_rate_rejected(self):
        with pytest.raises(ParameterError):
            Exponential(rate="fast")  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        assert Exponential(1.5) == Exponential(1.5)
        assert Exponential(1.5) != Exponential(2.5)
        assert hash(Exponential(1.5)) == hash(Exponential(1.5))

    def test_repr_mentions_rate(self):
        assert "0.5" in repr(Exponential(0.5))


class TestMoments:
    def test_mean_is_reciprocal_rate(self):
        assert Exponential(rate=0.2).mean == pytest.approx(5.0)

    def test_second_moment(self):
        dist = Exponential(rate=2.0)
        assert dist.moment(2) == pytest.approx(2.0 / 4.0)

    def test_kth_moment_formula(self):
        dist = Exponential(rate=3.0)
        for k in range(1, 6):
            assert dist.moment(k) == pytest.approx(math.factorial(k) / 3.0**k)

    def test_variance(self):
        dist = Exponential(rate=0.5)
        assert dist.variance == pytest.approx(4.0)

    def test_scv_is_one(self):
        assert Exponential(rate=7.0).scv == pytest.approx(1.0)

    def test_std_is_mean(self):
        dist = Exponential(rate=4.0)
        assert dist.std == pytest.approx(dist.mean)

    def test_moments_helper_returns_prefix(self):
        dist = Exponential(rate=1.0)
        np.testing.assert_allclose(dist.moments(3), [1.0, 2.0, 6.0])

    def test_moment_order_zero_rejected(self):
        with pytest.raises(ValueError):
            Exponential(rate=1.0).moment(0)


class TestDensities:
    def test_pdf_at_zero(self):
        assert Exponential(rate=2.0).pdf(0.0) == pytest.approx(2.0)

    def test_pdf_negative_argument_is_zero(self):
        assert Exponential(rate=2.0).pdf(-1.0) == 0.0

    def test_cdf_monotone_and_bounded(self):
        dist = Exponential(rate=1.0)
        xs = np.linspace(0.0, 20.0, 50)
        cdf = dist.cdf(xs)
        assert np.all(np.diff(cdf) >= 0.0)
        assert cdf[0] == pytest.approx(0.0)
        assert cdf[-1] == pytest.approx(1.0, abs=1e-6)

    def test_cdf_negative_argument_is_zero(self):
        assert Exponential(rate=1.0).cdf(-5.0) == 0.0

    def test_sf_complements_cdf(self):
        dist = Exponential(rate=0.7)
        x = 1.3
        assert dist.sf(x) == pytest.approx(1.0 - dist.cdf(x))

    def test_pdf_integrates_to_one(self):
        dist = Exponential(rate=0.8)
        xs = np.linspace(0.0, 60.0, 200_001)
        integral = np.trapezoid(dist.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-4)

    def test_vectorised_pdf_matches_scalar(self):
        dist = Exponential(rate=1.3)
        xs = np.array([0.1, 0.5, 2.0])
        np.testing.assert_allclose(dist.pdf(xs), [dist.pdf(float(x)) for x in xs])


class TestTransformAndPhaseType:
    def test_laplace_transform_at_zero_is_one(self):
        assert Exponential(rate=2.0).laplace_transform(0.0) == pytest.approx(1.0)

    def test_laplace_transform_formula(self):
        dist = Exponential(rate=2.0)
        assert dist.laplace_transform(1.0) == pytest.approx(2.0 / 3.0)

    def test_laplace_transform_derivative_gives_mean(self):
        dist = Exponential(rate=0.4)
        h = 1e-6
        derivative = (dist.laplace_transform(h) - dist.laplace_transform(0.0)) / h
        assert -derivative.real == pytest.approx(dist.mean, rel=1e-4)

    def test_phase_type_representation_matches_moments(self):
        dist = Exponential(rate=1.7)
        ph = dist.to_phase_type()
        assert ph.num_phases == 1
        assert ph.mean == pytest.approx(dist.mean)
        assert ph.moment(3) == pytest.approx(dist.moment(3))


class TestSampling:
    def test_scalar_sample(self, rng):
        value = Exponential(rate=1.0).sample(rng)
        assert isinstance(value, float)
        assert value >= 0.0

    def test_sample_mean_converges(self, rng):
        dist = Exponential(rate=0.25)
        draws = dist.sample(rng, size=200_000)
        assert np.mean(draws) == pytest.approx(dist.mean, rel=0.02)

    def test_sample_scv_converges(self, rng):
        dist = Exponential(rate=2.0)
        draws = dist.sample(rng, size=200_000)
        scv = np.var(draws) / np.mean(draws) ** 2
        assert scv == pytest.approx(1.0, abs=0.05)


@settings(max_examples=50, deadline=None)
@given(rate=st.floats(min_value=1e-3, max_value=1e3))
def test_property_mean_times_rate_is_one(rate):
    assert Exponential(rate=rate).mean * rate == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(rate=st.floats(min_value=1e-3, max_value=1e3), x=st.floats(min_value=0.0, max_value=1e3))
def test_property_cdf_within_unit_interval(rate, x):
    value = Exponential(rate=rate).cdf(x)
    assert 0.0 <= value <= 1.0
