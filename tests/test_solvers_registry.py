"""Tests for the unified solver layer (:mod:`repro.solvers`).

Covers the registry (built-ins, third-party registration, helpful errors),
the ``solve``/``solve_many`` facade (legacy-fallback parity, shared-cache
memoisation, batch deduplication under serial and parallel execution) and
the value-based distribution cache keys.
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro.distributions import Deterministic, Exponential, HyperExponential
from repro.distributions.base import Distribution
from repro.exceptions import ParameterError, SimulationError, SolverError
from repro.queueing import UnreliableQueueModel, sun_fitted_model
from repro.solvers import (
    BUILTIN_SOLVER_NAMES,
    SolutionCache,
    SolveOutcome,
    Solver,
    SolverPolicy,
    SolverRegistry,
    as_policy,
    default_registry,
    distribution_key,
    evaluate,
    get_solver,
    register_solver,
    solve,
    solve_many,
    solver_names,
    unregister_solver,
)
from repro.sweeps import SweepRunner, SweepSpec


def _legacy_evaluate(model: UnreliableQueueModel, policy: SolverPolicy):
    """The seed's fallback chain, reimplemented verbatim as the parity oracle.

    This mirrors the pre-registry sweep-runner dispatch (evaluate-point plus
    its per-name solve helper) so the facade can be checked against the exact
    behaviour it replaced: same chosen solver, same metrics, same stability
    handling.
    """
    if not model.is_stable:
        return (None, False, {"mean_queue_length": math.inf, "mean_response_time": math.inf}, None)
    failures = []
    for solver in policy.order:
        try:
            if solver == "spectral":
                solution = model.solve_spectral()
                metrics = {
                    "mean_queue_length": solution.mean_queue_length,
                    "mean_response_time": solution.mean_response_time,
                    "decay_rate": solution.decay_rate,
                }
            elif solver == "geometric":
                solution = model.solve_geometric()
                metrics = {
                    "mean_queue_length": solution.mean_queue_length,
                    "mean_response_time": solution.mean_response_time,
                    "decay_rate": solution.decay_rate,
                }
            elif solver == "ctmc":
                solution = model.solve_ctmc()
                metrics = {
                    "mean_queue_length": solution.mean_queue_length,
                    "mean_response_time": solution.mean_response_time,
                }
            elif solver == "simulate":
                estimate = model.simulate(
                    horizon=policy.simulate_horizon,
                    warmup_fraction=policy.simulate_warmup_fraction,
                    num_batches=policy.simulate_num_batches,
                    seed=policy.simulate_seed,
                )
                metrics = {
                    "mean_queue_length": estimate.mean_queue_length.estimate,
                    "mean_response_time": estimate.mean_response_time.estimate,
                    "utilisation": estimate.utilisation,
                }
            else:
                raise ParameterError(f"unknown solver {solver!r}")
        except (SolverError, ParameterError, SimulationError, NotImplementedError) as exc:
            failures.append(f"{solver}: {exc}")
            continue
        return (solver, True, metrics, None)
    return (None, True, {}, "; ".join(failures) or "no solver succeeded")


def _deterministic_model() -> UnreliableQueueModel:
    """Non-Markovian periods: every analytical solver must fall through."""
    return UnreliableQueueModel(
        num_servers=2,
        arrival_rate=0.5,
        service_rate=1.0,
        operative=Deterministic(value=30.0),
        inoperative=Exponential(rate=5.0),
    )


class ConstantSolver(Solver):
    """A trivial third-party backend used to test registration/fallback."""

    name = "constant"

    def __init__(self) -> None:
        self.calls = 0

    def solve(self, model, **options):
        self.calls += 1
        return model

    def metrics(self, solution) -> dict[str, float]:
        return {"mean_queue_length": 1.25, "mean_response_time": 2.5}


class TestRegistry:
    def test_builtins_registered_in_trusted_order(self):
        assert solver_names() == BUILTIN_SOLVER_NAMES == (
            "spectral",
            "geometric",
            "ctmc",
            "simulate",
            "transient",
        )
        for name in BUILTIN_SOLVER_NAMES:
            assert get_solver(name).name == name

    def test_unknown_name_lists_registered_solvers(self):
        with pytest.raises(ParameterError, match="spectral.*geometric.*ctmc.*simulate"):
            get_solver("mystery")

    def test_duplicate_registration_rejected_unless_replace(self):
        registry = SolverRegistry([ConstantSolver()])
        with pytest.raises(ParameterError, match="already registered"):
            registry.register(ConstantSolver())
        replacement = ConstantSolver()
        registry.register(replacement, replace=True)
        assert registry.get("constant") is replacement

    def test_solver_without_name_rejected(self):
        class Nameless(ConstantSolver):
            name = ""

        with pytest.raises(ParameterError, match="name"):
            SolverRegistry([Nameless()])

    def test_unregister_unknown_name(self):
        with pytest.raises(ParameterError, match="no solver named"):
            SolverRegistry().unregister("ghost")

    def test_registry_container_protocol(self):
        registry = default_registry()
        assert "spectral" in registry and "mystery" not in registry
        assert len(registry) >= 4
        assert {solver.name for solver in registry} >= set(BUILTIN_SOLVER_NAMES)


class TestPolicyCoercion:
    def test_as_policy_accepts_name_sequence_policy_none(self):
        assert as_policy(None) == SolverPolicy()
        assert as_policy("ctmc").order == ("ctmc",)
        assert as_policy(("spectral", "simulate")).order == ("spectral", "simulate")
        policy = SolverPolicy(order=("geometric",))
        assert as_policy(policy) is policy

    def test_as_policy_rejects_garbage(self):
        with pytest.raises(ParameterError):
            as_policy(42)

    def test_policy_rejects_unregistered_name_listing_solvers(self):
        with pytest.raises(ParameterError, match="registered solvers"):
            SolverPolicy(order=("qft",))


class TestFacadeLegacyParity:
    """The facade must reproduce the legacy fallback behaviour exactly."""

    @pytest.mark.parametrize(
        ("model", "order"),
        [
            # Stable Markovian model: spectral wins.
            (sun_fitted_model(num_servers=5, arrival_rate=3.5), ("spectral", "geometric")),
            # Approximation requested first.
            (sun_fitted_model(num_servers=5, arrival_rate=3.5), ("geometric", "spectral")),
            # Reference chain solver.
            (sun_fitted_model(num_servers=3, arrival_rate=1.5), ("ctmc",)),
            # Unstable model: no solver runs, infinite metrics.
            (sun_fitted_model(num_servers=2, arrival_rate=50.0), ("spectral", "geometric")),
            # Non-Markovian periods: everything falls through to simulate.
            (_deterministic_model(), ("spectral", "geometric", "simulate")),
            # Non-Markovian periods with no simulator in the chain: total failure.
            (_deterministic_model(), ("spectral", "geometric")),
        ],
    )
    def test_same_solver_and_metrics_as_legacy_chain(self, model, order):
        policy = SolverPolicy(order=order, simulate_horizon=2_000.0)
        legacy_solver, legacy_stable, legacy_metrics, legacy_error = _legacy_evaluate(
            model, policy
        )
        outcome = evaluate(model, policy)
        assert outcome.solver == legacy_solver
        assert outcome.stable == legacy_stable
        assert outcome.metrics == pytest.approx(legacy_metrics)
        assert (outcome.error is None) == (legacy_error is None)
        if legacy_error is not None:
            # The facade reports one diagnostic per failed solver, like the
            # legacy chain (messages may differ in wording, not structure).
            for name in order:
                assert f"{name}:" in outcome.error

    def test_outcome_unpacks_like_the_legacy_tuple(self):
        solver, stable, metrics, error = evaluate(
            sun_fitted_model(num_servers=5, arrival_rate=3.5), SolverPolicy()
        )
        assert solver == "spectral" and stable and error is None
        assert metrics["mean_queue_length"] > 0.0


class TestCustomSolverFallback:
    def test_registered_solver_participates_in_fallback(self):
        backend = ConstantSolver()
        register_solver(backend)
        try:
            policy = SolverPolicy(order=("spectral", "constant"))
            outcome = evaluate(_deterministic_model(), policy)
            assert outcome.solver == "constant"
            assert outcome.metrics == {"mean_queue_length": 1.25, "mean_response_time": 2.5}
            assert backend.calls == 1
            # A solver earlier in the chain that succeeds shadows it.
            outcome = evaluate(
                sun_fitted_model(num_servers=5, arrival_rate=3.5), policy
            )
            assert outcome.solver == "spectral"
            assert backend.calls == 1
        finally:
            unregister_solver("constant")
        with pytest.raises(ParameterError, match="registered solvers"):
            SolverPolicy(order=("constant",))

    def test_custom_registry_scopes_dispatch(self):
        registry = SolverRegistry([ConstantSolver()])
        outcome = evaluate(
            sun_fitted_model(num_servers=5, arrival_rate=3.5),
            SolverPolicy(order=("spectral",)),
            registry=registry,
        )
        # 'spectral' is not in the custom registry: the lookup failure is a
        # recorded fallback failure, not a crash.
        assert outcome.solver is None
        assert "spectral:" in outcome.error

    def test_custom_registry_can_supply_policy_names(self):
        """A name that exists only in a custom registry is dispatchable
        through the facade without touching the global registry."""
        registry = SolverRegistry([ConstantSolver()])
        assert "constant" not in default_registry()
        outcome = solve(
            sun_fitted_model(num_servers=5, arrival_rate=3.5),
            "constant",
            cache=False,
            registry=registry,
        )
        assert outcome.solver == "constant"
        assert outcome.metrics["mean_queue_length"] == 1.25
        # solve_many honours the same scoping.
        outcomes = solve_many(
            [sun_fitted_model(num_servers=5, arrival_rate=3.5)],
            ("constant",),
            cache=SolutionCache(),
            registry=registry,
        )
        assert outcomes[0].solver == "constant"
        # Outside the facade the name is still unknown.
        with pytest.raises(ParameterError, match="registered solvers"):
            SolverPolicy(order=("constant",))


class TestSolveCaching:
    def test_explicit_cache_memoises(self):
        cache = SolutionCache()
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        first = solve(model, "spectral", cache=cache)
        second = solve(model, "spectral", cache=cache)
        assert first == second
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
            "size": 1,
            "maxsize": None,
            "solves": 1,
            "evictions": 0,
            "spills": 0,
            "spilled_entries": 0,
            "loads": 0,
            "loaded_entries": 0,
        }

    def test_cached_metrics_are_isolated_from_caller_mutation(self):
        """Annotating a returned outcome must not poison the shared cache."""
        cache = SolutionCache()
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        first = solve(model, "geometric", cache=cache)
        pristine = dict(first.metrics)
        first.metrics["mean_queue_length"] = -1.0
        first.metrics["annotation"] = 42.0
        second = solve(model, "geometric", cache=cache)
        assert second.metrics == pristine
        second.metrics["poison"] = 1.0
        assert solve(model, "geometric", cache=cache).metrics == pristine

    def test_equal_models_share_cache_entries_across_instances(self):
        """Distinct-but-equal distribution objects hit the same cache key."""
        cache = SolutionCache()
        first = solve(
            UnreliableQueueModel(
                num_servers=5,
                arrival_rate=3.5,
                service_rate=1.0,
                operative=HyperExponential(weights=[0.7, 0.3], rates=[0.25, 0.02]),
                inoperative=Exponential(rate=4.0),
            ),
            "geometric",
            cache=cache,
        )
        second = solve(
            UnreliableQueueModel(
                num_servers=5,
                arrival_rate=3.5,
                service_rate=1.0,
                operative=HyperExponential(weights=[0.7, 0.3], rates=[0.25, 0.02]),
                inoperative=Exponential(rate=4.0),
            ),
            "geometric",
            cache=cache,
        )
        assert first == second
        assert cache.stats()["solves"] == 1

    def test_cache_false_disables_memoisation(self):
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        first = solve(model, "spectral", cache=False)
        second = solve(model, "spectral", cache=False)
        assert first is not second and first == second

    def test_disabled_cache_counts_misses_but_stores_nothing(self):
        cache = SolutionCache(enabled=False)
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        solve(model, "geometric", cache=cache)
        solve(model, "geometric", cache=cache)
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2 and stats["size"] == 0


class TestSolveMany:
    def test_results_align_with_input_order(self):
        models = [
            sun_fitted_model(num_servers=count, arrival_rate=3.5) for count in (5, 6, 7)
        ]
        outcomes = solve_many(models, "geometric", cache=SolutionCache())
        assert [outcome.solver for outcome in outcomes] == ["geometric"] * 3
        lengths = [outcome.metrics["mean_queue_length"] for outcome in outcomes]
        assert lengths[0] > lengths[1] > lengths[2]

    def test_duplicate_models_solved_once(self):
        backend = ConstantSolver()
        register_solver(backend)
        try:
            cache = SolutionCache()
            model = _deterministic_model()
            outcomes = solve_many([model, model, model], "constant", cache=cache)
        finally:
            unregister_solver("constant")
        assert backend.calls == 1
        assert cache.stats()["solves"] == 1
        assert outcomes[0] is outcomes[1] is outcomes[2]

    def test_per_model_policies(self):
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        outcomes = solve_many(
            [model, model],
            [SolverPolicy(order=("spectral",)), SolverPolicy(order=("geometric",))],
            cache=SolutionCache(),
        )
        assert [outcome.solver for outcome in outcomes] == ["spectral", "geometric"]

    def test_policy_count_mismatch_rejected(self):
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        with pytest.raises(ParameterError, match="policies"):
            solve_many([model], [SolverPolicy(), SolverPolicy()], cache=SolutionCache())

    def test_parallel_matches_serial_and_deduplicates(self):
        models = [
            sun_fitted_model(num_servers=count, arrival_rate=3.5)
            for count in (5, 6, 5, 6, 7)
        ]
        serial_cache = SolutionCache()
        serial = solve_many(models, "spectral", cache=serial_cache)
        parallel_cache = SolutionCache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = solve_many(
                models, "spectral", parallel=True, max_workers=2, cache=parallel_cache
            )
        assert [outcome.metrics for outcome in parallel] == [
            outcome.metrics for outcome in serial
        ]
        # Three distinct configurations: exactly three solves, serial or not.
        assert serial_cache.stats()["solves"] == 3
        assert parallel_cache.stats()["solves"] == 3


class TestRepresentationPolicy:
    def test_policy_validates_the_representation(self):
        assert SolverPolicy().representation == "auto"
        assert SolverPolicy(representation="product").representation == "product"
        with pytest.raises(ParameterError, match="unknown representation"):
            SolverPolicy(representation="dense")

    def test_with_representation_returns_an_updated_copy(self):
        policy = SolverPolicy(order=("ctmc",))
        product = policy.with_representation("product")
        assert product.representation == "product"
        assert product.order == policy.order
        assert policy.representation == "auto"

    def test_ctmc_solver_forwards_a_non_auto_representation(self):
        ctmc = get_solver("ctmc")
        assert ctmc.options_from_policy(SolverPolicy()) == {}
        assert ctmc.options_from_policy(SolverPolicy(representation="lumped")) == {
            "representation": "lumped"
        }

    def test_product_policy_solves_scenarios_and_matches_lumped(self):
        from repro.scenarios import scenario_preset

        scenario = scenario_preset("single-repairman")
        lumped = evaluate(scenario, SolverPolicy(order=("ctmc",)))
        product = evaluate(scenario, SolverPolicy(order=("ctmc",), representation="product"))
        assert product.solver == "ctmc"
        assert product.metrics["num_solved_states"] > lumped.metrics["num_solved_states"]
        assert product.metrics["mean_queue_length"] == pytest.approx(
            lumped.metrics["mean_queue_length"], abs=1e-10
        )

    def test_product_policy_rejected_for_homogeneous_models_with_fallback(self):
        model = sun_fitted_model(num_servers=3, arrival_rate=1.5)
        policy = SolverPolicy(order=("ctmc", "simulate"), representation="product")
        outcome = evaluate(model, policy)
        # The ctmc backend raises UnsupportedScenarioError, so fallback
        # chains skip past it to the simulator instead of dying.
        assert outcome.solver == "simulate"

    def test_product_policy_alone_fails_for_homogeneous_models(self):
        model = sun_fitted_model(num_servers=3, arrival_rate=1.5)
        outcome = evaluate(model, SolverPolicy(order=("ctmc",), representation="product"))
        assert outcome.solver is None
        assert "no lumping to undo" in outcome.error


class TestWarmStartedSweeps:
    def test_serial_sweep_matches_independent_solves(self):
        models = [
            sun_fitted_model(num_servers=4, arrival_rate=rate)
            for rate in (1.2, 2.6, 1.5, 2.3, 1.9)
        ]
        swept = solve_many(models, "ctmc", cache=SolutionCache())
        for model, outcome in zip(models, swept):
            independent = evaluate(model, SolverPolicy(order=("ctmc",)))
            assert outcome.solver == "ctmc"
            assert outcome.metrics["mean_queue_length"] == pytest.approx(
                independent.metrics["mean_queue_length"], abs=1e-8
            )

    def test_results_stay_aligned_despite_grid_reordering(self):
        rates = (2.9, 1.1, 2.0, 1.4, 2.5)
        models = [sun_fitted_model(num_servers=4, arrival_rate=rate) for rate in rates]
        outcomes = solve_many(models, "ctmc", cache=SolutionCache())
        lengths = [outcome.metrics["mean_queue_length"] for outcome in outcomes]
        # Queue length is monotone in the arrival rate, so alignment bugs
        # (results permuted by the nearest-neighbour visit order) would
        # break the order statistics.
        assert sorted(lengths) == [lengths[i] for i in (1, 3, 2, 4, 0)]

    def test_scenario_sweep_warm_starts_match_cold_solves(self):
        from repro.scenarios import scenario_preset

        base = scenario_preset("single-repairman")
        models = [base.with_arrival_rate(rate) for rate in (0.8, 1.2, 1.0)]
        swept = solve_many(models, "ctmc", cache=SolutionCache())
        for model, outcome in zip(models, swept):
            cold = evaluate(model, SolverPolicy(order=("ctmc",)))
            assert outcome.metrics["mean_queue_length"] == pytest.approx(
                cold.metrics["mean_queue_length"], abs=1e-8
            )

    def test_neighbourhood_chunks_partition_the_grid_walk(self):
        from repro.solvers.facade import _grid_order, _neighbourhood_chunks, _parameter_vector

        rates = (2.9, 1.1, 2.0, 1.4, 2.5, 1.7, 2.2)
        tasks = [
            (index, sun_fitted_model(num_servers=4, arrival_rate=rate), SolverPolicy())
            for index, rate in enumerate(rates)
        ]
        chunks = _neighbourhood_chunks(tasks, 3)
        assert chunks is not None
        # Every task appears exactly once and each worker gets a contiguous,
        # near-equal run of the greedy nearest-neighbour walk.
        flattened = [task for chunk in chunks for task in chunk]
        assert sorted(index for index, _, _ in flattened) == list(range(len(rates)))
        order = _grid_order([_parameter_vector(model) for _, model, _ in tasks])
        assert [index for index, _, _ in flattened] == [tasks[i][0] for i in order]
        assert max(len(chunk) for chunk in chunks) - min(len(chunk) for chunk in chunks) <= 1
        # Structurally mixed batches have no common grid: no chunking.
        from repro.scenarios import scenario_preset

        mixed = tasks[:2] + [(9, scenario_preset("single-repairman"), SolverPolicy())]
        assert _neighbourhood_chunks(mixed, 2) is None

    def test_parallel_sweep_matches_serial_warm_started_results(self):
        rates = (2.9, 1.1, 2.0, 1.4, 2.5, 1.7, 2.2, 1.05)
        models = [sun_fitted_model(num_servers=4, arrival_rate=rate) for rate in rates]
        serial = solve_many(models, "ctmc", cache=SolutionCache())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = solve_many(
                models, "ctmc", parallel=True, max_workers=2, cache=SolutionCache()
            )
        for swept, cold in zip(parallel, serial):
            assert swept.solver == "ctmc"
            assert swept.metrics["mean_queue_length"] == pytest.approx(
                cold.metrics["mean_queue_length"], abs=1e-8
            )


class TestSweepRunnerDeduplication:
    def test_duplicated_grid_points_perform_no_redundant_solves(self):
        spec = SweepSpec(
            base_model=sun_fitted_model(num_servers=10, arrival_rate=7.0),
            axes=[("num_servers", (10, 11, 10, 11, 12))],
            policy=SolverPolicy(order=("geometric",)),
        )
        runner = SweepRunner()
        results = runner.run(spec)
        assert len(results) == 5
        assert runner.cache.stats()["solves"] == 3
        assert results[0].metrics == results[2].metrics
        assert results[1].metrics == results[3].metrics

    def test_parallel_duplicated_grid_points_share_the_cache(self):
        spec = SweepSpec(
            base_model=sun_fitted_model(num_servers=10, arrival_rate=7.0),
            axes=[("num_servers", (10, 11, 10, 11, 12))],
            policy=SolverPolicy(order=("geometric",)),
        )
        runner = SweepRunner(parallel=True, max_workers=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            results = runner.run(spec)
        assert runner.cache.stats()["solves"] == 3
        serial = SweepRunner().run(spec)
        assert [row.metrics for row in results] == [row.metrics for row in serial]

    def test_runners_can_share_one_cache(self):
        cache = SolutionCache()
        spec = SweepSpec(
            base_model=sun_fitted_model(num_servers=10, arrival_rate=7.0),
            axes=[("num_servers", (10, 11))],
            policy=SolverPolicy(order=("geometric",)),
        )
        SweepRunner(cache=cache).run(spec)
        SweepRunner(cache=cache).run(spec)
        assert cache.stats()["solves"] == 2
        assert cache.stats()["hits"] == 2


class _ShimDistribution(Distribution):
    """Unhashable wrapper relying on the base Distribution repr.

    Defining ``__eq__`` without ``__hash__`` makes instances unhashable —
    the configuration that used to force the sweep cache onto its colliding
    ``repr`` fallback.
    """

    def __init__(self, inner):
        self._inner = inner

    def pdf(self, x):
        return self._inner.pdf(x)

    def cdf(self, x):
        return self._inner.cdf(x)

    def moment(self, k):
        return self._inner.moment(k)

    def sample(self, rng, size=None):
        return self._inner.sample(rng, size)

    def laplace_transform(self, s):
        return self._inner.laplace_transform(s)

    def __eq__(self, other):
        return isinstance(other, _ShimDistribution) and self._inner == other._inner


class TestDistributionKeys:
    def test_distinct_parameterisations_no_longer_share_a_key(self):
        """Regression: same mean and SCV, different shape, equal base reprs.

        The old ``repr``-based fallback keyed both of these identically, so
        a sweep over one silently reused solutions of the other.
        """
        first_inner = HyperExponential(weights=[0.5, 0.5], rates=[1.0, 3.0])
        second_inner = HyperExponential.from_mean_and_scv(
            first_inner.mean, first_inner.scv
        )
        first, second = _ShimDistribution(first_inner), _ShimDistribution(second_inner)
        with pytest.raises(TypeError):
            hash(first)  # precondition: genuinely unhashable
        assert repr(first) == repr(second)  # the old colliding key
        assert first != second
        assert distribution_key(first) != distribution_key(second)

    def test_library_distributions_key_on_type_and_parameters(self):
        assert distribution_key(Exponential(rate=0.5)) == distribution_key(
            Exponential(rate=0.5)
        )
        assert distribution_key(Exponential(rate=0.5)) != distribution_key(
            Exponential(rate=0.25)
        )
        # Same parameter tuple under different types must not collide.
        assert distribution_key(Deterministic(value=2.0)) != distribution_key(
            Exponential(rate=2.0)
        )

    def test_every_library_distribution_implements_parameter_key(self):
        from repro.distributions import Erlang, PhaseType
        from repro.distributions.coxian import Coxian

        distributions = [
            Exponential(rate=2.0),
            HyperExponential(weights=[0.6, 0.4], rates=[1.0, 2.0]),
            Erlang(shape=3, rate=1.5),
            Deterministic(value=4.0),
            Coxian(rates=[1.0, 2.0], continue_probs=[0.5]),
            PhaseType(initial=[1.0], generator=[[-2.0]]),
        ]
        for distribution in distributions:
            key = distribution.parameter_key()
            assert isinstance(key, tuple) and hash(key) is not None


class TestBoundedCache:
    """LRU bounding of the shared solution cache (sweep workloads)."""

    @staticmethod
    def _outcome(tag: float) -> SolveOutcome:
        return SolveOutcome("spectral", True, {"mean_queue_length": tag}, None)

    def test_store_evicts_least_recently_used(self):
        cache = SolutionCache(maxsize=2)
        cache.store(("a",), self._outcome(1.0))
        cache.store(("b",), self._outcome(2.0))
        assert cache.lookup(("a",)) is not None  # refreshes 'a'; 'b' is now LRU
        cache.store(("c",), self._outcome(3.0))
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) is not None
        assert cache.lookup(("c",)) is not None
        stats = cache.stats()
        assert stats["size"] == 2 and stats["evictions"] == 1

    def test_merge_respects_the_bound(self):
        cache = SolutionCache(maxsize=2)
        cache.merge({(key,): self._outcome(float(index)) for index, key in enumerate("abcd")})
        stats = cache.stats()
        assert stats["size"] == 2 and stats["evictions"] == 2
        # Mapping order is preserved: the two most recent entries survive.
        assert cache.lookup(("c",)) is not None and cache.lookup(("d",)) is not None

    def test_unbounded_by_default_and_bad_bound_rejected(self):
        cache = SolutionCache()
        assert cache.maxsize is None
        for index in range(100):
            cache.store((index,), self._outcome(float(index)))
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
            "size": 100,
            "maxsize": None,
            "solves": 0,
            "evictions": 0,
            "spills": 0,
            "spilled_entries": 0,
            "loads": 0,
            "loaded_entries": 0,
        }
        with pytest.raises(ValueError, match="maxsize"):
            SolutionCache(maxsize=0)

    def test_clear_resets_eviction_counter(self):
        cache = SolutionCache(maxsize=1)
        cache.store(("a",), self._outcome(1.0))
        cache.store(("b",), self._outcome(2.0))
        assert cache.stats()["evictions"] == 1
        cache.clear()
        assert cache.stats()["evictions"] == 0

    def test_bounded_cache_still_memoises_solves(self):
        cache = SolutionCache(maxsize=8)
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        first = solve(model, "geometric", cache=cache)
        second = solve(model, "geometric", cache=cache)
        assert first == second
        assert cache.stats()["solves"] == 1


class TestFallbackExhaustion:
    """When every solver in a chain is unsupported, the error names each one."""

    def test_scenario_on_homogeneous_only_chain_names_every_skipped_solver(self):
        from repro.scenarios import scenario_preset

        scenario = scenario_preset("single-repairman")
        outcome = evaluate(scenario, SolverPolicy(order=("spectral", "geometric")))
        assert outcome.solver is None
        assert outcome.stable is True
        assert outcome.metrics == {}
        # One diagnostic per skipped solver, each naming the solver and the
        # reason it was skipped.
        for name in ("spectral", "geometric"):
            assert f"{name}:" in outcome.error
            assert f"the {name!r} solver handles only the homogeneous model" in outcome.error
        assert outcome.error.count("solver handles only") == 2  # one per skipped solver

    def test_exhaustion_error_reaches_sweep_rows_and_metric_lookups(self):
        from repro.scenarios import scenario_preset
        from repro.sweeps import SweepResultSet  # noqa: F401 - import guard

        scenario = scenario_preset("two-speed-cluster")
        spec = SweepSpec(
            base_model=scenario,
            axes=[("arrival_rate", (1.0,))],
            policy=SolverPolicy(order=("spectral", "geometric")),
        )
        results = SweepRunner().run(spec)
        row = results[0]
        assert row.solver is None and not row.ok
        assert "spectral:" in row.error and "geometric:" in row.error
        with pytest.raises(SolverError, match="spectral"):
            row.metric("mean_queue_length")


class TestOutcomeRecord:
    def test_ok_property(self):
        assert SolveOutcome("spectral", True, {}, None).ok
        assert not SolveOutcome(None, True, {}, "spectral: boom").ok
