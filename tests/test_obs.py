"""Tests of the observability substrate and its wiring through the service.

Unit coverage of :mod:`repro.obs` (exact histogram merging across pickled
pipe round-trips, the Prometheus text exposition, structured logging, trace
assembly, profiling capture) plus the integration contracts the tentpole
promises: 100 identical concurrent requests produce traces that all
reference the *same* solve span, and a live service's ``/metrics`` histogram
count equals its ``/stats`` request total — single-process and sharded.
"""

from __future__ import annotations

import asyncio
import io
import json
import pickle
import random
import re
import threading
import time

import pytest

from repro.exceptions import ParameterError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    Span,
    TraceBuilder,
    TraceRecorder,
    capture_attempts,
    configure_logging,
    get_logger,
    logging_config,
    record_attempt,
)
from repro.obs.dashboard import (
    DashboardSnapshot,
    histogram_quantile,
    metric_value,
    parse_prometheus_text,
    render_dashboard,
    summarize,
)
from repro.obs.slo import SloTargets, SloTracker
from repro.obs.tracing import Trace, new_trace_id
from repro.distributions import Exponential
from repro.queueing import UnreliableQueueModel
from repro.service import (
    BatchScheduler,
    ServiceClient,
    ServiceConfig,
    ThreadedService,
    parse_solve_request,
)
from repro.solvers import evaluate


def _model(servers: int = 4, arrival_rate: float = 2.0) -> UnreliableQueueModel:
    return UnreliableQueueModel(
        num_servers=servers,
        arrival_rate=arrival_rate,
        service_rate=1.0,
        operative=Exponential(rate=1.0 / 34.62),
        inoperative=Exponential(rate=25.0),
    )


@pytest.fixture(autouse=True)
def _reset_logging_config():
    """Restore the process-wide logging config after every test."""
    config = logging_config()
    yield
    configure_logging(config.format, config.stream)


# --------------------------------------------------------------------------- #
# Histograms: exact merging, percentiles, pickling
# --------------------------------------------------------------------------- #


def _random_histogram(seed: int, samples: int = 500) -> Histogram:
    rng = random.Random(seed)
    histogram = Histogram()
    for _ in range(samples):
        # Log-uniform over the bucket range plus some overflow beyond 100s.
        histogram.observe(10.0 ** rng.uniform(-4.5, 2.5))
    return histogram


class TestHistogram:
    def test_default_buckets_are_fixed_log_spaced_constants(self):
        assert len(DEFAULT_LATENCY_BUCKETS) == 49
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(100.0)
        ratios = [
            DEFAULT_LATENCY_BUCKETS[i + 1] / DEFAULT_LATENCY_BUCKETS[i]
            for i in range(len(DEFAULT_LATENCY_BUCKETS) - 1)
        ]
        assert all(ratio == pytest.approx(10.0 ** (1.0 / 8.0), rel=1e-6) for ratio in ratios)

    def test_observe_counts_and_sum(self):
        histogram = Histogram()
        for value in (0.001, 0.01, 0.01, 1000.0):  # last lands in overflow
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(1000.021)
        assert sum(histogram.counts) == 4

    def test_merge_is_commutative(self):
        a, b = _random_histogram(1), _random_histogram(2)
        ab = a.snapshot()
        ab.merge(b)
        ba = b.snapshot()
        ba.merge(a)
        assert ab == ba

    def test_merge_is_associative(self):
        a, b, c = _random_histogram(3), _random_histogram(4), _random_histogram(5)
        left = a.snapshot()
        left.merge(b)
        left.merge(c)
        bc = b.snapshot()
        bc.merge(c)
        right = a.snapshot()
        right.merge(bc)
        assert left == right

    def test_pickled_round_trip_merge_matches_single_process(self):
        """The sharded contract: per-worker histograms shipped over a pipe
        (pickled) and merged in the front equal one histogram that saw every
        observation in a single process."""
        rng = random.Random(99)
        values = [10.0 ** rng.uniform(-4.5, 2.5) for _ in range(900)]
        single = Histogram()
        for value in values:
            single.observe(value)
        shards = [Histogram() for _ in range(3)]
        for index, value in enumerate(values):
            shards[index % 3].observe(value)
        merged = Histogram()
        for shard in shards:
            merged.merge(pickle.loads(pickle.dumps(shard)))
        assert merged == single
        assert merged.percentile(0.99) == single.percentile(0.99)

    def test_dict_round_trip(self):
        histogram = _random_histogram(7)
        clone = Histogram.from_dict(json.loads(json.dumps(histogram.to_dict())))
        assert clone == histogram

    def test_merge_refuses_mismatched_bounds(self):
        histogram = Histogram()
        other = Histogram(upper_bounds=(0.1, 1.0, 10.0))
        with pytest.raises(ParameterError, match="bounds"):
            histogram.merge(other)

    def test_percentile_interpolates_within_one_bucket(self):
        histogram = Histogram()
        for _ in range(1000):
            histogram.observe(0.2)
        estimate = histogram.percentile(0.99)
        # 0.2s falls in a bucket whose bounds are within one eighth-decade.
        assert estimate == pytest.approx(0.2, rel=10.0 ** (1.0 / 8.0) - 1.0)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ParameterError, match="quantile"):
            Histogram().percentile(1.5)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.99) == 0.0


# --------------------------------------------------------------------------- #
# Registry: series, dict transport, Prometheus rendering
# --------------------------------------------------------------------------- #


class TestMetricsRegistry:
    def test_counter_and_gauge_are_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "X.", labels={"shard": "0"}).inc()
        registry.counter("repro_x_total", labels={"shard": "0"}).inc(2.0)
        registry.gauge("repro_depth", "Depth.").set(7.0)
        payload = registry.to_dict()
        clone = MetricsRegistry()
        clone.merge_dict(payload)
        text = clone.render()
        assert 'repro_x_total{shard="0"} 3' in text
        assert "repro_depth 7" in text

    def test_merge_dict_sums_histograms_exactly(self):
        shard_payloads = []
        singles = Histogram()
        for seed in (11, 12, 13):
            rng = random.Random(seed)
            registry = MetricsRegistry()
            histogram = registry.histogram("repro_lat_seconds", "Lat.")
            for _ in range(200):
                value = 10.0 ** rng.uniform(-4, 2)
                histogram.observe(value)
                singles.observe(value)
            shard_payloads.append(json.loads(json.dumps(registry.to_dict())))
        front = MetricsRegistry()
        for payload in shard_payloads:
            front.merge_dict(payload)
        merged = front.histogram("repro_lat_seconds")
        assert merged.count == singles.count == 600
        assert merged == singles

    def test_render_is_prometheus_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "Requests.", labels={"shard": "1"}).inc(5)
        histogram = registry.histogram(
            "repro_solve_latency_seconds", "Solve latency.", labels={"shard": "1"}
        )
        histogram.observe(0.002)
        histogram.observe(0.5)
        text = registry.render()
        assert "# HELP repro_requests_total Requests.\n" in text
        assert "# TYPE repro_requests_total counter\n" in text
        assert '# TYPE repro_solve_latency_seconds histogram' in text
        assert 'repro_requests_total{shard="1"} 5' in text
        # Cumulative buckets end at +Inf and agree with _count.
        assert 'le="+Inf"' in text
        count_line = [
            line
            for line in text.splitlines()
            if line.startswith("repro_solve_latency_seconds_count")
        ]
        assert count_line == ['repro_solve_latency_seconds_count{shard="1"} 2']
        inf_line = [line for line in text.splitlines() if 'le="+Inf"' in line]
        assert inf_line[0].endswith(" 2")

    def test_every_sample_line_parses(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "A.").inc()
        registry.gauge("repro_b", "B.", labels={"kind": 'we"ird\nname'}).set(1.5)
        registry.histogram("repro_c_seconds", "C.").observe(0.01)
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$"
        )
        lines = [
            line for line in registry.render().splitlines() if line and not line.startswith("#")
        ]
        assert lines
        for line in lines:
            assert sample.match(line), line


# --------------------------------------------------------------------------- #
# Structured logging
# --------------------------------------------------------------------------- #


class TestStructuredLogger:
    def test_json_lines_carry_bound_trace_id(self):
        sink = io.StringIO()
        configure_logging("json", sink)
        logger = get_logger("repro.service").bind(trace_id="abc123")
        logger.info("request-admitted", shard=3)
        record = json.loads(sink.getvalue())
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.service"
        assert record["event"] == "request-admitted"
        assert record["trace_id"] == "abc123"
        assert record["shard"] == 3
        assert record["ts"].endswith("Z")

    def test_text_format_renders_fields(self):
        sink = io.StringIO()
        configure_logging("text", sink)
        get_logger("repro.service").warning("slow-request", duration_ms=12.5)
        line = sink.getvalue()
        assert "WARNING" in line
        assert "slow-request" in line
        assert "duration_ms=12.5" in line

    def test_config_is_read_at_emit_time(self):
        logger = get_logger("repro.service")  # created before configuration
        sink = io.StringIO()
        configure_logging("json", sink)
        logger.error("late-binding")
        assert json.loads(sink.getvalue())["event"] == "late-binding"

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="log format"):
            configure_logging("yaml")


# --------------------------------------------------------------------------- #
# Traces
# --------------------------------------------------------------------------- #


class TestTracing:
    def test_builder_records_ordered_spans(self):
        trace = TraceBuilder()
        with trace.timed("admission"):
            pass
        with trace.timed("solve", solver="spectral"):
            pass
        sealed = trace.finish("ok")
        assert [span.name for span in sealed.spans] == ["admission", "solve"]
        assert sealed.status == "ok"
        assert sealed.duration_ms >= 0.0
        assert sealed.spans[1].annotations == {"solver": "spectral"}

    def test_add_span_rebases_worker_offsets(self):
        """The cross-process assembly rule: a worker span at offset t within
        its own trace lands at (pipe-send offset + t) in the front's trace."""
        front = TraceBuilder()
        worker_span = Span(name="solve", span_id="beef0001", start_ms=2.0, duration_ms=5.0)
        front.add_span(worker_span, shift_ms=10.0)
        adopted = front.spans[0]
        assert adopted.start_ms == pytest.approx(12.0)
        assert adopted.duration_ms == pytest.approx(5.0)
        assert adopted.span_id == "beef0001"

    def test_span_dict_round_trip(self):
        span = Span(
            name="backend:spectral",
            span_id="cafe0002",
            start_ms=1.25,
            duration_ms=3.5,
            annotations={"ok": True},
        )
        assert Span.from_dict(json.loads(json.dumps(span.to_dict()))) == span

    def test_recorder_ring_is_bounded(self):
        recorder = TraceRecorder(4, slow_threshold_seconds=10.0)
        for _ in range(10):
            recorder.record(TraceBuilder().finish("ok"))
        assert recorder.recorded_total == 10
        assert len(recorder.snapshot()) == 4

    def test_find_by_trace_id(self):
        recorder = TraceRecorder(8, slow_threshold_seconds=10.0)
        trace = TraceBuilder().finish("ok")
        recorder.record(trace)
        assert recorder.find(trace.trace_id) is trace
        assert recorder.find("missing") is None

    def test_slow_traces_are_emitted_to_the_log(self):
        sink = io.StringIO()
        configure_logging("json", sink)
        recorder = TraceRecorder(
            8, slow_threshold_seconds=0.0, logger=get_logger("repro.service")
        )
        builder = TraceBuilder()
        with builder.timed("solve"):
            pass
        recorder.record(builder.finish("ok"))
        assert recorder.slow_total == 1
        record = json.loads(sink.getvalue())
        assert record["event"] == "slow-request"
        assert record["trace_id"] == builder.trace_id
        assert record["spans"][0]["name"] == "solve"


# --------------------------------------------------------------------------- #
# Profiling capture through the solver facade
# --------------------------------------------------------------------------- #


class TestProfilingCapture:
    def test_record_attempt_is_a_no_op_without_capture(self):
        record_attempt("spectral", 0.001, ok=True)  # must not raise

    def test_facade_records_fallback_chain_attempts(self):
        model = _model()
        with capture_attempts() as attempts:
            outcome = evaluate(model)
        assert outcome.solver == "spectral"
        assert [attempt.solver for attempt in attempts] == ["spectral"]
        assert attempts[0].ok is True
        assert attempts[0].seconds > 0.0
        payload = attempts[0].to_dict()
        assert payload["solver"] == "spectral"
        assert payload["ok"] is True

    def test_nested_captures_innermost_wins(self):
        with capture_attempts() as outer:
            with capture_attempts() as inner:
                record_attempt("geometric", 0.002, ok=False, error="boom")
            record_attempt("spectral", 0.001, ok=True)
        assert [attempt.solver for attempt in inner] == ["geometric"]
        assert inner[0].error == "boom"
        assert [attempt.solver for attempt in outer] == ["spectral"]


# --------------------------------------------------------------------------- #
# Scheduler integration: trace propagation and histogram/counter agreement
# --------------------------------------------------------------------------- #


class TestSchedulerObservability:
    def test_coalesced_requests_share_one_solve_span(self):
        """100 identical concurrent requests must produce traces that all
        reference the SAME solve span id — proof they shared one solve."""
        scheduler = BatchScheduler(batch_window=0.01, shard=0)
        request = parse_solve_request({"model": {"servers": 4, "arrival_rate": 2.0}})
        traces = [TraceBuilder() for _ in range(100)]

        async def run():
            try:
                await asyncio.gather(
                    *(
                        scheduler.submit(request.model, request.policy, trace=trace)
                        for trace in traces
                    )
                )
            finally:
                await scheduler.close()

        asyncio.run(run())
        solve_spans = []
        for trace in traces:
            spans = {span.name: span for span in trace.spans}
            assert "cache-lookup" in spans
            assert "solve" in spans
            solve_spans.append(spans["solve"])
        assert len({span.span_id for span in solve_spans}) == 1
        coalesced_flags = [span.annotations["coalesced"] for span in solve_spans]
        assert coalesced_flags.count(False) == 1
        assert coalesced_flags.count(True) == 99

    def test_solve_latency_count_equals_requests_total(self):
        scheduler = BatchScheduler(batch_window=0.0, shard=3)
        requests = [
            parse_solve_request({"model": {"servers": servers, "arrival_rate": 1.0}})
            for servers in (3, 4, 5)
        ]

        async def run():
            try:
                for request in requests:
                    await scheduler.submit(request.model, request.policy)
                    # A cache hit must count toward the histogram too.
                    await scheduler.submit(request.model, request.policy)
            finally:
                await scheduler.close()

        asyncio.run(run())
        stats = scheduler.stats()
        payload = scheduler.metrics_snapshot()
        registry = MetricsRegistry()
        registry.merge_dict(payload)
        histogram = registry.histogram(
            "repro_solve_latency_seconds", labels={"shard": "3"}
        )
        assert stats["requests_total"] == 6
        assert histogram.count == 6

    def test_backend_attempt_spans_are_recorded(self):
        scheduler = BatchScheduler(batch_window=0.0, shard=0)
        request = parse_solve_request({"model": {"servers": 4, "arrival_rate": 2.0}})
        trace = TraceBuilder()

        async def run():
            try:
                await scheduler.submit(request.model, request.policy, trace=trace)
            finally:
                await scheduler.close()

        asyncio.run(run())
        backends = [span for span in trace.spans if span.name.startswith("backend:")]
        assert backends
        assert backends[0].name == "backend:spectral"
        assert backends[0].annotations["ok"] is True


# --------------------------------------------------------------------------- #
# Live service: /metrics vs /stats, trace echoes
# --------------------------------------------------------------------------- #


def _metric_values(text: str, name: str) -> dict[str, float]:
    """Map of rendered label-string -> value for one metric name."""
    values: dict[str, float] = {}
    pattern = re.compile(rf"^{re.escape(name)}(\{{[^}}]*\}})? (-?[0-9.eE+]+)$")
    for line in text.splitlines():
        match = pattern.match(line)
        if match:
            values[match.group(1) or ""] = float(match.group(2))
    return values


class TestServiceMetricsEndpoint:
    def test_single_process_metrics_agree_with_stats(self):
        config = ServiceConfig(port=0, batch_window=0.002)
        with ThreadedService(config) as service:
            with ServiceClient(service.host, service.port, timeout=120.0) as client:
                for servers in (3, 4, 5, 4, 3):
                    payload = client.solve_ok(
                        {"model": {"servers": servers, "arrival_rate": 1.0}}
                    )
                    assert re.fullmatch(r"[0-9a-f]{16}", payload["trace_id"])
                stats = client.stats()
                status, text = client.metrics()
        assert status == 200
        requests_total = stats.payload["scheduler"]["requests_total"]
        counts = _metric_values(text, "repro_solve_latency_seconds_count")
        assert sum(counts.values()) == requests_total
        totals = _metric_values(text, "repro_requests_total")
        assert sum(totals.values()) == requests_total
        assert _metric_values(text, "repro_http_responses_total")
        assert _metric_values(text, "repro_uptime_seconds")

    def test_responses_echo_trace_ids_in_headers_and_payloads(self):
        config = ServiceConfig(port=0, batch_window=0.0)
        with ThreadedService(config) as service:
            with ServiceClient(service.host, service.port, timeout=120.0) as client:
                solved = client.solve({"model": {"servers": 4, "arrival_rate": 2.0}})
                assert solved.headers["x-trace-id"] == solved.payload["trace_id"]
                health = client.healthz()
                assert health.headers["x-trace-id"] == health.payload["trace_id"]
                assert health.payload["version"]
                stats = client.stats()
                assert stats.headers["x-trace-id"] == stats.payload["trace_id"]
                failed = client.solve({"model": {"servers": 4}})
                assert failed.status == 400
                assert failed.headers["x-trace-id"] == failed.payload["trace_id"]

    def test_sharded_metrics_count_equals_stats_total(self):
        config = ServiceConfig(port=0, workers=2, batch_window=0.002)
        with ThreadedService(config) as service:
            with ServiceClient(service.host, service.port, timeout=120.0) as client:
                for index in range(12):
                    client.solve_ok(
                        {"model": {"servers": 3 + index % 4, "arrival_rate": 1.1}}
                    )
                stats = client.stats()
                status, text = client.metrics()
        assert status == 200
        assert stats.payload["workers"] == 2
        requests_total = stats.payload["totals"]["requests_total"]
        counts = _metric_values(text, "repro_solve_latency_seconds_count")
        assert len(counts) == 2  # one histogram per shard
        assert sum(counts.values()) == requests_total
        shards = _metric_values(text, "repro_workers_ready")
        assert shards[""] == 2.0


# --------------------------------------------------------------------------- #
# Trace recorder rings: exemplar sampling, queries, thread-safety
# --------------------------------------------------------------------------- #


def _sealed_trace(duration_ms: float, started_at: float) -> Trace:
    """A minimal completed trace with controlled duration and start stamp."""
    return Trace(
        trace_id=new_trace_id(),
        started_at=started_at,
        status="ok",
        duration_ms=duration_ms,
        spans=(),
    )


class TestTraceRecorderRings:
    def test_exemplars_survive_recent_ring_churn(self):
        recorder = TraceRecorder(4, slow_threshold_seconds=10.0, exemplar_interval=4)
        traces = [_sealed_trace(duration_ms=1.0, started_at=float(i)) for i in range(12)]
        for trace in traces:
            recorder.record(trace)
        assert recorder.exemplar_total == 3  # the 1st, 5th and 9th
        # The first trace fell off the recent ring long ago but its exemplar
        # copy keeps it findable; its non-exemplar neighbour is gone.
        assert recorder.find(traces[0].trace_id) is traces[0]
        assert recorder.find(traces[1].trace_id) is None
        listed = {trace.trace_id for trace in recorder.query(limit=12)}
        assert traces[4].trace_id in listed
        assert traces[8].trace_id in listed

    def test_zero_interval_disables_exemplar_sampling(self):
        recorder = TraceRecorder(4, slow_threshold_seconds=10.0, exemplar_interval=0)
        for index in range(10):
            recorder.record(_sealed_trace(duration_ms=1.0, started_at=float(index)))
        assert recorder.exemplar_total == 0
        assert recorder.recorded_total == 10

    def test_query_slow_filter_limit_and_ordering(self):
        recorder = TraceRecorder(8, slow_threshold_seconds=0.5, exemplar_interval=0)
        fast = [_sealed_trace(duration_ms=1.0, started_at=float(i)) for i in range(3)]
        slow = [_sealed_trace(duration_ms=900.0, started_at=10.0 + i) for i in range(2)]
        for trace in fast + slow:
            recorder.record(trace)
        assert recorder.slow_total == 2
        listed = recorder.query(slow=True, limit=8)
        assert [t.trace_id for t in listed] == [slow[1].trace_id, slow[0].trace_id]
        newest = recorder.query(limit=2)
        assert [t.trace_id for t in newest] == [slow[1].trace_id, slow[0].trace_id]

    def test_concurrent_record_and_query_is_safe(self):
        """The satellite pin: writers and readers share one lock — concurrent
        appends must neither corrupt the rings nor lose a count."""
        recorder = TraceRecorder(32, slow_threshold_seconds=0.0, exemplar_interval=3)
        per_thread = 200
        writers = 4
        errors: list[Exception] = []

        def write(worker: int) -> None:
            try:
                for index in range(per_thread):
                    recorder.record(
                        _sealed_trace(duration_ms=1.0, started_at=worker * 1e3 + index)
                    )
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        def read() -> None:
            try:
                for _ in range(200):
                    recorder.query(slow=True, limit=8)
                    recorder.query(limit=8)
                    recorder.find("no-such-trace")
                    recorder.snapshot()
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(w,)) for w in range(writers)]
        threads += [threading.Thread(target=read) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert recorder.recorded_total == writers * per_thread
        assert recorder.slow_total == writers * per_thread
        assert recorder.exemplar_total == (writers * per_thread + 2) // 3
        assert len(recorder.snapshot()) == 32

    def test_invalid_shapes_are_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceRecorder(0)
        with pytest.raises(ValueError, match="exemplar_interval"):
            TraceRecorder(4, exemplar_interval=-1)


# --------------------------------------------------------------------------- #
# SLO tracker: rolling percentiles, pressure, error budgets
# --------------------------------------------------------------------------- #


class TestSloTracker:
    def test_disabled_targets_are_inert(self):
        tracker = SloTracker(
            SloTargets(queue_wait_p99_seconds=0.0, solve_latency_p99_seconds=0.0)
        )
        tracker.observe_queue_wait(100.0)
        tracker.observe_solve_latency(100.0)
        assert tracker.enabled is False
        assert tracker.pressure() == 0.0
        assert tracker.error_budget() == {"queue-wait": 0, "solve-latency": 0}

    def test_pressure_is_the_max_ratio_over_objectives(self):
        tracker = SloTracker(
            SloTargets(queue_wait_p99_seconds=1.0, solve_latency_p99_seconds=100.0)
        )
        for _ in range(20):
            tracker.observe_queue_wait(2.0)
            tracker.observe_solve_latency(2.0)
        # The queue-wait ratio (~2/1) dominates the solve ratio (~2/100).
        assert tracker.pressure() == pytest.approx(tracker.queue_wait_p99() / 1.0)
        assert tracker.pressure() >= 1.0

    def test_error_budget_counts_exact_violations(self):
        tracker = SloTracker(
            SloTargets(queue_wait_p99_seconds=1.0, solve_latency_p99_seconds=1.0)
        )
        tracker.observe_queue_wait(0.5)
        tracker.observe_queue_wait(1.5)
        tracker.observe_solve_latency(2.0)
        assert tracker.error_budget() == {"queue-wait": 1, "solve-latency": 1}

    def test_snapshot_is_json_safe(self):
        tracker = SloTracker()
        tracker.observe_queue_wait(0.01)
        snapshot = json.loads(json.dumps(tracker.snapshot()))
        assert set(snapshot) == {
            "queue_wait_p99_seconds",
            "solve_latency_p99_seconds",
            "queue_wait_target_seconds",
            "solve_latency_target_seconds",
            "pressure",
            "error_budget",
        }
        assert snapshot["queue_wait_target_seconds"] == 2.0

    def test_export_into_renders_the_slo_families(self):
        tracker = SloTracker(
            SloTargets(queue_wait_p99_seconds=0.001, solve_latency_p99_seconds=30.0)
        )
        for _ in range(5):
            tracker.observe_queue_wait(0.5)
        registry = MetricsRegistry()
        tracker.export_into(registry)
        text = registry.render()
        budget = _metric_values(text, "repro_slo_error_budget_total")
        assert budget['{slo="queue-wait"}'] == 5.0
        assert budget['{slo="solve-latency"}'] == 0.0
        assert _metric_values(text, "repro_slo_pressure")[""] >= 1.0
        assert _metric_values(text, "repro_slo_queue_wait_target_seconds")[""] == 0.001
        assert _metric_values(text, "repro_slo_queue_wait_p99_seconds")[""] > 0.0

    def test_rolling_window_forgets_old_observations(self):
        tracker = SloTracker(
            SloTargets(queue_wait_p99_seconds=1.0, solve_latency_p99_seconds=1.0),
            window_seconds=0.2,
            tick_seconds=0.05,
        )
        tracker.observe_queue_wait(50.0)
        assert tracker.pressure() >= 1.0
        deadline = time.monotonic() + 10.0
        while tracker.pressure() >= 1.0 and time.monotonic() < deadline:
            time.sleep(0.05)
        # The spike rolled out of the window; a cumulative histogram would
        # have pinned the p99 at 50 s forever.
        assert tracker.pressure() < 1.0


# --------------------------------------------------------------------------- #
# Dashboard: exposition parsing, quantiles, summaries, rendering
# --------------------------------------------------------------------------- #


class TestDashboard:
    def test_parse_prometheus_text_reads_labels_and_values(self):
        text = (
            "# HELP repro_requests_total Requests.\n"
            "# TYPE repro_requests_total counter\n"
            'repro_requests_total{shard="0"} 5\n'
            'repro_requests_total{shard="1"} 7\n'
            "repro_uptime_seconds 12.5\n"
        )
        parsed = parse_prometheus_text(text)
        assert metric_value(parsed, "repro_requests_total") == 12.0
        assert metric_value(parsed, "repro_requests_total", {"shard": "1"}) == 7.0
        assert metric_value(parsed, "repro_uptime_seconds") == 12.5
        assert metric_value(parsed, "missing_series", default=3.0) == 3.0

    def test_histogram_quantile_matches_the_source_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_solve_latency_seconds", "Latency.")
        rng = random.Random(11)
        for _ in range(300):
            histogram.observe(10.0 ** rng.uniform(-3.0, 1.0))
        parsed = parse_prometheus_text(registry.render())
        for quantile in (0.5, 0.9, 0.99):
            assert histogram_quantile(
                parsed, "repro_solve_latency_seconds", quantile
            ) == pytest.approx(histogram.percentile(quantile), rel=1e-9)

    @staticmethod
    def _metrics_text(responses: float, requests: float) -> str:
        return (
            f"repro_http_responses_total {responses}\n"
            f'repro_requests_total{{shard="0"}} {requests}\n'
            "repro_uptime_seconds 42.0\n"
            "repro_workers_ready 2\n"
            'repro_queue_depth{shard="0"} 3\n'
            "repro_slo_pressure 0.25\n"
            'repro_slo_error_budget_total{slo="queue-wait"} 2\n'
            'repro_cache_lookup_hits_total{shard="0"} 3\n'
            'repro_cache_lookup_misses_total{shard="0"} 1\n'
        )

    def test_summarize_reports_rates_against_a_predecessor(self):
        stats = {"shards": [{"shard": 0, "state": "ready"}]}
        earlier = DashboardSnapshot.from_payloads(self._metrics_text(10, 4), stats, at=1.0)
        later = DashboardSnapshot.from_payloads(self._metrics_text(30, 8), stats, at=3.0)
        summary = summarize(later, earlier)
        assert summary["rps"] == pytest.approx(10.0)
        assert summary["responses_total"] == 30.0
        assert summary["workers_ready"] == 2.0
        assert summary["slo"]["pressure"] == 0.25
        assert summary["slo"]["error_budget"] == {"queue-wait": 2.0}
        (shard,) = summary["shards"]
        assert shard["shard"] == 0
        assert shard["state"] == "ready"
        assert shard["rps"] == pytest.approx(2.0)
        assert shard["queue_depth"] == 3.0
        assert shard["cache_hit_rate"] == pytest.approx(0.75)

    def test_summarize_without_a_predecessor_has_no_rates(self):
        snapshot = DashboardSnapshot.from_payloads(self._metrics_text(10, 4), {}, at=1.0)
        summary = summarize(snapshot)
        assert summary["rps"] is None
        assert summary["shards"][0]["rps"] is None

    def test_render_dashboard_lines(self):
        snapshot = DashboardSnapshot.from_payloads(self._metrics_text(10, 4), {}, at=1.0)
        lines = render_dashboard(snapshot)
        assert lines[0].startswith("repro top — ")
        assert "pressure 0.25" in lines[1]
        assert "queue-wait 2" in lines[1]
        assert any(line.lstrip().startswith("0") for line in lines[5:])

    def test_render_dashboard_without_shard_series_hints(self):
        snapshot = DashboardSnapshot.from_payloads("repro_uptime_seconds 1\n", {}, at=0.0)
        lines = render_dashboard(snapshot)
        assert any("no per-shard series yet" in line for line in lines)


# --------------------------------------------------------------------------- #
# Live service: the trace query API
# --------------------------------------------------------------------------- #


class TestTraceQueryEndpoints:
    def test_trace_lookup_returns_the_span_tree(self):
        config = ServiceConfig(port=0, batch_window=0.0, slow_request_seconds=0.0)
        with ThreadedService(config) as service:
            with ServiceClient(service.host, service.port, timeout=120.0) as client:
                payload = client.solve_ok({"model": {"servers": 4, "arrival_rate": 2.0}})
                trace_id = payload["trace_id"]

                found = client.trace(trace_id)
                assert found.status == 200
                trace = found.payload["trace"]
                assert trace["trace_id"] == trace_id
                assert trace["status"] == "ok"
                names = [span["name"] for span in trace["spans"]]
                for expected in ("admission", "cache-lookup", "queue-wait", "solve"):
                    assert expected in names
                offsets = [span["start_ms"] for span in trace["spans"]]
                assert offsets == sorted(offsets)  # sealed traces sort spans

                # slow_request_seconds=0 marks everything slow, so the slow
                # listing must contain it; the plain listing must too.
                slow_listing = client.traces(slow=True, limit=10)
                assert slow_listing.status == 200
                assert any(
                    entry["trace_id"] == trace_id
                    for entry in slow_listing.payload["traces"]
                )
                listing = client.traces(limit=5)
                assert listing.payload["count"] >= 1

                missing = client.trace("0" * 16)
                assert missing.status == 404
                assert missing.payload["error"]["code"] == "not-found"


# --------------------------------------------------------------------------- #
# Live service: latency-aware overload control
# --------------------------------------------------------------------------- #


class TestLatencyAwareOverloadControl:
    def test_slow_backend_sheds_while_the_queue_is_shallow(self, monkeypatch):
        """The tentpole pin: a slow backend must engage tiered shedding on
        *measured latency* while queue depth sits far below the depth
        thresholds, and burn the error budget visibly on /metrics."""
        import repro.service.scheduler as scheduler_module

        original = scheduler_module.solve_many_async

        async def sluggish(models, policies, **kwargs):
            await asyncio.sleep(0.3)
            return await original(models, policies, **kwargs)

        monkeypatch.setattr(scheduler_module, "solve_many_async", sluggish)
        config = ServiceConfig(
            port=0,
            batch_window=0.0,
            max_queue=64,
            slo_queue_wait_seconds=0.0,  # isolate the solve-latency objective
            slo_solve_latency_seconds=0.05,  # the sleeping backend blows this
        )
        with ThreadedService(config) as service:
            with ServiceClient(service.host, service.port, timeout=120.0) as client:
                first = client.solve({"model": {"servers": 3, "arrival_rate": 1.0}})
                assert first.status == 200  # no latency signal yet: admitted

                shed = None
                for servers in range(4, 10):
                    response = client.solve(
                        {"model": {"servers": servers, "arrival_rate": 1.0}}
                    )
                    if response.status == 429:
                        shed = response
                        break
                assert shed is not None, "latency pressure never shed a request"
                error = shed.payload["error"]
                assert error["code"] == "load-shed"
                assert error["shed_tier"] == "steady-state"

                stats = client.stats().payload
                scheduler_stats = stats["scheduler"]
                # The depth thresholds were nowhere near: the queue is all but
                # empty while measured latency does the shedding.
                assert scheduler_stats["queue_depth"] <= 1
                assert scheduler_stats["queue_depth"] < 0.7 * config.max_queue
                assert scheduler_stats["shed_total"] >= 1
                assert scheduler_stats["shed_by_tier"].get("steady-state", 0) >= 1
                assert stats["slo"]["pressure"] >= 1.0

                status, text = client.metrics()
        assert status == 200
        budget = _metric_values(text, "repro_slo_error_budget_total")
        assert budget['{slo="solve-latency"}'] >= 1.0
        assert _metric_values(text, "repro_slo_pressure")[""] >= 1.0
        assert _metric_values(text, "repro_slo_solve_latency_target_seconds")[""] == 0.05
