"""Unit tests of the shared sparse-kernel layer (:mod:`repro.markov.kernels`).

The integration suites exercise the kernels through the solvers; these tests
pin the kernel contracts directly: the one-pass level x mode assembly against
a hand-built dense generator, the direct and aggregation-disaggregation
steady-state paths against each other, and the uniformized step operator
against an explicit ``v @ P`` product.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse

from repro.exceptions import ParameterError, SolverError
from repro.markov.ctmc import steady_state_from_generator
from repro.markov.kernels import (
    LevelModeStructure,
    UniformizedOperator,
    _steady_state_iad,
    assemble_level_mode_generator,
    steady_state_csr,
)

#: A small but irregular mode-rate matrix (2 modes) used throughout.
MODE_RATES = np.array([[0.0, 0.3], [0.7, 0.0]])


def _dense_reference(mode_rates, arrival_rate, departures):
    """Hand-built dense generator of the truncated level x mode chain."""
    num_levels, num_modes = departures.shape
    size = num_levels * num_modes
    matrix = np.zeros((size, size))
    for level in range(num_levels):
        base = level * num_modes
        for i in range(num_modes):
            for j in range(num_modes):
                if i != j:
                    matrix[base + i, base + j] += mode_rates[i, j]
            if level + 1 < num_levels:
                matrix[base + i, base + num_modes + i] += arrival_rate
            if level > 0:
                matrix[base + i, base - num_modes + i] += departures[level, i]
    np.fill_diagonal(matrix, matrix.diagonal() - matrix.sum(axis=1))
    return matrix


class TestAssembleLevelModeGenerator:
    def test_matches_dense_reference(self):
        departures = np.array([[0.0, 0.0], [1.0, 2.0], [1.5, 2.5], [2.0, 3.0]])
        generator = assemble_level_mode_generator(MODE_RATES, 0.9, departures)
        assert scipy.sparse.issparse(generator)
        np.testing.assert_allclose(
            generator.toarray(), _dense_reference(MODE_RATES, 0.9, departures), atol=1e-14
        )

    def test_row_sums_are_zero(self):
        departures = np.array([[0.0, 0.0], [1.0, 2.0], [1.5, 2.5]])
        generator = assemble_level_mode_generator(MODE_RATES, 1.3, departures)
        np.testing.assert_allclose(np.asarray(generator.sum(axis=1)).ravel(), 0.0, atol=1e-14)

    def test_sparse_mode_rates_accepted(self):
        departures = np.array([[0.0, 0.0], [1.0, 1.0]])
        dense = assemble_level_mode_generator(MODE_RATES, 0.5, departures)
        sparse = assemble_level_mode_generator(
            scipy.sparse.csr_matrix(MODE_RATES), 0.5, departures
        )
        np.testing.assert_allclose(dense.toarray(), sparse.toarray())

    def test_mode_rate_diagonal_is_ignored(self):
        with_diagonal = MODE_RATES + np.diag([5.0, 7.0])
        departures = np.array([[0.0, 0.0], [1.0, 1.0]])
        np.testing.assert_allclose(
            assemble_level_mode_generator(with_diagonal, 0.5, departures).toarray(),
            assemble_level_mode_generator(MODE_RATES, 0.5, departures).toarray(),
        )

    def test_single_level_chain_is_the_mode_generator(self):
        departures = np.zeros((1, 2))
        generator = assemble_level_mode_generator(MODE_RATES, 4.2, departures)
        expected = MODE_RATES - np.diag(MODE_RATES.sum(axis=1))
        np.testing.assert_allclose(generator.toarray(), expected)

    def test_rejects_one_dimensional_departures(self):
        with pytest.raises(ParameterError, match="2-D"):
            assemble_level_mode_generator(MODE_RATES, 1.0, np.array([1.0, 2.0]))

    def test_rejects_mode_shape_mismatch(self):
        with pytest.raises(ParameterError, match="shape"):
            assemble_level_mode_generator(MODE_RATES, 1.0, np.zeros((3, 5)))


def _example_chain(num_levels=40, num_modes=2, arrival_rate=0.8):
    departures = np.tile(np.array([1.0, 2.0]), (num_levels, 1))
    departures[0] = 0.0
    generator = assemble_level_mode_generator(MODE_RATES, arrival_rate, departures)
    structure = LevelModeStructure(
        num_levels=num_levels,
        num_modes=num_modes,
        mode_generator=scipy.sparse.csr_matrix(MODE_RATES - np.diag(MODE_RATES.sum(axis=1))),
    )
    return generator, structure


class TestSteadyStateCsr:
    def test_direct_matches_dense_solver(self):
        generator, _ = _example_chain()
        pi = steady_state_csr(generator)
        reference = steady_state_from_generator(generator.toarray())
        np.testing.assert_allclose(pi, reference, atol=1e-10)

    def test_iad_matches_direct(self):
        generator, structure = _example_chain()
        direct = steady_state_csr(generator)
        iterative = _steady_state_iad(
            generator.tocsr(), structure, None, tol=1e-13, max_sweeps=500
        )
        np.testing.assert_allclose(iterative, direct, atol=1e-10)

    def test_iad_accepts_a_warm_start(self):
        generator, structure = _example_chain()
        direct = steady_state_csr(generator)
        warm = _steady_state_iad(
            generator.tocsr(), structure, direct.copy(), tol=1e-13, max_sweeps=500
        )
        np.testing.assert_allclose(warm, direct, atol=1e-10)

    def test_residual_is_tiny(self):
        generator, _ = _example_chain()
        pi = steady_state_csr(generator)
        assert float(np.max(np.abs(pi @ generator.toarray()))) < 1e-10
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0.0)

    def test_stiff_chain_with_no_mass_at_state_zero(self):
        # Long operative periods and fast repairs push essentially all
        # stationary mass away from state 0; pinning pi_0 = 1 makes the
        # reduced system numerically singular, so the solver must reject
        # that pivot and pick another (regression: the service's default
        # model raised "sums to zero").
        from repro.distributions import Exponential, HyperExponential
        from repro.queueing.ctmc_reference import (
            build_truncated_generator,
            default_truncation_level,
        )
        from repro.queueing.model import UnreliableQueueModel

        model = UnreliableQueueModel(
            num_servers=6,
            arrival_rate=4.0,
            service_rate=1.0,
            operative=HyperExponential(
                weights=[0.9, 0.1], rates=[0.0520446, 0.00572548]
            ),
            inoperative=Exponential(rate=25.0),
        )
        generator = scipy.sparse.csr_matrix(
            build_truncated_generator(model, default_truncation_level(model))
        )
        pi = steady_state_csr(generator)
        assert pi.sum() == pytest.approx(1.0)
        assert float(np.max(np.abs(generator.T @ pi))) < 1e-6
        np.testing.assert_allclose(
            pi, steady_state_from_generator(generator.toarray()), atol=1e-9
        )

    def test_singleton_chain(self):
        np.testing.assert_array_equal(steady_state_csr(np.zeros((1, 1))), [1.0])

    def test_rejects_non_square_generator(self):
        with pytest.raises(SolverError, match="square"):
            steady_state_csr(np.zeros((2, 3)))


class TestLevelModeStructure:
    def test_size_and_marginals(self):
        _, structure = _example_chain(num_levels=7)
        assert structure.size == 14
        marginals = structure.mode_marginals
        # The environment's stationary distribution: pi_0 * 0.3 = pi_1 * 0.7.
        np.testing.assert_allclose(marginals, [0.7, 0.3])


class TestUniformizedOperator:
    def test_step_matches_explicit_product(self):
        generator, _ = _example_chain(num_levels=5)
        operator = UniformizedOperator.from_generator(generator)
        dense_p = np.eye(operator.size) + generator.toarray() / operator.rate
        rng = np.random.default_rng(7)
        vector = rng.random(operator.size)
        vector /= vector.sum()
        np.testing.assert_allclose(operator.step(vector), vector @ dense_p, atol=1e-14)

    def test_default_rate_is_the_largest_exit_rate(self):
        generator, _ = _example_chain(num_levels=5)
        operator = UniformizedOperator.from_generator(generator)
        assert operator.rate == pytest.approx(float(np.max(-generator.diagonal())))
        # P is a proper stochastic matrix at the tightest rate.
        row_sums = np.asarray(operator.matrix.sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, 1.0, atol=1e-14)
        assert operator.matrix.min() >= 0.0

    def test_stationary_vector_is_invariant(self):
        generator, _ = _example_chain()
        pi = steady_state_csr(generator)
        operator = UniformizedOperator.from_generator(generator)
        np.testing.assert_allclose(operator.step(pi), pi, atol=1e-12)

    def test_rejects_a_rate_below_the_exit_rate(self):
        generator, _ = _example_chain(num_levels=5)
        tightest = float(np.max(-generator.diagonal()))
        with pytest.raises(ParameterError, match="below the largest exit rate"):
            UniformizedOperator.from_generator(generator, rate=0.5 * tightest)

    def test_all_absorbing_generator_gives_the_identity(self):
        operator = UniformizedOperator.from_generator(np.zeros((3, 3)))
        assert operator.rate == 0.0
        vector = np.array([0.2, 0.3, 0.5])
        np.testing.assert_array_equal(operator.step(vector), vector)

    def test_rejects_non_square_generator(self):
        with pytest.raises(SolverError, match="square"):
            UniformizedOperator.from_generator(np.zeros((2, 3)))
