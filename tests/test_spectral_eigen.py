"""Unit tests for the quadratic eigenvalue machinery (paper Eq. 15–18)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential, HyperExponential
from repro.exceptions import SolverError
from repro.markov import BreakdownEnvironment
from repro.spectral import (
    ModulatedQueueMatrices,
    eigenvalues_inside_unit_disk,
    perron_left_null_vector,
    solve_quadratic_eigenproblem,
    spectral_abscissa,
)
from repro.spectral.eigen import refine_eigenpair


def _matrices(num_servers=2, arrival_rate=1.0) -> ModulatedQueueMatrices:
    environment = BreakdownEnvironment(
        num_servers=num_servers,
        operative=HyperExponential(weights=[0.6, 0.4], rates=[0.2, 0.02]),
        inoperative=Exponential(rate=2.0),
    )
    return ModulatedQueueMatrices(environment, arrival_rate=arrival_rate, service_rate=1.0)


class TestQuadraticEigenproblem:
    def test_eigenpairs_satisfy_definition(self):
        matrices = _matrices()
        values, vectors = solve_quadratic_eigenproblem(
            matrices.q0, matrices.q1, matrices.q2
        )
        for value, vector in zip(values[:10], vectors[:10]):
            residual = vector @ matrices.characteristic_polynomial(value)
            scale = max(1.0, float(np.max(np.abs(matrices.q2)))) * max(1.0, abs(value)) ** 2
            assert np.max(np.abs(residual)) < 1e-6 * scale * max(np.max(np.abs(vector)), 1.0)

    def test_z_equal_one_is_always_an_eigenvalue(self):
        """Q(1) = A - D^A is a generator, hence singular, so z = 1 is a root."""
        matrices = _matrices()
        values, _ = solve_quadratic_eigenproblem(matrices.q0, matrices.q1, matrices.q2)
        assert np.min(np.abs(values - 1.0)) < 1e-8

    def test_shape_mismatch_rejected(self):
        matrices = _matrices()
        with pytest.raises(SolverError):
            solve_quadratic_eigenproblem(matrices.q0, matrices.q1, np.eye(3))


class TestUnitDiskFiltering:
    def test_count_equals_num_modes_for_stable_queue(self):
        """Paper: when the queue is ergodic, d = s eigenvalues lie inside the disk."""
        matrices = _matrices()
        eigensystem = eigenvalues_inside_unit_disk(
            matrices.q0, matrices.q1, matrices.q2, expected_count=matrices.num_modes
        )
        assert eigensystem.count == matrices.num_modes

    def test_eigenvalues_sorted_by_modulus(self):
        matrices = _matrices()
        eigensystem = eigenvalues_inside_unit_disk(
            matrices.q0, matrices.q1, matrices.q2, expected_count=matrices.num_modes
        )
        moduli = np.abs(eigensystem.eigenvalues)
        assert np.all(np.diff(moduli) >= -1e-12)

    def test_dominant_eigenvalue_is_real_positive(self):
        matrices = _matrices()
        eigensystem = eigenvalues_inside_unit_disk(
            matrices.q0, matrices.q1, matrices.q2, expected_count=matrices.num_modes
        )
        dominant = eigensystem.dominant_eigenvalue
        assert 0.0 < dominant < 1.0

    def test_left_eigenvectors_are_accurate(self):
        matrices = _matrices()
        eigensystem = eigenvalues_inside_unit_disk(
            matrices.q0, matrices.q1, matrices.q2, expected_count=matrices.num_modes
        )
        assert eigensystem.max_residual() < 1e-7

    def test_eigenvectors_unit_norm(self):
        matrices = _matrices()
        eigensystem = eigenvalues_inside_unit_disk(
            matrices.q0, matrices.q1, matrices.q2, expected_count=matrices.num_modes
        )
        norms = np.linalg.norm(eigensystem.left_eigenvectors, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-9)

    def test_unstable_queue_has_too_few_interior_eigenvalues(self):
        """When the stability condition fails an eigenvalue crosses onto/through
        the unit circle, so requesting s interior eigenvalues must fail."""
        matrices = _matrices(num_servers=2, arrival_rate=5.0)  # load far above capacity
        with pytest.raises(SolverError):
            eigenvalues_inside_unit_disk(
                matrices.q0, matrices.q1, matrices.q2, expected_count=matrices.num_modes
            )

    def test_heavier_load_pushes_dominant_eigenvalue_up(self):
        light = _matrices(arrival_rate=0.5)
        heavy = _matrices(arrival_rate=1.5)
        z_light = eigenvalues_inside_unit_disk(
            light.q0, light.q1, light.q2, expected_count=light.num_modes
        ).dominant_eigenvalue
        z_heavy = eigenvalues_inside_unit_disk(
            heavy.q0, heavy.q1, heavy.q2, expected_count=heavy.num_modes
        ).dominant_eigenvalue
        assert z_heavy > z_light


class TestHelpers:
    def test_spectral_abscissa_of_generator_is_zero(self):
        generator = np.array([[-1.0, 1.0], [2.0, -2.0]])
        assert spectral_abscissa(generator) == pytest.approx(0.0, abs=1e-10)

    def test_spectral_abscissa_positive_matrix(self):
        assert spectral_abscissa(np.array([[1.0, 0.0], [0.0, -3.0]])) == pytest.approx(1.0)

    def test_perron_left_null_vector_of_generator(self):
        generator = np.array([[-1.0, 1.0], [2.0, -2.0]])
        vector = perron_left_null_vector(generator)
        np.testing.assert_allclose(vector, [2.0 / 3.0, 1.0 / 3.0], atol=1e-10)
        np.testing.assert_allclose(vector @ generator, 0.0, atol=1e-10)

    def test_perron_left_null_vector_requires_singularity(self):
        with pytest.raises(SolverError):
            perron_left_null_vector(np.array([[2.0, 0.0], [0.0, 1.0]]))

    def test_refine_eigenpair_improves_perturbed_eigenvalue(self):
        matrices = _matrices()
        eigensystem = eigenvalues_inside_unit_disk(
            matrices.q0, matrices.q1, matrices.q2, expected_count=matrices.num_modes
        )
        true_value = eigensystem.dominant_eigenvalue
        perturbed = true_value * (1.0 + 1e-4)
        refined, vector = refine_eigenpair(
            matrices.q0, matrices.q1, matrices.q2, perturbed
        )
        assert abs(refined - true_value) < abs(perturbed - true_value)
        residual = np.max(np.abs(vector @ matrices.characteristic_polynomial(refined)))
        assert residual < 1e-6
