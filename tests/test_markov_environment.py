"""Unit tests for the Markovian environment and the generic CTMC utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Deterministic, Exponential, HyperExponential
from repro.exceptions import ParameterError, SolverError
from repro.markov import (
    BreakdownEnvironment,
    embedded_jump_chain,
    expected_num_modes,
    mean_holding_times,
    steady_state_from_generator,
    steady_state_sparse,
    validate_generator,
)

import scipy.sparse


@pytest.fixture
def paper_environment() -> BreakdownEnvironment:
    """The N=2, n=2, m=1 environment of the paper's worked example."""
    return BreakdownEnvironment(
        num_servers=2,
        operative=HyperExponential(weights=[0.6, 0.4], rates=[0.5, 0.05]),
        inoperative=Exponential(rate=2.0),
    )


class TestEnvironmentStructure:
    def test_mode_count(self, paper_environment):
        assert paper_environment.num_modes == 6

    def test_phase_counts(self, paper_environment):
        assert paper_environment.num_operative_phases == 2
        assert paper_environment.num_inoperative_phases == 1

    def test_operative_counts_per_mode(self, paper_environment):
        np.testing.assert_allclose(
            paper_environment.operative_counts, [0, 1, 1, 2, 2, 2]
        )

    def test_mode_lookup(self, paper_environment):
        assert paper_environment.mode_of((0, 0), (2,)) == 0
        assert paper_environment.mode_of((1, 1), (0,)) == 4

    def test_mode_lookup_invalid(self, paper_environment):
        with pytest.raises(ParameterError):
            paper_environment.mode_of((3, 0), (0,))

    def test_expected_num_modes_helper(self):
        operative = HyperExponential(weights=[0.5, 0.5], rates=[1.0, 0.1])
        assert expected_num_modes(10, operative, Exponential(rate=25.0)) == 66

    def test_unsupported_distribution_rejected(self):
        with pytest.raises(ParameterError):
            BreakdownEnvironment(
                num_servers=2,
                operative=Deterministic(value=5.0),
                inoperative=Exponential(rate=1.0),
            )


class TestTransitionMatrix:
    def test_paper_matrix_a_structure(self):
        """The matrix A of the worked example in Section 3.1.

        With N=2 servers, operative phases (alpha_j, xi_j) and a single
        exponential repair phase with rate eta, the example's matrix A is

            [ 0        2 eta a1  2 eta a2  0      0        0     ]
            [ xi1      0         0         eta a1 eta a2   0     ]
            [ xi2      0         0         0      eta a1   eta a2]
            [ 0        2 xi1     0         0      0        0     ]
            [ 0        xi2       xi1       0      0        0     ]
            [ 0        0         2 xi2     0      0        0     ]
        """
        alpha = np.array([0.6, 0.4])
        xi = np.array([0.5, 0.05])
        eta = 2.0
        environment = BreakdownEnvironment(
            num_servers=2,
            operative=HyperExponential(weights=alpha, rates=xi),
            inoperative=Exponential(rate=eta),
        )
        expected = np.array(
            [
                [0.0, 2 * eta * alpha[0], 2 * eta * alpha[1], 0.0, 0.0, 0.0],
                [xi[0], 0.0, 0.0, eta * alpha[0], eta * alpha[1], 0.0],
                [xi[1], 0.0, 0.0, 0.0, eta * alpha[0], eta * alpha[1]],
                [0.0, 2 * xi[0], 0.0, 0.0, 0.0, 0.0],
                [0.0, xi[1], xi[0], 0.0, 0.0, 0.0],
                [0.0, 0.0, 2 * xi[1], 0.0, 0.0, 0.0],
            ]
        )
        np.testing.assert_allclose(environment.transition_matrix, expected)

    def test_diagonal_of_a_is_zero(self, paper_environment):
        assert np.all(np.diag(paper_environment.transition_matrix) == 0.0)

    def test_row_sum_matrix_is_diagonal_of_row_sums(self, paper_environment):
        matrix = paper_environment.transition_matrix
        expected = np.diag(matrix.sum(axis=1))
        np.testing.assert_allclose(paper_environment.row_sum_matrix, expected)

    def test_generator_rows_sum_to_zero(self, paper_environment):
        generator = paper_environment.generator
        np.testing.assert_allclose(generator.sum(axis=1), 0.0, atol=1e-12)

    def test_transitions_preserve_server_count(self, paper_environment):
        modes = paper_environment.modes
        for transition in paper_environment.transitions():
            source_op, source_inop = modes[transition.source]
            target_op, target_inop = modes[transition.target]
            assert sum(source_op) + sum(source_inop) == 2
            assert sum(target_op) + sum(target_inop) == 2
            if transition.kind == "breakdown":
                assert sum(target_op) == sum(source_op) - 1
            else:
                assert sum(target_op) == sum(source_op) + 1

    def test_transition_rates_positive(self, paper_environment):
        assert all(t.rate > 0.0 for t in paper_environment.transitions())


class TestEnvironmentSteadyState:
    def test_availability_formula(self, paper_environment):
        operative_mean = paper_environment.mean_operative_period
        inoperative_mean = paper_environment.mean_inoperative_period
        expected = operative_mean / (operative_mean + inoperative_mean)
        assert paper_environment.availability == pytest.approx(expected)

    def test_mean_operative_period_eq10(self):
        environment = BreakdownEnvironment(
            num_servers=3,
            operative=HyperExponential(weights=[0.7246, 0.2754], rates=[0.1663, 0.0091]),
            inoperative=Exponential(rate=25.0),
        )
        assert environment.mean_operative_period == pytest.approx(34.62, abs=0.05)
        assert environment.mean_inoperative_period == pytest.approx(0.04)

    def test_steady_state_sums_to_one(self, paper_environment):
        assert paper_environment.steady_state.sum() == pytest.approx(1.0)

    def test_mean_operative_servers_consistency(self, paper_environment):
        """N * eta/(xi+eta) equals the environment-chain expectation (Eq. 11 input)."""
        assert paper_environment.mean_operative_servers == pytest.approx(
            paper_environment.mean_operative_servers_from_steady_state, rel=1e-9
        )

    def test_exponential_periods_give_binomial_occupancy(self):
        """With exponential periods, each server is independently up with
        probability eta/(xi+eta), so the number of operative servers is
        binomial."""
        xi, eta = 0.5, 2.0
        environment = BreakdownEnvironment(
            num_servers=3,
            operative=Exponential(rate=xi),
            inoperative=Exponential(rate=eta),
        )
        availability = eta / (xi + eta)
        steady = environment.steady_state
        counts = environment.operative_counts
        for up in range(4):
            probability = sum(
                steady[i] for i in range(environment.num_modes) if counts[i] == up
            )
            from math import comb

            expected = comb(3, up) * availability**up * (1 - availability) ** (3 - up)
            assert probability == pytest.approx(expected, rel=1e-8)


class TestCTMCUtilities:
    def test_steady_state_two_state_chain(self):
        generator = np.array([[-1.0, 1.0], [2.0, -2.0]])
        pi = steady_state_from_generator(generator)
        np.testing.assert_allclose(pi, [2.0 / 3.0, 1.0 / 3.0])

    def test_steady_state_sparse_matches_dense(self):
        generator = np.array(
            [[-2.0, 1.0, 1.0], [0.5, -1.0, 0.5], [1.0, 1.0, -2.0]]
        )
        dense = steady_state_from_generator(generator)
        sparse = steady_state_sparse(scipy.sparse.csr_matrix(generator))
        np.testing.assert_allclose(dense, sparse, atol=1e-10)

    def test_non_square_rejected(self):
        with pytest.raises(SolverError):
            steady_state_from_generator(np.ones((2, 3)))

    def test_validate_generator_accepts_valid(self):
        validate_generator(np.array([[-1.0, 1.0], [2.0, -2.0]]))

    def test_validate_generator_rejects_positive_diagonal(self):
        with pytest.raises(SolverError):
            validate_generator(np.array([[1.0, -1.0], [2.0, -2.0]]))

    def test_validate_generator_rejects_bad_row_sums(self):
        with pytest.raises(SolverError):
            validate_generator(np.array([[-1.0, 2.0], [2.0, -2.0]]))

    def test_embedded_jump_chain(self):
        generator = np.array([[-2.0, 2.0], [1.0, -1.0]])
        jump = embedded_jump_chain(generator)
        np.testing.assert_allclose(jump, [[0.0, 1.0], [1.0, 0.0]])

    def test_mean_holding_times(self):
        generator = np.array([[-2.0, 2.0], [4.0, -4.0]])
        np.testing.assert_allclose(mean_holding_times(generator), [0.5, 0.25])

    def test_single_state_chain(self):
        np.testing.assert_allclose(steady_state_from_generator(np.array([[0.0]])), [1.0])
