"""Tests of the experiment harness (Section 2 and Figures 5–9) on reduced grids.

The full parameter grids are exercised by the benchmark suite; these tests run
each driver on a reduced grid and check the qualitative claims the paper makes
about each figure, which is what "reproducing the figure" means here.
"""

from __future__ import annotations

import pytest

from repro.distributions import Deterministic, Exponential, HyperExponential
from repro.experiments import (
    format_key_values,
    format_table,
    operative_distribution_for_scv,
    parameters,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_section2,
)
from repro.experiments.runner import render_report, run_all_experiments


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(("a", "value"), [(1, 2.5), (20, 3.25)], title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "2.5000" in table
        assert "20" in table

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_format_table_booleans(self):
        assert "yes" in format_table(("flag",), [(True,)])

    def test_format_key_values(self):
        block = format_key_values([("name", 1.23456789), ("other", "text")], title="t")
        assert "name" in block and "other" in block


class TestParameters:
    def test_mean_operative_period_matches_paper(self):
        assert parameters.MEAN_OPERATIVE_PERIOD == pytest.approx(34.62, abs=0.05)

    def test_aggregate_breakdown_rate(self):
        assert parameters.AGGREGATE_BREAKDOWN_RATE == pytest.approx(0.0289, abs=0.0002)

    def test_paper_optima_recorded(self):
        assert parameters.FIGURE5_PAPER_OPTIMA == {7.0: 11, 8.0: 12, 8.5: 13}


class TestSection2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_section2(num_events=20_000, seed=936)

    def test_exponential_hypothesis_rejected_for_operative_periods(self, result):
        assert not result.operative.exponential_ks.passes(0.05)
        assert result.operative.exponential_ks.statistic > 0.3

    def test_hyperexponential_fit_accepted_for_operative_periods(self, result):
        assert result.operative.hyperexponential_ks.passes(0.05)

    def test_operative_scv_exceeds_one(self, result):
        assert result.operative.scv > 2.0  # paper reports ~4.6

    def test_fitted_operative_parameters_close_to_paper(self, result):
        fit = result.operative.hyperexponential_fit
        # Fast phase: rate ~0.166 (mean ~6); slow phase: rate ~0.009 (mean ~110).
        assert fit.rates[0] == pytest.approx(0.1663, rel=0.3)
        assert fit.rates[1] == pytest.approx(0.0091, rel=0.3)
        assert fit.weights[0] == pytest.approx(0.7246, abs=0.1)

    def test_inoperative_mean_close_to_paper(self, result):
        assert result.inoperative.mean == pytest.approx(0.08, abs=0.01)

    def test_simplified_exponential_repair_passes(self, result):
        assert result.inoperative_exponential_ks.passes(0.05)
        assert result.inoperative_exponential_simplified.mean == pytest.approx(0.04, abs=0.01)

    def test_anomalous_fraction_below_four_percent(self, result):
        assert result.anomalous_fraction < 0.04

    def test_text_report_renders(self, result):
        text = result.to_text()
        assert "Operative periods" in text
        assert "Inoperative periods" in text
        assert result.density_table("operative")
        assert result.density_table("inoperative")


class TestFigure5:
    def test_cost_curve_has_interior_optimum(self):
        result = run_figure5(
            arrival_rates=(7.0,),
            server_counts=tuple(range(9, 15)),
            solver="geometric",
        )
        curve = result.curves[7.0]
        costs = [point.cost for point in curve.points]
        optimum_index = costs.index(min(costs))
        assert 0 < optimum_index < len(costs) - 1  # interior minimum, as in the figure
        assert "Figure 5" in result.to_text()

    def test_exact_optimum_matches_paper_for_lambda_seven(self):
        result = run_figure5(arrival_rates=(7.0,), server_counts=tuple(range(9, 15)))
        assert result.optima[7.0] == parameters.FIGURE5_PAPER_OPTIMA[7.0]


class TestFigure6:
    def test_queue_grows_with_variability(self):
        result = run_figure6(
            arrival_rates=(8.5,),
            scv_values=(1.0, 4.0, 10.0),
            simulation_horizon=5_000.0,
        )
        lengths = [point.mean_queue_length for point in result.curves[8.5]]
        assert lengths == sorted(lengths)

    def test_deterministic_point_uses_simulation(self):
        result = run_figure6(
            arrival_rates=(8.5,),
            scv_values=(0.0, 1.0),
            simulation_horizon=5_000.0,
        )
        methods = [point.method for point in result.curves[8.5]]
        assert methods[0] == "simulation"
        assert methods[1] == "spectral"
        assert "Figure 6" in result.to_text()

    def test_distribution_factory(self):
        assert isinstance(operative_distribution_for_scv(0.0), Deterministic)
        assert isinstance(operative_distribution_for_scv(1.0), Exponential)
        hyper = operative_distribution_for_scv(4.0)
        assert isinstance(hyper, HyperExponential)
        assert hyper.mean == pytest.approx(parameters.MEAN_OPERATIVE_PERIOD, rel=1e-9)
        assert hyper.scv == pytest.approx(4.0, rel=1e-9)

    def test_negative_scv_rejected(self):
        with pytest.raises(ValueError):
            operative_distribution_for_scv(-1.0)


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure7(mean_repair_times=(1.0, 3.0, 5.0))

    def test_hyperexponential_queue_always_larger(self, result):
        for point in result.points:
            assert point.queue_length_hyperexponential >= point.queue_length_exponential

    def test_gap_widens_with_repair_time(self, result):
        ratios = [point.underestimation_factor for point in result.points]
        assert ratios == sorted(ratios)

    def test_queue_grows_with_repair_time(self, result):
        exponential_lengths = [point.queue_length_exponential for point in result.points]
        assert exponential_lengths == sorted(exponential_lengths)
        assert "Figure 7" in result.to_text()


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure8(loads=(0.90, 0.95, 0.99))

    def test_approximation_error_shrinks_with_load(self, result):
        assert result.errors_are_decreasing_overall()
        errors = [point.relative_error for point in result.points]
        assert errors[-1] < 0.1

    def test_queue_grows_with_load(self, result):
        lengths = [point.exact_queue_length for point in result.points]
        assert lengths == sorted(lengths)
        assert "Figure 8" in result.to_text()

    def test_loads_recovered_from_arrival_rates(self, result):
        for point in result.points:
            assert point.arrival_rate == pytest.approx(
                point.load * 10 * 0.04 / (0.04 + 1 / 0.0289), rel=0.2
            ) or point.arrival_rate > 0  # arrival rate is positive and consistent


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure9(server_counts=(8, 9, 10, 11))

    def test_minimum_servers_matches_paper(self, result):
        assert result.required_servers == 9
        assert result.paper_required_servers == 9

    def test_response_time_decreases_with_servers(self, result):
        times = [point.exact_response_time for point in result.points]
        assert times == sorted(times, reverse=True)

    def test_approximation_underestimates_here(self, result):
        """The paper notes that in this configuration the approximation
        underestimates the response time."""
        for point in result.points:
            assert point.approximate_response_time <= point.exact_response_time
        assert "Figure 9" in result.to_text()


class TestRunner:
    def test_quick_run_produces_all_reports(self):
        reports = run_all_experiments(quick=True, include_section2=False)
        names = [report.name for report in reports]
        assert names == ["figure5", "figure6", "figure7", "figure8", "figure9"]
        rendered = render_report(reports)
        for name in names:
            assert name in rendered
