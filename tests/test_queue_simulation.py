"""Tests of the unreliable-queue simulator, including validation against theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Deterministic, Exponential, HyperExponential
from repro.exceptions import SimulationError
from repro.queueing import UnreliableQueueModel, mm1_mean_queue_length, mmc_metrics
from repro.simulation import UnreliableQueueSimulator, simulate_queue


def _simulator(**overrides) -> UnreliableQueueSimulator:
    parameters = dict(
        num_servers=2,
        arrival_rate=1.0,
        service_distribution=Exponential(rate=1.0),
        operative_distribution=Exponential(rate=0.05),
        inoperative_distribution=Exponential(rate=1.0),
        seed=11,
    )
    parameters.update(overrides)
    return UnreliableQueueSimulator(**parameters)


class TestSimulatorMechanics:
    def test_starts_empty_and_operative(self):
        simulator = _simulator()
        assert simulator.num_jobs_in_system == 0
        assert simulator.num_operative_servers == 2
        assert simulator.num_busy_servers == 0

    def test_run_advances_clock(self):
        simulator = _simulator()
        simulator.run(100.0)
        assert simulator.now == pytest.approx(100.0)

    def test_run_can_be_continued(self):
        simulator = _simulator()
        simulator.run(50.0)
        first_jobs = len(simulator.completed_jobs())
        simulator.run(100.0)
        assert simulator.now == pytest.approx(100.0)
        assert len(simulator.completed_jobs()) >= first_jobs

    def test_invalid_horizon_rejected(self):
        with pytest.raises(SimulationError):
            _simulator().run(-5.0)

    def test_jobs_complete(self):
        simulator = _simulator()
        simulator.run(500.0)
        completed = simulator.completed_jobs()
        assert len(completed) > 300
        assert all(response >= 0.0 for _, response in completed)

    def test_busy_servers_never_exceed_operative(self):
        simulator = _simulator(seed=3)
        for horizon in np.linspace(10.0, 500.0, 25):
            simulator.run(float(horizon))
            assert simulator.num_busy_servers <= simulator.num_operative_servers

    def test_reproducible_with_same_seed(self):
        first = _simulator(seed=42)
        second = _simulator(seed=42)
        first.run(200.0)
        second.run(200.0)
        assert len(first.completed_jobs()) == len(second.completed_jobs())
        assert first.num_jobs_in_system == second.num_jobs_in_system

    def test_different_seeds_differ(self):
        first = _simulator(seed=1)
        second = _simulator(seed=2)
        first.run(200.0)
        second.run(200.0)
        assert first.completed_jobs() != second.completed_jobs()

    def test_deterministic_periods_supported(self):
        simulator = _simulator(
            operative_distribution=Deterministic(value=20.0),
            inoperative_distribution=Deterministic(value=1.0),
        )
        simulator.run(300.0)
        assert len(simulator.completed_jobs()) > 100


class TestSimulateQueueEstimates:
    def test_mm1_mean_queue_length(self):
        """With a single never-failing server the simulator must reproduce M/M/1."""
        model = UnreliableQueueModel(
            num_servers=1,
            arrival_rate=0.7,
            service_rate=1.0,
            operative=Exponential(rate=1e-6),
            inoperative=Exponential(rate=1e3),
        )
        estimate = simulate_queue(model, horizon=200_000.0, seed=5, num_batches=20)
        expected = mm1_mean_queue_length(0.7, 1.0)
        assert estimate.mean_queue_length.estimate == pytest.approx(expected, rel=0.08)

    def test_mmc_response_time(self):
        model = UnreliableQueueModel(
            num_servers=3,
            arrival_rate=2.0,
            service_rate=1.0,
            operative=Exponential(rate=1e-6),
            inoperative=Exponential(rate=1e3),
        )
        estimate = simulate_queue(model, horizon=100_000.0, seed=7, num_batches=10)
        expected = mmc_metrics(3, 2.0, 1.0).mean_response_time
        assert estimate.mean_response_time.estimate == pytest.approx(expected, rel=0.08)

    def test_matches_spectral_solution_with_breakdowns(self, small_model):
        estimate = simulate_queue(small_model, horizon=150_000.0, seed=13, num_batches=20)
        exact = small_model.solve_spectral().mean_queue_length
        relative_error = abs(estimate.mean_queue_length.estimate - exact) / exact
        assert relative_error < 0.1

    def test_utilisation_reflects_flow_balance(self, small_model):
        estimate = simulate_queue(small_model, horizon=100_000.0, seed=17)
        # E[busy servers] = lambda / mu = 1; utilisation = 1 / N = 0.5.
        expected = small_model.arrival_rate / (
            small_model.service_rate * small_model.num_servers
        )
        assert estimate.utilisation == pytest.approx(expected, rel=0.08)

    def test_estimate_metadata(self, small_model):
        estimate = simulate_queue(
            small_model, horizon=20_000.0, warmup_fraction=0.2, num_batches=5, seed=1
        )
        assert estimate.horizon == pytest.approx(20_000.0)
        assert estimate.warmup_time == pytest.approx(4_000.0)
        assert estimate.num_completed_jobs > 0
        assert estimate.mean_queue_length.num_batches == 5

    def test_invalid_warmup_rejected(self, small_model):
        with pytest.raises(SimulationError):
            simulate_queue(small_model, horizon=100.0, warmup_fraction=1.0)

    def test_single_batch_rejected(self, small_model):
        with pytest.raises(SimulationError):
            simulate_queue(small_model, horizon=100.0, num_batches=1)

    def test_too_short_horizon_rejected(self, small_model):
        with pytest.raises(SimulationError):
            simulate_queue(small_model, horizon=0.5, num_batches=10)


class TestVariabilityEffect:
    def test_hyperexponential_periods_increase_queue(self):
        """Figure 6's message, checked by simulation: higher operative-period
        variability (same mean) yields a longer queue at high load."""
        base = dict(
            num_servers=3,
            arrival_rate=2.4,
            service_rate=1.0,
            inoperative=Exponential(rate=1.0),
        )
        exponential_model = UnreliableQueueModel(
            operative=Exponential(rate=1.0 / 30.0), **base
        )
        hyper_model = UnreliableQueueModel(
            operative=HyperExponential.from_mean_and_scv(30.0, 10.0), **base
        )
        exp_estimate = simulate_queue(exponential_model, horizon=150_000.0, seed=23)
        hyper_estimate = simulate_queue(hyper_model, horizon=150_000.0, seed=23)
        assert (
            hyper_estimate.mean_queue_length.estimate
            > exp_estimate.mean_queue_length.estimate
        )
