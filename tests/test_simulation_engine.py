"""Unit tests for the discrete-event engine and the output-analysis estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation import (
    ConfidenceInterval,
    EventScheduler,
    TimeWeightedAccumulator,
    batch_means_interval,
)


class TestEventScheduler:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(2.0, lambda: order.append("late"))
        scheduler.schedule(1.0, lambda: order.append("early"))
        scheduler.run_until(5.0)
        assert order == ["early", "late"]

    def test_ties_broken_in_fifo_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(1.0, lambda: order.append("first"))
        scheduler.schedule(1.0, lambda: order.append("second"))
        scheduler.run_until(2.0)
        assert order == ["first", "second"]

    def test_clock_advances_to_horizon(self):
        scheduler = EventScheduler()
        scheduler.schedule(0.5, lambda: None)
        scheduler.run_until(3.0)
        assert scheduler.now == pytest.approx(3.0)

    def test_events_beyond_horizon_not_executed(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(10.0, lambda: fired.append(True))
        scheduler.run_until(5.0)
        assert not fired
        assert scheduler.num_pending_events == 1

    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append(True))
        handle.cancel()
        scheduler.run_until(2.0)
        assert not fired
        assert handle.is_cancelled

    def test_events_can_schedule_new_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain():
            fired.append(scheduler.now)
            if len(fired) < 3:
                scheduler.schedule(1.0, chain)

        scheduler.schedule(1.0, chain)
        scheduler.run_until(10.0)
        np.testing.assert_allclose(fired, [1.0, 2.0, 3.0])

    def test_schedule_at_absolute_time(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(2.5, lambda: fired.append(scheduler.now))
        scheduler.run_until(3.0)
        assert fired == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_nan_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule(float("nan"), lambda: None)

    def test_past_horizon_rejected(self):
        scheduler = EventScheduler()
        scheduler.run_until(5.0)
        with pytest.raises(SimulationError):
            scheduler.run_until(1.0)

    def test_schedule_in_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.run_until(5.0)
        with pytest.raises(SimulationError):
            scheduler.schedule_at(1.0, lambda: None)

    def test_step_executes_single_event(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(2.0, lambda: fired.append(2))
        assert scheduler.step()
        assert fired == [1]
        assert scheduler.num_processed_events == 1

    def test_step_on_empty_queue_returns_false(self):
        assert not EventScheduler().step()


class TestTimeWeightedAccumulator:
    def test_constant_trajectory(self):
        accumulator = TimeWeightedAccumulator(initial_value=2.0)
        assert accumulator.area_up_to(5.0) == pytest.approx(10.0)
        assert accumulator.time_average(0.0, 5.0) == pytest.approx(2.0)

    def test_step_change(self):
        accumulator = TimeWeightedAccumulator(initial_value=0.0)
        accumulator.record(2.0, 3.0)  # value 0 until t=2, then 3
        assert accumulator.area_up_to(4.0) == pytest.approx(0.0 * 2 + 3.0 * 2)
        assert accumulator.time_average(0.0, 4.0) == pytest.approx(1.5)

    def test_window_average_between_breakpoints(self):
        accumulator = TimeWeightedAccumulator(initial_value=1.0)
        accumulator.record(1.0, 2.0)
        accumulator.record(3.0, 0.0)
        # On [1, 3] the value is 2.
        assert accumulator.time_average(1.0, 3.0) == pytest.approx(2.0)
        # On [0.5, 1.5]: half at 1, half at 2.
        assert accumulator.time_average(0.5, 1.5) == pytest.approx(1.5)

    def test_non_monotone_time_rejected(self):
        accumulator = TimeWeightedAccumulator()
        accumulator.record(2.0, 1.0)
        with pytest.raises(SimulationError):
            accumulator.record(1.0, 0.0)

    def test_zero_length_window_rejected(self):
        accumulator = TimeWeightedAccumulator()
        with pytest.raises(SimulationError):
            accumulator.time_average(1.0, 1.0)

    def test_current_value_tracked(self):
        accumulator = TimeWeightedAccumulator(initial_value=1.0)
        accumulator.record(1.0, 5.0)
        assert accumulator.current_value == 5.0


class TestBatchMeans:
    def test_interval_contains_mean_of_batches(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        interval = batch_means_interval(values)
        assert interval.estimate == pytest.approx(3.0)
        assert interval.lower < 3.0 < interval.upper

    def test_zero_variance_gives_zero_width(self):
        interval = batch_means_interval(np.full(10, 2.5))
        assert interval.half_width == pytest.approx(0.0)
        assert interval.contains(2.5)

    def test_width_shrinks_with_more_batches(self, rng):
        few = batch_means_interval(rng.normal(0.0, 1.0, size=5))
        many = batch_means_interval(rng.normal(0.0, 1.0, size=200))
        assert many.half_width < few.half_width

    def test_higher_confidence_wider(self, rng):
        values = rng.normal(size=30)
        assert (
            batch_means_interval(values, confidence=0.99).half_width
            > batch_means_interval(values, confidence=0.9).half_width
        )

    def test_single_batch_rejected(self):
        with pytest.raises(SimulationError):
            batch_means_interval(np.array([1.0]))

    def test_invalid_confidence_rejected(self):
        with pytest.raises(SimulationError):
            batch_means_interval(np.array([1.0, 2.0]), confidence=1.2)

    def test_interval_string(self):
        interval = ConfidenceInterval(estimate=1.0, half_width=0.1, confidence=0.95, num_batches=8)
        assert "1.0" in str(interval)
