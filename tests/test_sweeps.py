"""Tests for the declarative parameter-sweep engine (:mod:`repro.sweeps`)."""

from __future__ import annotations

import math

import pytest

from repro.distributions import Deterministic, Exponential
from repro.exceptions import ParameterError, SolverError
from repro.experiments import figure5, figure7, parameters
from repro.optimization import cost_curve
from repro.queueing import UnreliableQueueModel, sun_fitted_model
from repro.sweeps import (
    SolverPolicy,
    SweepAxis,
    SweepResult,
    SweepResultSet,
    SweepRunner,
    SweepSpec,
    TimeGridAxis,
    evaluate_point,
    run_sweep,
)


def _spec(**overrides) -> SweepSpec:
    defaults = dict(
        base_model=sun_fitted_model(num_servers=10, arrival_rate=7.0),
        axes=[("arrival_rate", (6.5, 7.0)), ("num_servers", (10, 11))],
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestSpecExpansion:
    def test_grid_size_and_row_major_order(self):
        spec = _spec()
        assert spec.grid_size == 4
        points = list(spec.expand())
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert [p.parameters for p in points] == [
            {"arrival_rate": 6.5, "num_servers": 10},
            {"arrival_rate": 6.5, "num_servers": 11},
            {"arrival_rate": 7.0, "num_servers": 10},
            {"arrival_rate": 7.0, "num_servers": 11},
        ]

    def test_points_carry_concrete_models(self):
        points = list(_spec().expand())
        assert points[0].model.arrival_rate == 6.5
        assert points[0].model.num_servers == 10
        assert points[3].model.arrival_rate == 7.0
        assert points[3].model.num_servers == 11

    def test_solver_axis_overrides_policy(self):
        spec = _spec(axes=[("num_servers", (10,)), ("solver", ("spectral", "geometric"))])
        points = list(spec.expand())
        assert points[0].policy.order == ("spectral",)
        assert points[1].policy.order == ("geometric",)

    def test_unknown_axis_requires_factory(self):
        with pytest.raises(ParameterError):
            _spec(axes=[("not_a_field", (1, 2))])

    def test_unknown_axis_allowed_with_factory(self):
        spec = _spec(
            axes=[("scale", (1.0, 2.0))],
            model_factory=lambda base, params: base.with_arrival_rate(
                base.arrival_rate * params["scale"]
            ),
        )
        points = list(spec.expand())
        assert points[1].model.arrival_rate == pytest.approx(14.0)

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ParameterError) as excinfo:
            _spec(axes=[("num_servers", (1,)), ("num_servers", (2,))])
        # The error must name the offending axis, not just echo the list
        # (regression guard: duplicates used to be easy to miss).
        assert "duplicate sweep axis name(s): num_servers" in str(excinfo.value)

    def test_duplicate_axis_names_rejected_for_scenarios(self):
        from repro.scenarios import scenario_preset

        with pytest.raises(ParameterError, match="duplicate sweep axis name"):
            SweepSpec(
                base_model=scenario_preset("two-speed-cluster"),
                axes=[("repair_capacity", (1,)), ("repair_capacity", (2,))],
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ParameterError):
            SweepAxis(name="num_servers", values=())

    def test_unknown_solver_rejected(self):
        with pytest.raises(ParameterError):
            SolverPolicy(order=("qft",))


class TestSolverFallback:
    def test_spectral_preferred_when_it_works(self):
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        solver, stable, metrics, error = evaluate_point(
            model, SolverPolicy(order=("spectral", "geometric"))
        )
        assert solver == "spectral"
        assert stable and error is None
        assert metrics["mean_queue_length"] == pytest.approx(
            model.solve_spectral().mean_queue_length
        )

    def test_falls_back_in_policy_order(self):
        """Deterministic periods break every analytical solver, so the policy
        must walk to ``simulate``."""
        model = UnreliableQueueModel(
            num_servers=2,
            arrival_rate=0.5,
            service_rate=1.0,
            operative=Deterministic(value=30.0),
            inoperative=Exponential(rate=5.0),
        )
        policy = SolverPolicy(
            order=("spectral", "geometric", "simulate"), simulate_horizon=2_000.0
        )
        solver, stable, metrics, error = evaluate_point(model, policy)
        assert solver == "simulate"
        assert stable and error is None
        assert metrics["mean_queue_length"] > 0.0

    def test_all_solvers_failing_reports_error(self):
        model = UnreliableQueueModel(
            num_servers=2,
            arrival_rate=0.5,
            service_rate=1.0,
            operative=Deterministic(value=30.0),
            inoperative=Exponential(rate=5.0),
        )
        solver, stable, metrics, error = evaluate_point(
            model, SolverPolicy(order=("spectral", "geometric"))
        )
        assert solver is None
        assert stable
        assert metrics == {}
        assert "spectral" in error and "geometric" in error

    def test_metric_on_failed_row_raises_captured_diagnostic(self):
        """Asking a failed cell for a metric surfaces the solver failure
        message, not a bare KeyError (figure drivers rely on this)."""
        row = SweepResult(
            index=0,
            parameters={"num_servers": 30},
            solver=None,
            stable=True,
            metrics={},
            error="spectral: boundary system residual exceeds tolerance",
        )
        with pytest.raises(SolverError, match="boundary system residual"):
            row.metric("mean_queue_length")
        # A missing metric on a *successful* row is still a KeyError.
        ok_row = SweepResult(
            index=0, parameters={}, solver="ctmc", stable=True, metrics={"x": 1.0}
        )
        with pytest.raises(KeyError):
            ok_row.metric("decay_rate")

    def test_unstable_model_yields_infinite_metrics(self):
        solver, stable, metrics, error = evaluate_point(
            sun_fitted_model(num_servers=2, arrival_rate=50.0), SolverPolicy()
        )
        assert solver is None and error is None
        assert not stable
        assert math.isinf(metrics["mean_queue_length"])


class TestRunnerCaching:
    def test_repeated_runs_hit_the_cache(self):
        runner = SweepRunner()
        spec = _spec()
        first = runner.run(spec)
        info = runner.cache_info()
        assert info == {"hits": 0, "misses": 4, "size": 4}
        second = runner.run(spec)
        info = runner.cache_info()
        assert info["hits"] == 4
        assert info["misses"] == 4
        assert [row.metrics for row in second] == [row.metrics for row in first]

    def test_cache_shared_across_overlapping_specs(self):
        runner = SweepRunner()
        runner.run(_spec(axes=[("num_servers", (10, 11))]))
        runner.run(_spec(axes=[("num_servers", (11, 12))]))
        info = runner.cache_info()
        assert info["hits"] == 1  # N=11 reused
        assert info["misses"] == 3

    def test_cache_can_be_disabled(self):
        runner = SweepRunner(cache=False)
        spec = _spec(axes=[("num_servers", (10,))])
        runner.run(spec)
        runner.run(spec)
        assert runner.cache_info() == {"hits": 0, "misses": 2, "size": 0}

    def test_clear_cache(self):
        runner = SweepRunner()
        runner.run(_spec(axes=[("num_servers", (10,))]))
        runner.clear_cache()
        assert runner.cache_info() == {"hits": 0, "misses": 0, "size": 0}


class TestParallelExecution:
    def test_parallel_results_match_serial(self):
        spec = _spec()
        serial = SweepRunner(parallel=False).run(spec)
        parallel = SweepRunner(parallel=True, max_workers=2).run(spec)
        assert [row.parameters for row in parallel] == [row.parameters for row in serial]
        assert [row.metrics for row in parallel] == [row.metrics for row in serial]

    def test_run_sweep_convenience_wrapper(self):
        results = run_sweep(_spec(axes=[("num_servers", (10,))]))
        assert len(results) == 1
        assert results[0].solver == "spectral"


class TestExport:
    def test_csv_round_trip_columns(self, tmp_path):
        results = SweepRunner().run(_spec())
        path = results.to_csv(tmp_path / "sweep.csv")
        header = path.read_text().splitlines()[0].split(",")
        assert header[:3] == ["index", "arrival_rate", "num_servers"]
        assert "mean_queue_length" in header
        assert len(path.read_text().splitlines()) == 1 + len(results)

    def test_json_round_trip_is_lossless(self, tmp_path):
        results = SweepRunner().run(_spec())
        path = tmp_path / "sweep.json"
        results.to_json(path)
        restored = SweepResultSet.from_json(path)
        assert restored.name == results.name
        assert restored.axis_names == results.axis_names
        assert [row.parameters for row in restored] == [row.parameters for row in results]
        assert [row.metrics for row in restored] == [row.metrics for row in results]
        assert [row.solver for row in restored] == [row.solver for row in results]

    def test_json_round_trip_preserves_infinities(self):
        results = SweepRunner().run(
            _spec(
                base_model=sun_fitted_model(num_servers=2, arrival_rate=50.0),
                axes=[("num_servers", (2,))],
            )
        )
        restored = SweepResultSet.from_json(results.to_json())
        assert not restored[0].stable
        assert math.isinf(restored[0].metric("mean_queue_length"))

    def test_metric_column_and_find(self):
        results = SweepRunner().run(_spec(axes=[("num_servers", (10, 11))]))
        column = results.metric_column("mean_queue_length")
        assert len(column) == 2 and column[0] > column[1]
        assert results.find(num_servers=11).index == 1
        with pytest.raises(ParameterError):
            results.find(num_servers=99)


class TestFigureParity:
    """The refactored figure drivers must reproduce the seed's numbers."""

    def test_figure5_quick_grid_matches_direct_cost_curve(self):
        """The engine-backed figure5 equals the pre-refactor path (the
        optimisation module's cost_curve, which still calls the solvers
        directly)."""
        rates = (7.0,)
        counts = tuple(range(10, 14))
        result = figure5.run_figure5(
            arrival_rates=rates, server_counts=counts, solver="geometric"
        )
        direct = cost_curve(
            figure5.base_model(rates[0]),
            counts,
            holding_cost=parameters.FIGURE5_HOLDING_COST,
            server_cost=parameters.FIGURE5_SERVER_COST,
            solver="geometric",
        )
        assert result.curves[7.0].points == direct.points
        assert result.optima[7.0] == direct.optimal_servers

    def test_figure7_quick_grid_matches_direct_solves(self):
        times = (1.0, 3.0, 5.0)
        result = figure7.run_figure7(mean_repair_times=times)
        for point in result.points:
            exponential = figure7._model_for(
                point.mean_repair_time, hyperexponential=False
            ).solve_spectral()
            hyper = figure7._model_for(
                point.mean_repair_time, hyperexponential=True
            ).solve_spectral()
            assert point.queue_length_exponential == exponential.mean_queue_length
            assert point.queue_length_hyperexponential == hyper.mean_queue_length


class TestScenarioSweeps:
    """Sweep axes over scenario parameters and server-group fields."""

    def _scenario(self):
        from repro.scenarios import scenario_preset

        return scenario_preset("two-speed-cluster")

    def test_scenario_axes_build_concrete_scenarios(self):
        spec = SweepSpec(
            base_model=self._scenario(),
            axes=[
                ("repair_capacity", (1, 4)),
                ("slow.service_rate", (0.5, 0.75)),
                ("arrival_rate", (1.0,)),
            ],
            policy=SolverPolicy(order=("ctmc",)),
        )
        points = list(spec.expand())
        assert len(points) == 4
        first = points[0].model
        assert first.effective_repair_capacity == 1
        assert first.group("slow").service_rate == 0.5
        assert first.arrival_rate == 1.0
        assert points[0].model.group("fast") == self._scenario().group("fast")

    def test_group_size_axis(self):
        spec = SweepSpec(
            base_model=self._scenario(),
            axes=[("fast.size", (1, 2, 3))],
            policy=SolverPolicy(order=("ctmc",)),
        )
        sizes = [point.model.group("fast").size for point in spec.expand()]
        assert sizes == [1, 2, 3]

    def test_scenario_sweep_solves_through_runner(self):
        spec = SweepSpec(
            base_model=self._scenario(),
            axes=[("repair_capacity", (1, 2))],
            policy=SolverPolicy(order=("spectral", "ctmc")),
            name="scenario-crew",
        )
        results = SweepRunner().run(spec)
        assert {row.solver for row in results} == {"ctmc"}
        crew_of_one = results.find(repair_capacity=1)
        crew_of_two = results.find(repair_capacity=2)
        assert crew_of_one.metric("mean_queue_length") >= crew_of_two.metric(
            "mean_queue_length"
        )

    def test_homogeneous_field_axis_rejected_for_scenarios(self):
        with pytest.raises(ParameterError, match="not a scenario field"):
            SweepSpec(base_model=self._scenario(), axes=[("num_servers", (1, 2))])

    def test_unknown_group_and_field_rejected(self):
        with pytest.raises(ParameterError, match="unknown server group"):
            SweepSpec(base_model=self._scenario(), axes=[("turbo.size", (1,))])
        with pytest.raises(ParameterError, match="unknown group field"):
            SweepSpec(base_model=self._scenario(), axes=[("fast.speed", (1,))])

    def test_model_factory_still_wins_for_scenarios(self):
        spec = SweepSpec(
            base_model=self._scenario(),
            axes=[("load", (0.3, 0.5))],
            model_factory=lambda base, params: base.with_arrival_rate(
                params["load"] * base.mean_service_capacity
            ),
            policy=SolverPolicy(order=("ctmc",)),
        )
        loads = [round(point.model.effective_load, 6) for point in spec.expand()]
        assert loads == [0.3, 0.5]


class TestTimeGridAxis:
    def test_time_axis_folds_into_the_policy_not_the_model(self):
        spec = SweepSpec(
            base_model=sun_fitted_model(num_servers=3, arrival_rate=1.5),
            axes=[TimeGridAxis((2.0, 10.0))],
        )
        points = list(spec.expand())
        assert [point.parameters["time"] for point in points] == [2.0, 10.0]
        # The model is untouched; the policy carries the time and switches to
        # the transient solver alone (a steady-state fallback would silently
        # ignore the time value).
        assert all(point.model == spec.base_model for point in points)
        assert [point.policy.transient_times for point in points] == [(2.0,), (10.0,)]
        assert all(point.policy.order == ("transient",) for point in points)

    def test_explicit_transient_order_is_preserved(self):
        spec = SweepSpec(
            base_model=sun_fitted_model(num_servers=3, arrival_rate=1.5),
            axes=[TimeGridAxis((5.0,))],
            policy=SolverPolicy(order=("transient", "ctmc")),
        )
        (point,) = spec.expand()
        assert point.policy.order == ("transient", "ctmc")

    def test_sweep_over_time_and_parameters(self):
        spec = SweepSpec(
            base_model=sun_fitted_model(num_servers=3, arrival_rate=1.2),
            axes=[("arrival_rate", (1.2, 1.8)), TimeGridAxis((2.0, 20.0))],
            name="time-sweep",
        )
        results = SweepRunner().run(spec)
        assert {row.solver for row in results} == {"transient"}
        assert [row.metrics["evaluation_time"] for row in results] == [2.0, 20.0, 2.0, 20.0]
        for rate in (1.2, 1.8):
            early = results.find(arrival_rate=rate, time=2.0)
            late = results.find(arrival_rate=rate, time=20.0)
            # From an empty start the expected backlog grows with time.
            assert late.metric("mean_queue_length") > early.metric("mean_queue_length")

    def test_time_axis_works_for_scenario_bases(self):
        from repro.scenarios import scenario_preset

        spec = SweepSpec(
            base_model=scenario_preset("single-repairman"),
            axes=[TimeGridAxis((1.0, 10.0))],
        )
        results = SweepRunner().run(spec)
        assert [row.metrics["evaluation_time"] for row in results] == [1.0, 10.0]
        assert results[0].metrics["availability"] > results[1].metrics["availability"]

    def test_duplicate_time_axes_rejected(self):
        with pytest.raises(ParameterError, match="duplicate sweep axis name"):
            SweepSpec(
                base_model=sun_fitted_model(num_servers=3, arrival_rate=1.5),
                axes=[TimeGridAxis((1.0,)), ("time", (2.0,))],
            )

    def test_unsupported_model_fails_loudly_not_with_steady_state_metrics(self):
        """Regression: a steady-state fallback must not answer a time cell.

        With deterministic operative periods the transient solver cannot run;
        the cell must carry an error naming it — not a silently identical
        steady-state answer for every time value.
        """
        model = UnreliableQueueModel(
            num_servers=2,
            arrival_rate=0.5,
            service_rate=1.0,
            operative=Deterministic(value=30.0),
            inoperative=Exponential(rate=5.0),
        )
        spec = SweepSpec(
            base_model=model,
            axes=[TimeGridAxis((1.0, 50.0))],
            policy=SolverPolicy(order=("simulate",), simulate_horizon=2_000.0),
        )
        results = SweepRunner().run(spec)
        for row in results:
            assert row.solver is None and not row.ok
            assert "transient:" in row.error
