"""Unit tests for the Kolmogorov–Smirnov goodness-of-fit machinery (paper Eq. 4)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats

from repro.distributions import Exponential, HyperExponential
from repro.exceptions import DataError, ParameterError
from repro.stats import (
    EmpiricalDensity,
    KSResult,
    kolmogorov_p_value,
    ks_critical_value,
    ks_test_grid,
    ks_test_samples,
)


class TestCriticalValues:
    def test_paper_critical_value_50_points_5_percent(self):
        """The paper quotes 0.19 for 50 points at 5% significance."""
        assert ks_critical_value(50, 0.05) == pytest.approx(0.19, abs=0.005)

    def test_paper_critical_value_50_points_1_percent(self):
        """The paper quotes 0.23 for 50 points at 1% significance."""
        assert ks_critical_value(50, 0.01) == pytest.approx(0.23, abs=0.005)

    def test_paper_critical_value_50_points_10_percent(self):
        """The paper quotes 0.17 for 50 points at 10% significance."""
        assert ks_critical_value(50, 0.10) == pytest.approx(0.17, abs=0.005)

    def test_paper_critical_value_40_points_5_percent(self):
        """The paper quotes 0.21 for 40 points at 5% significance."""
        assert ks_critical_value(40, 0.05) == pytest.approx(0.215, abs=0.005)

    def test_paper_critical_value_40_points_10_percent(self):
        """The paper quotes 0.19 for 40 points at 10% significance."""
        assert ks_critical_value(40, 0.10) == pytest.approx(0.19, abs=0.005)

    def test_critical_value_decreases_with_points(self):
        assert ks_critical_value(100, 0.05) < ks_critical_value(25, 0.05)

    def test_critical_value_decreases_with_significance(self):
        # Higher significance level -> easier to reject -> smaller critical value.
        assert ks_critical_value(50, 0.10) < ks_critical_value(50, 0.01)

    def test_interpolated_level_uses_kolmogorov_formula(self):
        value = ks_critical_value(50, 0.07)
        assert ks_critical_value(50, 0.05) > value > ks_critical_value(50, 0.10)

    def test_invalid_points_rejected(self):
        with pytest.raises(ParameterError):
            ks_critical_value(0, 0.05)

    def test_invalid_significance_rejected(self):
        with pytest.raises(ParameterError):
            ks_critical_value(50, 1.5)


class TestPValues:
    def test_p_value_decreases_with_statistic(self):
        assert kolmogorov_p_value(0.3, 50) < kolmogorov_p_value(0.1, 50)

    def test_p_value_bounds(self):
        assert 0.0 <= kolmogorov_p_value(0.5, 100) <= 1.0
        assert kolmogorov_p_value(0.0, 100) == 1.0

    def test_p_value_close_to_scipy(self):
        for statistic in (0.08, 0.15, 0.25):
            ours = kolmogorov_p_value(statistic, 200)
            theirs = scipy.stats.kstwobign.sf(statistic * np.sqrt(200))
            assert ours == pytest.approx(theirs, abs=0.02)


class TestGridTest:
    def _empirical(self, rng, distribution, size=20_000, num_bins=50, upper=None):
        draws = distribution.sample(rng, size=size)
        return EmpiricalDensity.from_observations(draws, num_bins=num_bins, upper=upper)

    def test_correct_hypothesis_passes(self, rng):
        dist = Exponential(rate=0.5)
        empirical = self._empirical(rng, dist)
        result = ks_test_grid(empirical, dist.cdf)
        assert result.passes(0.05)
        assert result.num_points == 50

    def test_wrong_hypothesis_fails(self, rng):
        """Hyperexponential data tested against an exponential: paper's rejection."""
        data_dist = HyperExponential(weights=[0.7246, 0.2754], rates=[0.1663, 0.0091])
        empirical = self._empirical(rng, data_dist, upper=250.0)
        wrong = Exponential.from_mean(data_dist.mean)
        result = ks_test_grid(empirical, wrong.cdf)
        assert not result.passes(0.05)
        assert result.statistic > 0.3  # paper reports 0.4742

    def test_right_hyperexponential_passes(self, rng):
        data_dist = HyperExponential(weights=[0.7246, 0.2754], rates=[0.1663, 0.0091])
        empirical = self._empirical(rng, data_dist, upper=250.0)
        result = ks_test_grid(empirical, data_dist.cdf)
        # Clipping values above 250 into the last bin (as the figure-range
        # histogram does) inflates D slightly, so only the 5% decision — the
        # one the paper leads with — is asserted here.
        assert result.passes(0.05)
        assert result.statistic < ks_test_grid(
            empirical, Exponential.from_mean(data_dist.mean).cdf
        ).statistic

    def test_statistic_is_max_absolute_difference(self):
        data = np.array([0.5, 1.5, 2.5, 3.5])
        empirical = EmpiricalDensity.from_observations(data, num_bins=4, upper=4.0)
        hypothetical = Exponential(rate=1.0)
        result = ks_test_grid(empirical, hypothetical.cdf)
        manual = float(
            np.max(np.abs(hypothetical.cdf(empirical.midpoints) - empirical.cdf()))
        )
        assert result.statistic == pytest.approx(manual)

    def test_mismatched_cdf_shape_rejected(self):
        data = np.array([0.5, 1.5])
        empirical = EmpiricalDensity.from_observations(data, num_bins=2, upper=2.0)
        with pytest.raises(DataError):
            ks_test_grid(empirical, lambda x: np.array([0.5]))

    def test_result_critical_value_lookup(self, rng):
        dist = Exponential(rate=1.0)
        empirical = self._empirical(rng, dist, size=2000, num_bins=30)
        result = ks_test_grid(empirical, dist.cdf)
        assert result.critical_value(0.05) == pytest.approx(ks_critical_value(30, 0.05))
        # Levels not precomputed fall back to the formula.
        assert result.critical_value(0.02) == pytest.approx(ks_critical_value(30, 0.02))


class TestSampleTest:
    def test_matches_scipy_statistic(self, rng):
        dist = Exponential(rate=2.0)
        draws = dist.sample(rng, size=500)
        ours = ks_test_samples(draws, dist.cdf)
        theirs = scipy.stats.kstest(draws, dist.cdf)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)

    def test_correct_hypothesis_usually_passes(self, rng):
        dist = Exponential(rate=1.0)
        draws = dist.sample(rng, size=2000)
        assert ks_test_samples(draws, dist.cdf).passes(0.01)

    def test_wrong_mean_fails(self, rng):
        draws = Exponential(rate=1.0).sample(rng, size=5000)
        wrong = Exponential(rate=3.0)
        assert not ks_test_samples(draws, wrong.cdf).passes(0.05)

    def test_empty_observations_rejected(self):
        with pytest.raises(DataError):
            ks_test_samples([], Exponential(rate=1.0).cdf)


class TestKSResult:
    def test_passes_uses_strict_inequality(self):
        result = KSResult(
            statistic=0.19, num_points=50, critical_values={0.05: 0.19}, p_value=0.05
        )
        assert not result.passes(0.05)

    def test_str_contains_statistic(self):
        result = KSResult(
            statistic=0.1412, num_points=50, critical_values={0.05: 0.19}, p_value=0.25
        )
        assert "0.1412" in str(result)
