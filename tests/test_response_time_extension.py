"""Tests for the response-time-distribution extension (the paper's open problem)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError, SolverError, UnstableQueueError
from repro.extensions import (
    ResponseTimeDistribution,
    fcfs_exponential_capacity_bound,
    mean_response_time,
    simulated_response_time_distribution,
)
from repro.distributions import Exponential
from repro.queueing import UnreliableQueueModel, sun_fitted_model
from repro.solvers import SolverPolicy


@pytest.fixture(scope="module")
def mm1_model() -> UnreliableQueueModel:
    """A reliable single server: the response-time law is known in closed form."""
    return UnreliableQueueModel(
        num_servers=1,
        arrival_rate=0.6,
        service_rate=1.0,
        operative=Exponential(rate=1e-8),
        inoperative=Exponential(rate=1e3),
    )


@pytest.fixture(scope="module")
def mm1_distribution(mm1_model) -> ResponseTimeDistribution:
    return simulated_response_time_distribution(mm1_model, horizon=150_000.0, seed=3)


class TestSimulatedDistribution:
    def test_mean_matches_mm1_theory(self, mm1_distribution):
        # M/M/1: W = 1 / (mu - lambda) = 2.5.
        assert mm1_distribution.mean == pytest.approx(2.5, rel=0.05)

    def test_quantiles_match_mm1_theory(self, mm1_distribution):
        """In M/M/1 (FCFS) the response time is exponential with rate mu - lambda."""
        rate = 1.0 - 0.6
        for probability in (0.5, 0.9, 0.95):
            expected = -np.log(1.0 - probability) / rate
            assert mm1_distribution.quantile(probability) == pytest.approx(expected, rel=0.08)

    def test_percentile_90_property(self, mm1_distribution):
        assert mm1_distribution.percentile_90 == pytest.approx(
            mm1_distribution.quantile(0.9)
        )

    def test_tail_probability_consistent_with_quantile(self, mm1_distribution):
        q90 = mm1_distribution.quantile(0.9)
        assert mm1_distribution.tail_probability(q90) == pytest.approx(0.1, abs=0.02)

    def test_tail_probability_at_zero_threshold(self, mm1_distribution):
        """P(T > 0) = 1: a zero threshold is a legitimate query, not an error."""
        assert mm1_distribution.tail_probability(0.0) == 1.0

    def test_tail_probability_negative_threshold_rejected(self, mm1_distribution):
        with pytest.raises(Exception):
            mm1_distribution.tail_probability(-1.0)

    def test_quantiles_monotone(self, mm1_distribution):
        assert (
            mm1_distribution.quantile(0.5)
            < mm1_distribution.quantile(0.9)
            < mm1_distribution.quantile(0.99)
        )

    def test_sample_count_reported(self, mm1_distribution):
        assert mm1_distribution.num_samples > 10_000

    def test_mean_consistent_with_spectral_solution(self):
        """The simulated mean response time agrees with Little's law on the
        exact solution for an unreliable-server configuration."""
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        distribution = simulated_response_time_distribution(
            model, horizon=80_000.0, seed=11
        )
        exact = model.solve_spectral().mean_response_time
        assert distribution.mean == pytest.approx(exact, rel=0.1)

    def test_too_short_horizon_rejected(self, mm1_model):
        with pytest.raises(SimulationError):
            simulated_response_time_distribution(mm1_model, horizon=5.0)

    def test_invalid_warmup_rejected(self, mm1_model):
        with pytest.raises(SimulationError):
            simulated_response_time_distribution(
                mm1_model, horizon=1000.0, warmup_fraction=1.5
            )


class TestCapacityBound:
    def test_quantile_formula(self):
        model = sun_fitted_model(num_servers=10, arrival_rate=8.0)
        capacity = model.service_rate * model.mean_operative_servers
        expected = -np.log(0.1) / (capacity - 8.0)
        assert fcfs_exponential_capacity_bound(model, 0.9) == pytest.approx(expected)

    def test_estimate_is_accurate_in_heavy_traffic(self):
        """At ~97% load the waiting time dominates and the aggregated-capacity
        estimate lands close to the simulated 90th percentile."""
        model = sun_fitted_model(num_servers=10, arrival_rate=9.7)
        distribution = simulated_response_time_distribution(
            model, horizon=60_000.0, seed=5
        )
        estimate = fcfs_exponential_capacity_bound(model, 0.9)
        simulated = distribution.quantile(0.9)
        assert estimate == pytest.approx(simulated, rel=0.5)

    def test_unstable_model_rejected(self):
        model = sun_fitted_model(num_servers=2, arrival_rate=5.0)
        with pytest.raises(UnstableQueueError):
            fcfs_exponential_capacity_bound(model, 0.9)

    def test_invalid_probability_rejected(self):
        model = sun_fitted_model(num_servers=10, arrival_rate=8.0)
        with pytest.raises(Exception):
            fcfs_exponential_capacity_bound(model, 1.0)


class TestSolverFacadeIntegration:
    def test_mean_response_time_matches_spectral(self):
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        assert mean_response_time(model) == pytest.approx(
            model.solve_spectral().mean_response_time
        )

    def test_mean_response_time_respects_policy(self):
        model = sun_fitted_model(num_servers=5, arrival_rate=3.5)
        geometric = mean_response_time(model, "geometric")
        assert geometric == pytest.approx(
            model.solve_geometric().mean_response_time
        )

    def test_mean_response_time_unstable_raises(self):
        with pytest.raises(SolverError, match="unstable"):
            mean_response_time(sun_fitted_model(num_servers=2, arrival_rate=5.0))

    def test_simulation_defaults_come_from_policy(self, mm1_model):
        policy = SolverPolicy(simulate_horizon=20_000.0, simulate_seed=3)
        from_policy = simulated_response_time_distribution(mm1_model, policy=policy)
        explicit = simulated_response_time_distribution(
            mm1_model, horizon=20_000.0, seed=3
        )
        assert from_policy.num_samples == explicit.num_samples
        assert from_policy.mean == pytest.approx(explicit.mean)
