"""Tests of the scenario simulator: dispatch, migration, crew contention.

The structural tests drive the simulator event by event and check the
fastest-server-first invariant and the repair-crew sharing factor directly;
the statistical tests are the scenario library's acceptance gate — for every
named preset the truncated-CTMC mean queue length must lie within the
simulation's confidence interval.
"""

from __future__ import annotations

import pytest

from repro.distributions import Exponential
from repro.exceptions import SimulationError
from repro.scenarios import ScenarioModel, ServerGroup, preset_names, scenario_preset
from repro.simulation import ScenarioSimulator, simulate_scenario


def _two_speed(repair_capacity=None, arrival_rate=1.2) -> ScenarioModel:
    return ScenarioModel(
        groups=(
            ServerGroup("fast", 2, 2.0, Exponential(rate=0.05), Exponential(rate=4.0)),
            ServerGroup("slow", 2, 0.5, Exponential(rate=0.05), Exponential(rate=4.0)),
        ),
        arrival_rate=arrival_rate,
        repair_capacity=repair_capacity,
    )


class TestSimulatorStructure:
    def test_initial_state(self):
        simulator = ScenarioSimulator(_two_speed())
        assert simulator.num_operative_servers == 4
        assert simulator.num_busy_servers == 0
        assert simulator.num_broken_servers == 0
        assert simulator.repair_share == 1.0

    def test_rejects_bad_horizon(self):
        with pytest.raises(SimulationError):
            ScenarioSimulator(_two_speed()).run(-1.0)

    def test_fastest_server_first_invariant(self):
        """At every event, no idle operative server is faster than a busy one."""
        simulator = ScenarioSimulator(_two_speed(arrival_rate=2.0), seed=11)
        simulator.run(200.0)
        for _ in range(3):
            simulator.run(simulator.now + 200.0)
            busy = simulator.busy_rates()
            idle = simulator.idle_operative_rates()
            if busy and idle:
                assert max(idle) <= min(busy)

    def test_crew_share_tracks_broken_count(self):
        scenario = _two_speed(repair_capacity=1)
        simulator = ScenarioSimulator(scenario, seed=3)
        simulator.run(500.0)
        for _ in range(20):
            simulator.run(simulator.now + 50.0)
            broken = simulator.num_broken_servers
            expected = 1.0 if broken <= 1 else 1.0 / broken
            assert simulator.repair_share == pytest.approx(expected)

    def test_unlimited_crew_share_is_one(self):
        simulator = ScenarioSimulator(_two_speed(), seed=3)
        simulator.run(1_000.0)
        assert simulator.repair_share == 1.0

    def test_jobs_and_busy_counts_consistent(self):
        simulator = ScenarioSimulator(_two_speed(arrival_rate=2.5), seed=5)
        simulator.run(1_000.0)
        assert simulator.num_busy_servers <= simulator.num_jobs_in_system
        assert simulator.num_busy_servers <= simulator.num_operative_servers
        assert simulator.num_jobs_in_system >= 0


class TestSimulateScenario:
    def test_estimate_fields(self):
        estimate = simulate_scenario(_two_speed(), horizon=2_000.0, seed=1, num_batches=5)
        assert estimate.mean_queue_length.estimate > 0.0
        assert estimate.mean_response_time.estimate > 0.0
        assert 0.0 < estimate.utilisation < 1.0
        assert estimate.num_completed_jobs > 0
        assert estimate.horizon == 2_000.0

    def test_parameter_validation(self):
        scenario = _two_speed()
        with pytest.raises(SimulationError):
            simulate_scenario(scenario, horizon=1_000.0, warmup_fraction=1.5)
        with pytest.raises(SimulationError):
            simulate_scenario(scenario, horizon=1_000.0, num_batches=1)

    def test_deterministic_in_seed(self):
        scenario = _two_speed()
        first = simulate_scenario(scenario, horizon=1_000.0, seed=42, num_batches=5)
        second = simulate_scenario(scenario, horizon=1_000.0, seed=42, num_batches=5)
        assert first.mean_queue_length.estimate == second.mean_queue_length.estimate

    def test_limited_crew_increases_queue(self):
        base = simulate_scenario(_two_speed(), horizon=30_000.0, seed=7)
        starved = simulate_scenario(
            _two_speed(repair_capacity=1), horizon=30_000.0, seed=7
        )
        assert starved.mean_queue_length.estimate > base.mean_queue_length.estimate


class TestPresetCrossValidation:
    """Acceptance gate: every named preset passes CTMC-vs-simulation validation."""

    @pytest.mark.parametrize("name", preset_names())
    def test_ctmc_within_simulation_confidence_interval(self, name):
        scenario = scenario_preset(name)
        solution = scenario.solve_ctmc()
        estimate = scenario.simulate(horizon=60_000.0, seed=2006)
        interval = estimate.mean_queue_length
        # Batch-means CIs on a single run are approximate; allow three
        # half-widths (~99.7% under the CI's own normality assumption).
        assert abs(solution.mean_queue_length - interval.estimate) <= (
            3.0 * interval.half_width + 1e-6
        ), (
            f"{name}: CTMC L={solution.mean_queue_length:.4f} outside "
            f"simulation {interval.estimate:.4f} +- {interval.half_width:.4f}"
        )
        assert solution.utilisation == pytest.approx(estimate.utilisation, abs=0.02)
