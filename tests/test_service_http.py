"""Integration tests of the running solver service, over real sockets.

A :class:`ThreadedService` on an ephemeral port backs each test; the
synchronous and asyncio clients drive it exactly as external consumers
would.  The headline acceptance criteria live here: all three query kinds
answered concurrently, 100 concurrent identical requests producing exactly
one underlying solve (pinned by the ``/stats`` coalesced counter), and the
queue-full/deadline paths returning structured errors.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    AsyncServiceClient,
    ServiceCallError,
    ServiceClient,
    ServiceConfig,
    ThreadedService,
)


@pytest.fixture
def service():
    with ThreadedService(ServiceConfig(port=0, batch_window=0.005)) as running:
        yield running


@pytest.fixture
def client(service):
    with ServiceClient(service.host, service.port, timeout=120.0) as sync_client:
        yield sync_client


class TestEndpoints:
    def test_steady_state_query(self, client):
        payload = client.solve_ok({"model": {"servers": 4, "arrival_rate": 2.0}})
        assert payload["query"] == "steady-state"
        assert payload["solver"] == "spectral"
        assert payload["stable"] is True
        assert payload["metrics"]["mean_queue_length"] > 0
        assert payload["metrics"]["mean_response_time"] > 0

    def test_scenario_query(self, client):
        payload = client.solve_ok({"query": "scenario", "preset": "single-repairman"})
        assert payload["solver"] == "ctmc"
        assert "utilisation" in payload["metrics"]

    def test_transient_query(self, client):
        payload = client.solve_ok(
            {
                "query": "transient",
                "model": {"servers": 3, "arrival_rate": 1.5},
                "times": [1.0, 5.0, 20.0],
            }
        )
        assert payload["solver"] == "transient"
        assert payload["metrics"]["evaluation_time"] == 20.0
        assert 0.0 <= payload["metrics"]["availability"] <= 1.0

    def test_repeat_query_is_served_from_cache(self, client):
        request = {"model": {"servers": 5, "arrival_rate": 3.0}}
        first = client.solve_ok(request)
        second = client.solve_ok(request)
        assert not first["cached"]
        assert second["cached"]
        assert second["metrics"] == first["metrics"]

    def test_healthz(self, client):
        response = client.healthz()
        assert response.status == 200
        assert response.payload["status"] == "ok"
        assert response.payload["uptime_seconds"] >= 0
        assert "queue_depth" in response.payload

    def test_stats_exposes_scheduler_and_cache_counters(self, client):
        client.solve_ok({"model": {"servers": 4, "arrival_rate": 2.0}})
        payload = client.stats().payload
        scheduler = payload["scheduler"]
        assert scheduler["requests_total"] >= 1
        assert scheduler["batches_total"] >= 1
        cache = scheduler["cache"]
        for key in ("hits", "misses", "hit_rate", "size", "maxsize", "solves", "evictions"):
            assert key in cache
        assert cache["solves"] >= 1

    def test_all_three_query_kinds_concurrently(self, service):
        """One service instance answers heterogeneous queries side by side."""
        queries = [
            {"model": {"servers": 4, "arrival_rate": 2.0}},
            {"query": "scenario", "preset": "single-repairman"},
            {
                "query": "transient",
                "model": {"servers": 3, "arrival_rate": 1.5},
                "times": [2.0, 10.0],
            },
        ]

        async def run():
            async_client = AsyncServiceClient(service.host, service.port, timeout=120.0)
            return await asyncio.gather(*(async_client.solve(query) for query in queries))

        responses = asyncio.run(run())
        assert [response.status for response in responses] == [200, 200, 200]
        assert [response.payload["solver"] for response in responses] == [
            "spectral",
            "ctmc",
            "transient",
        ]


class TestSingleFlight:
    def test_100_identical_requests_produce_exactly_one_solve(self):
        # A generous batch window guarantees every request lands while the
        # computation is queued or in flight, whatever the CI machine's pace.
        config = ServiceConfig(port=0, batch_window=0.5)
        with ThreadedService(config) as service:
            request = {"model": {"servers": 6, "arrival_rate": 4.0}, "solvers": ["ctmc"]}

            async def run():
                async_client = AsyncServiceClient(service.host, service.port, timeout=120.0)
                return await asyncio.gather(*(async_client.solve(request) for _ in range(100)))

            responses = asyncio.run(run())
            assert all(response.ok for response in responses)
            metrics = {
                json.dumps(response.payload["metrics"], sort_keys=True)
                for response in responses
            }
            assert len(metrics) == 1  # everyone got the same answer

            with ServiceClient(service.host, service.port) as sync_client:
                scheduler = sync_client.stats().payload["scheduler"]
            # The acceptance pin: one scheduled computation, one real solve,
            # and the coalesced counter accounts for every other request.
            assert scheduler["scheduled_total"] == 1
            assert scheduler["cache"]["solves"] == 1
            assert scheduler["coalesced_total"] == 99
            assert sum(response.payload["coalesced"] for response in responses) == 99


class TestStructuredErrors:
    def test_malformed_json(self, client):
        response = client.raw("POST", "/solve", b"{not json")
        assert response.status == 400
        assert response.error_code == "bad-json"

    def test_empty_body(self, client):
        response = client.raw("POST", "/solve", b"")
        assert response.status == 400
        assert response.error_code == "bad-request"

    def test_unknown_solver(self, client):
        response = client.solve({"model": {"servers": 2, "arrival_rate": 1.0}, "solvers": ["zap"]})
        assert response.status == 400
        assert response.error_code == "unknown-solver"

    def test_unknown_preset(self, client):
        response = client.solve({"query": "scenario", "preset": "nope"})
        assert response.status == 400
        assert response.error_code == "unknown-preset"

    def test_unstable_model(self, client):
        response = client.solve({"model": {"servers": 2, "arrival_rate": 50.0}})
        assert response.status == 422
        assert response.error_code == "unstable-model"

    def test_deadline_exceeded(self, client):
        response = client.solve(
            {
                "model": {"servers": 5, "arrival_rate": 3.0},
                "solvers": ["simulate"],
                "simulate": {"horizon": 30000.0},
                "deadline": 0.01,
            }
        )
        assert response.status == 504
        assert response.error_code == "deadline-exceeded"

    def test_queue_full(self):
        # max_queue=1 and a long window: the first distinct request occupies
        # the queue for the whole window, so the second is rejected.
        config = ServiceConfig(port=0, batch_window=1.0, max_queue=1)
        with ThreadedService(config) as service:
            requests = [
                {"model": {"servers": 3, "arrival_rate": 0.5 + 0.25 * index}}
                for index in range(3)
            ]

            async def run():
                async_client = AsyncServiceClient(service.host, service.port, timeout=120.0)
                return await asyncio.gather(
                    *(async_client.solve(request) for request in requests)
                )

            responses = asyncio.run(run())
            rejected = [r for r in responses if r.status == 429]
            assert len(rejected) == 2
            for response in rejected:
                assert response.error_code == "queue-full"
                assert float(response.headers["retry-after"]) > 0
                assert response.payload["error"]["retry_after"] > 0
            assert sum(1 for r in responses if r.ok) == 1

    def test_not_found(self, client):
        response = client.raw("GET", "/nope")
        assert response.status == 404
        assert response.error_code == "not-found"

    def test_method_not_allowed(self, client):
        response = client.raw("GET", "/solve")
        assert response.status == 405
        assert response.error_code == "method-not-allowed"
        response = client.raw("POST", "/stats")
        assert response.status == 405

    def test_payload_too_large(self):
        config = ServiceConfig(port=0, max_body_bytes=4096)
        with ThreadedService(config) as service:
            with ServiceClient(service.host, service.port) as sync_client:
                response = sync_client.raw("POST", "/solve", b"x" * 8192)
        assert response.status == 413
        assert response.error_code == "payload-too-large"

    def test_oversized_header_line_drops_the_connection_quietly(self, service):
        """A >64 KiB header line must not traceback-spam the server log."""
        import socket

        with socket.create_connection((service.host, service.port), timeout=10.0) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nX-Big: " + b"a" * 80_000 + b"\r\n\r\n")
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        assert b"".join(chunks) == b""  # dropped, no half-written response
        # The service survived and still answers on fresh connections.
        with ServiceClient(service.host, service.port) as sync_client:
            assert sync_client.healthz().status == 200

    def test_errors_are_counted_by_code(self, client):
        client.solve({"model": {"servers": 2, "arrival_rate": 50.0}})
        client.raw("POST", "/solve", b"{not json")
        payload = client.stats().payload
        assert payload["errors_by_code"]["unstable-model"] == 1
        assert payload["errors_by_code"]["bad-json"] == 1
        assert payload["errors_total"] >= 2

    def test_solve_ok_raises_a_typed_error(self, client):
        with pytest.raises(ServiceCallError, match=r"\[unstable-model\]"):
            client.solve_ok({"model": {"servers": 2, "arrival_rate": 50.0}})
