"""Unit tests for the breakdown-trace data model, synthetic generator and CSV I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    BreakdownEvent,
    BreakdownTrace,
    SyntheticTraceConfig,
    generate_small_trace,
    generate_sun_like_trace,
    operative_periods_from_events,
    read_trace_csv,
    write_trace_csv,
)
from repro.distributions import SUN_INOPERATIVE_FIT, SUN_OPERATIVE_FIT
from repro.exceptions import DataError


class TestBreakdownEvent:
    def test_operative_period_is_difference(self):
        event = BreakdownEvent(server_id=1, outage_duration=0.5, time_between_events=10.0)
        assert event.operative_period == pytest.approx(9.5)

    def test_anomalous_detection(self):
        good = BreakdownEvent(server_id=0, outage_duration=1.0, time_between_events=2.0)
        bad = BreakdownEvent(server_id=0, outage_duration=2.0, time_between_events=1.0)
        assert not good.is_anomalous
        assert bad.is_anomalous

    def test_equal_fields_not_anomalous(self):
        boundary = BreakdownEvent(server_id=0, outage_duration=1.0, time_between_events=1.0)
        assert not boundary.is_anomalous
        assert boundary.operative_period == 0.0


class TestBreakdownTrace:
    def _trace(self):
        return BreakdownTrace.from_arrays(
            outage_durations=[0.5, 1.0, 2.0, 0.1],
            times_between_events=[5.0, 0.5, 10.0, 3.0],
            server_ids=[1, 1, 2, 3],
        )

    def test_lengths_and_servers(self):
        trace = self._trace()
        assert len(trace) == 4
        assert trace.num_events == 4
        assert trace.num_servers == 3

    def test_anomaly_counting(self):
        trace = self._trace()
        assert trace.num_anomalous == 1  # second row: 0.5 < 1.0
        assert trace.anomalous_fraction == pytest.approx(0.25)

    def test_cleaning_removes_anomalies(self):
        cleaned = self._trace().cleaned()
        assert cleaned.num_events == 3
        assert cleaned.num_anomalous == 0

    def test_operative_periods_derivation(self):
        trace = self._trace()
        np.testing.assert_allclose(trace.operative_periods(), [4.5, 8.0, 2.9])

    def test_inoperative_periods(self):
        trace = self._trace()
        np.testing.assert_allclose(trace.inoperative_periods(), [0.5, 2.0, 0.1])

    def test_as_arrays_roundtrip(self):
        trace = self._trace()
        ids, outages, gaps = trace.as_arrays()
        rebuilt = BreakdownTrace.from_arrays(outages, gaps, ids)
        assert rebuilt.num_events == trace.num_events
        np.testing.assert_allclose(rebuilt.operative_periods(), trace.operative_periods())

    def test_summary_keys(self):
        summary = self._trace().summary()
        for key in (
            "num_events",
            "anomalous_fraction",
            "operative_mean",
            "operative_scv",
            "inoperative_mean",
            "inoperative_scv",
        ):
            assert key in summary

    def test_empty_trace_rejected(self):
        with pytest.raises(DataError):
            BreakdownTrace.from_arrays([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DataError):
            BreakdownTrace.from_arrays([1.0], [1.0, 2.0])

    def test_negative_values_rejected(self):
        with pytest.raises(DataError):
            BreakdownTrace.from_arrays([-1.0], [2.0])

    def test_cleaning_everything_rejected(self):
        trace = BreakdownTrace.from_arrays([2.0], [1.0])
        with pytest.raises(DataError):
            trace.cleaned()

    def test_helper_function(self):
        periods = operative_periods_from_events([0.5, 2.0], [5.0, 1.0])
        np.testing.assert_allclose(periods, [4.5])


class TestSyntheticTrace:
    def test_default_scale_matches_sun_data_set(self):
        config = SyntheticTraceConfig(num_events=5000)
        trace = generate_sun_like_trace(config)
        assert trace.num_events == 5000

    def test_anomalous_fraction_close_to_configured(self):
        trace = generate_small_trace(num_events=20_000, anomalous_fraction=0.03)
        assert trace.anomalous_fraction == pytest.approx(0.03, abs=0.005)

    def test_operative_periods_match_fitted_distribution(self):
        trace = generate_small_trace(num_events=50_000)
        periods = trace.operative_periods()
        assert np.mean(periods) == pytest.approx(SUN_OPERATIVE_FIT.mean, rel=0.05)
        scv = np.var(periods) / np.mean(periods) ** 2
        assert scv == pytest.approx(SUN_OPERATIVE_FIT.scv, rel=0.2)

    def test_inoperative_periods_match_fitted_distribution(self):
        trace = generate_small_trace(num_events=50_000)
        outages = trace.inoperative_periods()
        assert np.mean(outages) == pytest.approx(SUN_INOPERATIVE_FIT.mean, rel=0.05)

    def test_reproducible_with_seed(self):
        first = generate_small_trace(num_events=500, seed=5)
        second = generate_small_trace(num_events=500, seed=5)
        np.testing.assert_allclose(first.operative_periods(), second.operative_periods())

    def test_different_seeds_differ(self):
        first = generate_small_trace(num_events=500, seed=5)
        second = generate_small_trace(num_events=500, seed=6)
        assert not np.allclose(first.inoperative_periods(), second.inoperative_periods())

    def test_invalid_anomalous_fraction_rejected(self):
        with pytest.raises(Exception):
            SyntheticTraceConfig(num_events=100, anomalous_fraction=0.8)

    def test_zero_anomalies_possible(self):
        trace = generate_small_trace(num_events=2000, anomalous_fraction=0.0)
        assert trace.num_anomalous == 0


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        trace = generate_small_trace(num_events=200)
        path = write_trace_csv(trace, tmp_path / "trace.csv")
        loaded = read_trace_csv(path)
        assert loaded.num_events == trace.num_events
        np.testing.assert_allclose(loaded.operative_periods(), trace.operative_periods())
        np.testing.assert_allclose(loaded.inoperative_periods(), trace.inoperative_periods())

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DataError):
            read_trace_csv(tmp_path / "does_not_exist.csv")

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DataError):
            read_trace_csv(path)

    def test_non_numeric_values_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("server_id,outage_duration,time_between_events\n1,abc,2.0\n")
        with pytest.raises(DataError):
            read_trace_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("server_id,outage_duration,time_between_events\n")
        with pytest.raises(DataError):
            read_trace_csv(path)

    def test_server_column_optional(self, tmp_path):
        path = tmp_path / "no_server.csv"
        path.write_text("outage_duration,time_between_events\n0.5,5.0\n0.2,3.0\n")
        trace = read_trace_csv(path)
        assert trace.num_events == 2
        assert trace.num_servers == 1

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "extra.csv"
        path.write_text(
            "server_id,outage_duration,time_between_events,site\n1,0.5,5.0,london\n"
        )
        trace = read_trace_csv(path)
        assert trace.num_events == 1
