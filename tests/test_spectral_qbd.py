"""Unit tests for the QBD matrices and the characteristic polynomial (Section 3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential, HyperExponential
from repro.markov import BreakdownEnvironment
from repro.spectral import ModulatedQueueMatrices


@pytest.fixture
def example_matrices() -> ModulatedQueueMatrices:
    environment = BreakdownEnvironment(
        num_servers=2,
        operative=HyperExponential(weights=[0.6, 0.4], rates=[0.5, 0.05]),
        inoperative=Exponential(rate=2.0),
    )
    return ModulatedQueueMatrices(environment, arrival_rate=1.2, service_rate=1.0)


class TestMatrices:
    def test_arrival_matrix_is_lambda_identity(self, example_matrices):
        """Paper Section 3.1 (b): B = lambda I because arrivals keep the mode."""
        np.testing.assert_allclose(
            example_matrices.arrival_matrix, 1.2 * np.eye(6)
        )

    def test_service_matrix_level_zero_is_zero(self, example_matrices):
        """C_0 = 0 by definition."""
        np.testing.assert_allclose(example_matrices.service_matrix(0), np.zeros((6, 6)))

    def test_service_matrix_structure_at_level_one(self, example_matrices):
        """mu_{i,1} = min(x_i, 1) mu: one busy server in every mode with x_i >= 1."""
        expected = np.diag([0.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        np.testing.assert_allclose(example_matrices.service_matrix(1), expected)

    def test_service_matrix_saturates_at_num_servers(self, example_matrices):
        """C_j = C for j >= N (paper: the index j may be dropped)."""
        reference = example_matrices.service_matrix(2)
        np.testing.assert_allclose(example_matrices.service_matrix(5), reference)
        np.testing.assert_allclose(example_matrices.repeating_service_matrix, reference)

    def test_repeating_service_matrix_counts_operative_servers(self, example_matrices):
        expected = np.diag([0.0, 1.0, 1.0, 2.0, 2.0, 2.0])
        np.testing.assert_allclose(example_matrices.repeating_service_matrix, expected)

    def test_level_generator_row_sums_vanish(self, example_matrices):
        """At every level the full generator restricted to that level has zero row sums
        once arrivals and departures are added back — i.e. rates are conserved."""
        for level in range(5):
            np.testing.assert_allclose(
                example_matrices.level_generator_row_sums(level), 0.0, atol=1e-12
            )

    def test_local_balance_matrix_diagonal_negative(self, example_matrices):
        local = example_matrices.local_balance_matrix(3)
        assert np.all(np.diag(local) < 0.0)


class TestCharacteristicPolynomial:
    def test_q0_is_arrival_matrix(self, example_matrices):
        np.testing.assert_allclose(example_matrices.q0, example_matrices.arrival_matrix)

    def test_q2_is_repeating_service_matrix(self, example_matrices):
        np.testing.assert_allclose(
            example_matrices.q2, example_matrices.repeating_service_matrix
        )

    def test_q1_definition(self, example_matrices):
        expected = (
            example_matrices.mode_transition_matrix
            - example_matrices.mode_row_sums
            - example_matrices.arrival_matrix
            - example_matrices.repeating_service_matrix
        )
        np.testing.assert_allclose(example_matrices.q1, expected)

    def test_polynomial_at_one_is_environment_generator(self, example_matrices):
        """Q(1) = Q0 + Q1 + Q2 = A - D^A, the generator of the environment."""
        environment_generator = (
            example_matrices.mode_transition_matrix - example_matrices.mode_row_sums
        )
        np.testing.assert_allclose(
            example_matrices.characteristic_polynomial(1.0), environment_generator, atol=1e-12
        )

    def test_polynomial_at_zero_is_q0(self, example_matrices):
        np.testing.assert_allclose(
            example_matrices.characteristic_polynomial(0.0), example_matrices.q0
        )

    def test_polynomial_is_quadratic(self, example_matrices):
        z = 0.37
        expected = (
            example_matrices.q0 + z * example_matrices.q1 + z * z * example_matrices.q2
        )
        np.testing.assert_allclose(
            example_matrices.characteristic_polynomial(z), expected
        )

    def test_off_diagonal_entries_nonnegative_inside_unit_interval(self, example_matrices):
        """Q(z) is an ML-matrix for z in (0, 1]: non-negative off-diagonal entries.

        This is the structural property the decay-rate bisection relies on.
        """
        for z in (0.1, 0.5, 0.9, 1.0):
            matrix = example_matrices.characteristic_polynomial(z)
            off_diagonal = matrix - np.diag(np.diag(matrix))
            assert np.all(off_diagonal >= -1e-12)
