"""Tests for the sharded multi-process serving tier.

Pure units first (the consistent-hash ring, the tiered shedding rule, the
shard worker protocol driven in-thread over a real pipe), then the headline
routing invariants against a live 4-shard :class:`ThreadedService`: identical
concurrent requests collapse onto one shard and one solve, a killed worker
surfaces the structured retryable ``worker-crashed`` error and the pool
recovers, and a spill → restart → load cycle serves the old answer without
re-solving.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.queueing import sun_fitted_model
from repro.service import (
    DEFAULT_SHED_THRESHOLDS,
    AsyncServiceClient,
    ConsistentHashRing,
    LoadShedError,
    ServiceClient,
    ServiceConfig,
    ShardWorkerConfig,
    ShardedService,
    SolverService,
    ThreadedService,
    WorkerCrashedError,
    build_service,
    shard_cache_path,
    shed_decision,
    stable_key_digest,
    worker_main,
)
from repro.solvers import SolutionCache, SolverPolicy, solution_cache_key


class TestConsistentHashRing:
    def test_same_key_always_lands_on_the_same_shard(self):
        ring = ConsistentHashRing(4)
        rebuilt = ConsistentHashRing(4)
        for servers in range(3, 30):
            key = solution_cache_key(
                sun_fitted_model(num_servers=servers, arrival_rate=0.4 * servers),
                SolverPolicy(),
            )
            shard = ring.shard_for(key)
            assert 0 <= shard < 4
            assert rebuilt.shard_for(key) == shard

    def test_vnode_replicas_spread_keys_across_shards(self):
        ring = ConsistentHashRing(4)
        counts = [0, 0, 0, 0]
        for index in range(1000):
            counts[ring.shard_for(("key", index))] += 1
        # With 64 vnodes per shard no shard gets starved or swamped.
        assert min(counts) > 100
        assert max(counts) < 500

    def test_digest_is_independent_of_the_process_hash_seed(self):
        key = ("steady-state", 4, 2.0, ("Exponential", (1.0,)))
        script = (
            "from repro.service import stable_key_digest;"
            f"print(stable_key_digest({key!r}))"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
        )
        reported = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert int(reported.stdout) == stable_key_digest(key)

    def test_invalid_shapes_are_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ConsistentHashRing(0)
        with pytest.raises(ValueError, match="replicas"):
            ConsistentHashRing(2, replicas=0)


class TestShedDecision:
    def test_admits_everything_under_the_lowest_threshold(self):
        for query in ("steady-state", "scenario", "transient"):
            assert shed_decision(query, 69, 100) is None

    def test_sheds_cheapest_tiers_first_as_load_rises(self):
        assert shed_decision("steady-state", 70, 100) == "steady-state"
        assert shed_decision("scenario", 70, 100) is None
        assert shed_decision("transient", 70, 100) is None
        assert shed_decision("scenario", 85, 100) == "scenario"
        assert shed_decision("transient", 85, 100) is None
        assert shed_decision("transient", 100, 100) == "transient"

    def test_unknown_kinds_get_the_most_expensive_tier(self):
        assert shed_decision("mystery", 85, 100) is None
        assert shed_decision("mystery", 100, 100) == "mystery"

    def test_zero_capacity_sheds_everything(self):
        assert shed_decision("transient", 0, 0) == "transient"

    def test_default_thresholds_are_monotone(self):
        assert DEFAULT_SHED_THRESHOLDS == (0.7, 0.85, 1.0)
        assert list(DEFAULT_SHED_THRESHOLDS) == sorted(DEFAULT_SHED_THRESHOLDS)

    def test_latency_pressure_sheds_with_an_empty_queue(self):
        assert shed_decision("steady-state", 0, 100, latency_pressure=0.7) == "steady-state"
        assert shed_decision("scenario", 0, 100, latency_pressure=0.7) is None
        assert shed_decision("scenario", 0, 100, latency_pressure=0.85) == "scenario"
        assert shed_decision("transient", 0, 100, latency_pressure=0.99) is None
        assert shed_decision("transient", 0, 100, latency_pressure=1.0) == "transient"

    def test_load_is_the_max_of_depth_and_latency_pressure(self):
        assert shed_decision("steady-state", 69, 100, latency_pressure=0.69) is None
        assert shed_decision("steady-state", 69, 100, latency_pressure=0.7) == "steady-state"
        assert shed_decision("steady-state", 70, 100, latency_pressure=0.0) == "steady-state"

    def test_structured_shed_and_crash_payloads(self):
        shed = LoadShedError("overloaded", shard=2, tier="steady-state", retry_after=0.2)
        assert shed.http_status == 429
        assert shed.payload()["shard"] == 2
        assert shed.payload()["shed_tier"] == "steady-state"
        crash = WorkerCrashedError("died", shard=1)
        assert crash.http_status == 503
        assert crash.payload()["retryable"] is True
        assert crash.payload()["shard"] == 1


class TestBuildService:
    def test_single_worker_builds_the_plain_service(self):
        service = build_service(ServiceConfig(port=0, workers=1))
        assert type(service) is SolverService

    def test_multiple_workers_build_the_sharded_service(self):
        service = build_service(ServiceConfig(port=0, workers=3))
        assert isinstance(service, ShardedService)


class TestWorkerProtocol:
    def test_worker_main_speaks_the_pipe_protocol_in_a_thread(self, tmp_path):
        """Drive one shard worker end to end without spawning a process."""
        parent, child = multiprocessing.Pipe()
        config = ShardWorkerConfig(
            shard=3, batch_window=0.001, cache_dir=str(tmp_path), spill_interval=0.0
        )
        thread = threading.Thread(target=worker_main, args=(config, child), daemon=True)
        thread.start()

        def receive(timeout: float = 60.0) -> tuple:
            assert parent.poll(timeout), "worker sent nothing in time"
            return parent.recv()

        assert receive() == ("ready", 3)
        model = sun_fitted_model(num_servers=4, arrival_rate=2.0)
        parent.send(("solve", 1, model, SolverPolicy(), None))
        request_id, kind, result = receive()
        assert (request_id, kind) == (1, "ok")
        assert result["solver"] == "spectral"
        assert result["cached"] is False

        parent.send(("solve", 2, model, SolverPolicy(), None))
        _, _, repeat = receive()
        assert repeat["cached"] is True

        parent.send(("unknown-kind", 99))  # ignored, must not kill the shard
        parent.send(("stats", 4))
        request_id, kind, stats = receive()
        assert (request_id, kind) == (4, "stats")
        assert stats["shard"] == 3
        assert stats["cache"]["solves"] == 1

        parent.send(("spill", 5))
        request_id, kind, count = receive()
        assert (request_id, kind, count) == (5, "spilled", 1)
        assert shard_cache_path(tmp_path, 3).exists()

        parent.send(("shutdown",))
        thread.join(timeout=30.0)
        assert not thread.is_alive()

    def test_sigterm_on_a_real_process_spills_then_exits_cleanly(self, tmp_path):
        """A spawned worker traps SIGTERM itself: spill the shard cache, exit 0.

        This must run against a real process, not the in-thread harness: the
        handler only installs in a process's main thread, and the regression
        being pinned here (shutdown written to the front-facing pipe end
        instead of the worker's own inbox) is invisible when the test itself
        holds the other pipe end.
        """
        context = multiprocessing.get_context("spawn")
        parent, child = context.Pipe()
        config = ShardWorkerConfig(
            shard=1, batch_window=0.001, cache_dir=str(tmp_path), spill_interval=0.0
        )
        process = context.Process(target=worker_main, args=(config, child))
        process.start()
        child.close()
        try:
            assert parent.poll(120.0), "worker never finished the ready handshake"
            assert parent.recv() == ("ready", 1)
            model = sun_fitted_model(num_servers=4, arrival_rate=2.0)
            parent.send(("solve", 1, model, SolverPolicy(), None))
            assert parent.poll(120.0), "worker never answered the solve"
            _, kind, _ = parent.recv()
            assert kind == "ok"

            process.terminate()  # SIGTERM, the orchestrator stop signal
            process.join(timeout=60.0)
        finally:
            if process.is_alive():  # pragma: no cover - debugging aid
                process.kill()
                process.join(timeout=10.0)
        assert process.exitcode == 0, "SIGTERM must shut the worker down, not hang it"
        restored = SolutionCache()
        assert restored.load(shard_cache_path(tmp_path, 1)) == 1


@pytest.fixture(scope="module")
def sharded_service():
    """One live 4-shard service shared by the routing-invariant tests."""
    with ThreadedService(ServiceConfig(port=0, workers=4, batch_window=0.005)) as running:
        yield running


class TestShardedRouting:
    def test_identical_concurrent_requests_cost_one_solve_on_one_shard(
        self, sharded_service
    ):
        request = {"model": {"servers": 7, "arrival_rate": 4.31}}
        with ServiceClient(
            sharded_service.host, sharded_service.port, timeout=120.0
        ) as client:
            before = client.stats().payload["totals"]["solves"]

        async def run():
            async_client = AsyncServiceClient(
                sharded_service.host, sharded_service.port, timeout=120.0
            )
            return await asyncio.gather(*(async_client.solve(request) for _ in range(100)))

        responses = asyncio.run(run())
        assert [response.status for response in responses] == [200] * 100
        shards = {response.payload["shard"] for response in responses}
        assert len(shards) == 1  # same key, same shard, every time
        with ServiceClient(
            sharded_service.host, sharded_service.port, timeout=120.0
        ) as client:
            after = client.stats().payload["totals"]["solves"]
        assert after - before == 1

    def test_stats_aggregates_all_shards(self, sharded_service):
        with ServiceClient(
            sharded_service.host, sharded_service.port, timeout=120.0
        ) as client:
            client.solve_ok({"model": {"servers": 3, "arrival_rate": 1.1}})
            payload = client.stats().payload
        assert payload["workers"] == 4
        assert len(payload["shards"]) == 4
        assert {entry["shard"] for entry in payload["shards"]} == {0, 1, 2, 3}
        assert all(entry["state"] == "ready" for entry in payload["shards"])
        shedding = payload["shedding"]
        assert shedding["tier_order"] == ["steady-state", "scenario", "transient"]
        assert shedding["capacity"] > 0
        assert payload["totals"]["requests_total"] >= 1

    def test_healthz_reports_pool_readiness(self, sharded_service):
        with ServiceClient(
            sharded_service.host, sharded_service.port, timeout=120.0
        ) as client:
            payload = client.healthz().payload
        assert payload["workers"] == 4
        assert payload["workers_ready"] == 4


class TestShardedTraceAPI:
    def test_trace_lookup_merges_worker_spans_onto_the_front_clock(
        self, sharded_service
    ):
        """The acceptance pin: GET /traces/<id> against a 4-shard service
        returns the full admission → queue-wait → solve span tree, with the
        worker-recorded spans re-based onto the front's clock."""
        with ServiceClient(
            sharded_service.host, sharded_service.port, timeout=120.0
        ) as client:
            payload = client.solve_ok({"model": {"servers": 11, "arrival_rate": 6.05}})
            trace_id = payload["trace_id"]

            found = client.trace(trace_id)
            assert found.status == 200
            trace = found.payload["trace"]
            assert trace["trace_id"] == trace_id
            spans = {span["name"]: span for span in trace["spans"]}
            assert {"admission", "queue-wait", "solve"} <= set(spans)
            # Re-based worker spans live on the front's clock: the worker's
            # solve cannot start before the front-recorded admission span.
            assert spans["solve"]["start_ms"] >= spans["admission"]["start_ms"]
            assert spans["solve"]["annotations"]["solver"] == "spectral"
            assert spans["queue-wait"]["duration_ms"] >= 0.0

            listing = client.traces(limit=50)
            assert listing.status == 200
            assert any(
                entry["trace_id"] == trace_id for entry in listing.payload["traces"]
            )

            missing = client.trace("f" * 16)
            assert missing.status == 404
            assert missing.payload["error"]["code"] == "not-found"


class TestCrashRecovery:
    def test_killed_worker_surfaces_retryable_error_then_recovers(self):
        request = {"model": {"servers": 6, "arrival_rate": 3.3}}
        with ThreadedService(
            ServiceConfig(port=0, workers=2, batch_window=0.002)
        ) as running:
            with ServiceClient(running.host, running.port, timeout=120.0) as client:
                first = client.solve_ok(request)
                shard = first["shard"]
                handle = running.service._handles[shard]
                handle.process.kill()
                handle.process.join()

                saw_crash_error = False
                recovered = None
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    response = client.solve(request)
                    if response.ok:
                        recovered = response.payload
                        break
                    error = response.payload["error"]
                    assert error["code"] == "worker-crashed"
                    assert error["shard"] == shard
                    assert error["retryable"] is True
                    saw_crash_error = True
                    time.sleep(0.2)
                assert saw_crash_error, "the crash window surfaced no structured error"
                assert recovered is not None, "the shard never recovered"
                assert recovered["shard"] == shard  # identity rehash
                stats = client.stats().payload
                assert stats["shards"][shard]["restarts"] >= 1

    def test_concurrent_scrapes_across_a_respawn_never_double_count(self):
        """/metrics under concurrent scrape while a worker dies and respawns:
        every scrape must parse with each series rendered exactly once, and
        the restart counts exactly one respawn."""
        with ThreadedService(
            ServiceConfig(port=0, workers=2, batch_window=0.002)
        ) as running:
            with ServiceClient(running.host, running.port, timeout=120.0) as client:
                first = client.solve_ok({"model": {"servers": 4, "arrival_rate": 2.2}})
                shard = first["shard"]

                texts: list[str] = []
                errors: list[Exception] = []
                stop = threading.Event()

                def scrape():
                    try:
                        with ServiceClient(
                            running.host, running.port, timeout=120.0
                        ) as scraper:
                            while not stop.is_set():
                                status, text = scraper.metrics()
                                assert status == 200
                                texts.append(text)
                    except Exception as exc:  # pragma: no cover - failure signal
                        errors.append(exc)

                scrapers = [threading.Thread(target=scrape) for _ in range(3)]
                for thread in scrapers:
                    thread.start()
                handle = running.service._handles[shard]
                handle.process.kill()
                handle.process.join()
                recovered = False
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    if client.healthz().payload.get("workers_ready") == 2:
                        recovered = True
                        break
                    time.sleep(0.1)
                stop.set()
                for thread in scrapers:
                    thread.join(timeout=60.0)
                assert errors == []
                assert recovered, "the pool never returned to full readiness"
                assert texts, "the scrapers never completed a scrape"
                status, text = client.metrics()
        assert status == 200
        for scraped in texts + [text]:
            series = [
                line.split(" ")[0]
                for line in scraped.splitlines()
                if line and not line.startswith("#")
            ]
            assert len(series) == len(set(series)), "a series rendered twice"
        restarts = sum(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_worker_restarts_total")
        )
        assert restarts == 1.0

    def test_simultaneous_crash_reports_respawn_only_once(self):
        """The health sweep and the pipe-EOF callback can both report one
        death; retiring the generation on the loop lets only the first
        schedule a respawn, so a shard never ends up with two processes."""

        async def run():
            service = ShardedService(ServiceConfig(port=0, workers=2))
            service._loop = asyncio.get_running_loop()
            respawned: list[int] = []

            async def fake_respawn(handle):
                respawned.append(handle.shard)

            service._respawn = fake_respawn
            handle = service._handles[0]
            handle.state = "ready"
            generation = handle.generation
            service._on_worker_down(handle, generation)  # health sweep wins
            service._on_worker_down(handle, generation)  # stale EOF report
            await asyncio.sleep(0)
            assert respawned == [0]
            assert handle.restarts == 1

        asyncio.run(run())


class TestControlPlaneAdmission:
    def test_stats_polling_does_not_count_toward_admission_or_healthz(self):
        """In-flight stats/spill queries must never shed real solve traffic
        or inflate the reported queue depth."""

        async def run():
            service = ShardedService(ServiceConfig(port=0, workers=2, max_queue=4))
            loop = asyncio.get_running_loop()
            handle = service._handles[0]
            handle.state = "ready"
            for request_id in range(100):
                handle.control_pending[request_id] = loop.create_future()
            service._admit("steady-state", 0, handle)  # must not raise
            payload = await service._healthz_payload()
            assert payload["queue_depth"] == 0

        asyncio.run(run())

    def test_latency_pressure_sheds_an_idle_queue(self):
        """The front's admission consults measured latency: SLO pressure
        alone sheds the cheap tier while zero requests are pending."""

        async def run():
            service = ShardedService(ServiceConfig(port=0, workers=2, max_queue=8))
            handle = service._handles[0]
            handle.state = "ready"
            service._admit("steady-state", 0, handle)  # healthy tracker: admitted
            for _ in range(20):
                service.slo.observe_queue_wait(50.0)  # way over the 2 s target
            assert service.slo.pressure() >= 1.0
            with pytest.raises(LoadShedError) as shed:
                service._admit("steady-state", 0, handle)
            assert shed.value.payload()["shed_tier"] == "steady-state"
            assert sum(len(h.pending) for h in service._handles) == 0

        asyncio.run(run())


class TestSpillRestartLoad:
    def test_restart_serves_yesterdays_answer_without_resolving(self, tmp_path):
        request = {"model": {"servers": 5, "arrival_rate": 2.57}}
        config = ServiceConfig(
            port=0,
            workers=2,
            batch_window=0.002,
            cache_dir=str(tmp_path),
            spill_interval=0.0,
        )
        with ThreadedService(config) as running:
            with ServiceClient(running.host, running.port, timeout=120.0) as client:
                first = client.solve_ok(request)
                assert first["cached"] is False
        # Graceful shutdown spilled every shard's snapshot.
        snapshots = sorted(entry.name for entry in tmp_path.iterdir())
        assert snapshots == ["shard-0.json", "shard-1.json"]

        with ThreadedService(config) as running:
            with ServiceClient(running.host, running.port, timeout=120.0) as client:
                second = client.solve_ok(request)
                stats = client.stats().payload
        assert second["cached"] is True
        assert second["shard"] == first["shard"]
        assert second["metrics"] == first["metrics"]
        assert stats["totals"]["solves"] == 0  # served from the loaded snapshot
