"""Unit tests of the service protocol and the batching scheduler.

The HTTP layer has its own integration suite (``test_service_http.py``);
here the protocol validator and the scheduler are exercised directly, so
every structured error code and every scheduling mechanism (coalescing,
batching, backpressure, deadlines) is pinned without sockets in the loop.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.queueing import UnreliableQueueModel
from repro.scenarios import ScenarioModel
from repro.service import (
    BadJSONError,
    BadRequestError,
    BatchScheduler,
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    UnknownPresetError,
    UnknownSolverError,
    UnstableModelError,
    parse_body,
    parse_solve_request,
)
from repro.solvers import SolutionCache, solve_many, solve_many_async
from repro.solvers import facade as facade_module


def _request(**overrides) -> dict:
    """A minimal valid steady-state payload, with overrides merged in."""
    payload = {"model": {"servers": 4, "arrival_rate": 2.0}}
    payload.update(overrides)
    return payload


class TestParseBody:
    def test_valid_object(self):
        assert parse_body(b'{"a": 1}') == {"a": 1}

    def test_malformed_json_is_bad_json(self):
        with pytest.raises(BadJSONError, match="not valid JSON"):
            parse_body(b"{nope")

    def test_non_object_is_bad_json(self):
        with pytest.raises(BadJSONError, match="must be a JSON object"):
            parse_body(b"[1, 2]")

    def test_non_utf8_is_bad_json(self):
        with pytest.raises(BadJSONError):
            parse_body(b"\xff\xfe")


class TestParseSolveRequest:
    def test_minimal_steady_state(self):
        request = parse_solve_request(_request())
        assert request.query == "steady-state"
        assert isinstance(request.model, UnreliableQueueModel)
        assert request.model.num_servers == 4
        assert request.policy.order == ("spectral", "geometric", "ctmc", "simulate")
        assert request.deadline is None

    def test_model_defaults_match_the_paper_fit(self):
        request = parse_solve_request(_request())
        assert request.model.operative.mean == pytest.approx(34.62)
        assert request.model.inoperative.mean == pytest.approx(0.04)

    def test_scenario_preset(self):
        request = parse_solve_request({"query": "scenario", "preset": "single-repairman"})
        assert isinstance(request.model, ScenarioModel)
        assert request.policy.order == ("ctmc", "simulate")

    def test_scenario_overrides(self):
        request = parse_solve_request(
            {
                "query": "scenario",
                "preset": "single-repairman",
                "arrival_rate": 0.5,
                "repair_capacity": 2,
            }
        )
        assert request.model.arrival_rate == 0.5
        assert request.model.effective_repair_capacity == 2

    def test_transient_times_fold_into_the_policy(self):
        request = parse_solve_request(_request(query="transient", times=[1, 5.0, 25]))
        assert request.policy.order == ("transient",)
        assert request.policy.transient_times == (1.0, 5.0, 25.0)

    def test_transient_preset(self):
        request = parse_solve_request(
            {"query": "transient", "preset": "single-repairman", "times": [2.0]}
        )
        assert isinstance(request.model, ScenarioModel)

    def test_solvers_override_and_deadline(self):
        request = parse_solve_request(_request(solvers=["ctmc"], deadline=1.5))
        assert request.policy.order == ("ctmc",)
        assert request.deadline == 1.5

    def test_solvers_accepts_a_single_name(self):
        request = parse_solve_request(_request(solvers="spectral"))
        assert request.policy.order == ("spectral",)

    def test_simulate_options(self):
        request = parse_solve_request(
            _request(simulate={"horizon": 1000.0, "seed": 7, "num_batches": 5})
        )
        assert request.policy.simulate_horizon == 1000.0
        assert request.policy.simulate_seed == 7
        assert request.policy.simulate_num_batches == 5

    # -- every structured rejection, by code -------------------------------

    def test_unknown_top_level_field(self):
        with pytest.raises(BadRequestError, match="unknown request field"):
            parse_solve_request(_request(modell={}))

    def test_unknown_query_kind(self):
        with pytest.raises(BadRequestError, match="unknown query kind"):
            parse_solve_request(_request(query="sideways"))

    def test_missing_model(self):
        with pytest.raises(BadRequestError, match="require a 'model' object"):
            parse_solve_request({})

    def test_missing_required_model_field(self):
        with pytest.raises(BadRequestError, match="'servers' is required"):
            parse_solve_request({"model": {"arrival_rate": 1.0}})

    def test_ill_typed_model_field(self):
        with pytest.raises(BadRequestError, match="must be an integer"):
            parse_solve_request({"model": {"servers": "ten", "arrival_rate": 1.0}})

    def test_boolean_is_not_a_number(self):
        with pytest.raises(BadRequestError, match="must be a number"):
            parse_solve_request({"model": {"servers": 2, "arrival_rate": True}})

    def test_operative_scv_below_one(self):
        with pytest.raises(BadRequestError, match="operative_scv"):
            parse_solve_request(
                {"model": {"servers": 2, "arrival_rate": 1.0, "operative_scv": 0.5}}
            )

    def test_unknown_solver(self):
        with pytest.raises(UnknownSolverError, match="registered solvers"):
            parse_solve_request(_request(solvers=["zap"]))

    def test_unknown_preset(self):
        with pytest.raises(UnknownPresetError, match="available"):
            parse_solve_request({"query": "scenario", "preset": "nope"})

    def test_scenario_requires_a_preset(self):
        with pytest.raises(BadRequestError, match="require a 'preset'"):
            parse_solve_request({"query": "scenario"})

    def test_preset_rejected_for_steady_state(self):
        with pytest.raises(BadRequestError, match="steady-state queries take a 'model'"):
            parse_solve_request({"preset": "single-repairman"})

    def test_preset_and_model_together_rejected(self):
        """Nothing is silently dropped: the ambiguous pair is an error."""
        with pytest.raises(BadRequestError, match="mutually exclusive"):
            parse_solve_request(
                {
                    "query": "transient",
                    "preset": "single-repairman",
                    "model": {"servers": 2, "arrival_rate": 1.0},
                    "times": [1.0],
                }
            )

    def test_times_rejected_outside_transient(self):
        with pytest.raises(BadRequestError, match="transient queries only"):
            parse_solve_request(_request(times=[1.0]))

    def test_negative_deadline(self):
        with pytest.raises(BadRequestError, match="deadline"):
            parse_solve_request(_request(deadline=-1.0))

    def test_unstable_model_is_structurally_rejected(self):
        with pytest.raises(UnstableModelError, match="unstable"):
            parse_solve_request({"model": {"servers": 2, "arrival_rate": 50.0}})


def _model(arrival_rate: float = 2.0) -> dict:
    return parse_solve_request(_request(model={"servers": 4, "arrival_rate": arrival_rate}))


class TestBatchScheduler:
    """Scheduler mechanics, each awaited on a private event loop."""

    def _scheduler(self, **options) -> BatchScheduler:
        options.setdefault("batch_window", 0.005)
        return BatchScheduler(**options)

    def test_validates_construction(self):
        with pytest.raises(ValueError, match="batch_window"):
            BatchScheduler(batch_window=-1.0)
        with pytest.raises(ValueError, match="max_queue"):
            BatchScheduler(max_queue=0)
        with pytest.raises(ValueError, match="max_batch"):
            BatchScheduler(max_batch=0)
        with pytest.raises(ValueError, match="workers"):
            BatchScheduler(workers=0)

    def test_solves_and_caches(self):
        scheduler = self._scheduler()
        request = _model()

        async def run():
            first = await scheduler.submit(request.model, request.policy)
            second = await scheduler.submit(request.model, request.policy)
            await scheduler.close()
            return first, second

        first, second = asyncio.run(run())
        assert first.outcome.solver == "spectral"
        assert not first.cached and not first.coalesced
        assert second.cached and not second.coalesced
        stats = scheduler.cache.stats()
        assert stats["solves"] == 1
        # Exact accounting: the scheduler's pre-scheduling probe must not
        # double-count the miss that solve_many registers for the same key.
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["hit_rate"] == 0.5

    def test_identical_concurrent_requests_are_single_flight(self):
        scheduler = self._scheduler(batch_window=0.05)
        request = _model()

        async def run():
            results = await asyncio.gather(
                *(scheduler.submit(request.model, request.policy) for _ in range(25))
            )
            await scheduler.close()
            return results

        results = asyncio.run(run())
        assert all(result.outcome.solver == "spectral" for result in results)
        stats = scheduler.stats()
        assert stats["scheduled_total"] == 1
        assert stats["coalesced_total"] == 24
        assert stats["cache"]["solves"] == 1
        assert sum(result.coalesced for result in results) == 24

    def test_distinct_requests_batch_into_one_solve_many_call(self):
        scheduler = self._scheduler(batch_window=0.1)
        requests = [_model(1.0 + 0.25 * i) for i in range(5)]

        async def run():
            results = await asyncio.gather(
                *(scheduler.submit(item.model, item.policy) for item in requests)
            )
            await scheduler.close()
            return results

        results = asyncio.run(run())
        assert len(results) == 5
        stats = scheduler.stats()
        assert stats["batches_total"] == 1
        assert stats["largest_batch"] == 5
        assert stats["cache"]["solves"] == 5

    def test_full_buffer_flushes_before_the_window(self):
        scheduler = self._scheduler(batch_window=30.0, max_batch=2)
        requests = [_model(1.0 + 0.25 * i) for i in range(4)]

        async def run():
            results = await asyncio.wait_for(
                asyncio.gather(*(scheduler.submit(r.model, r.policy) for r in requests)),
                timeout=20.0,
            )
            await scheduler.close()
            return results

        # With a 30s window, only the full-buffer flush can answer in time.
        results = asyncio.run(run())
        assert len(results) == 4
        assert scheduler.stats()["batches_total"] == 2

    def test_queue_full_rejection_carries_retry_after(self):
        scheduler = self._scheduler(batch_window=5.0, max_queue=2)
        requests = [_model(1.0 + 0.25 * i) for i in range(3)]

        async def run():
            waiters = [
                asyncio.ensure_future(scheduler.submit(r.model, r.policy))
                for r in requests[:2]
            ]
            await asyncio.sleep(0)  # let both enqueue
            with pytest.raises(QueueFullError) as excinfo:
                await scheduler.submit(requests[2].model, requests[2].policy)
            for waiter in waiters:
                waiter.cancel()
            await asyncio.gather(*waiters, return_exceptions=True)
            await scheduler.close()
            return excinfo.value

        error = asyncio.run(run())
        assert error.retry_after is not None and error.retry_after > 0
        assert scheduler.stats()["rejected_total"] == 1

    def test_coalesced_joins_are_never_rejected(self):
        scheduler = self._scheduler(batch_window=5.0, max_queue=1)
        request = _model()

        async def run():
            first = asyncio.ensure_future(scheduler.submit(request.model, request.policy))
            await asyncio.sleep(0)
            # The queue is at capacity, but an identical request coalesces.
            second = asyncio.ensure_future(scheduler.submit(request.model, request.policy))
            await asyncio.sleep(0)
            first.cancel()
            second.cancel()
            await asyncio.gather(first, second, return_exceptions=True)
            await scheduler.close()

        asyncio.run(run())
        stats = scheduler.stats()
        assert stats["rejected_total"] == 0
        assert stats["coalesced_total"] == 1

    def test_deadline_exceeded(self):
        scheduler = self._scheduler(batch_window=0.0)
        request = parse_solve_request(
            _request(
                solvers=["simulate"],
                simulate={"horizon": 30_000.0},
                deadline=0.01,
            )
        )

        async def run():
            with pytest.raises(DeadlineExceededError, match="deadline"):
                await scheduler.submit(request.model, request.policy, deadline=request.deadline)
            # The computation was not cancelled: it finishes and lands in the
            # cache for the retry.
            await scheduler.close()
            retry = await asyncio.wait_for(
                scheduler_reopened.submit(request.model, request.policy), timeout=60.0
            )
            return retry

        # close() drains the in-flight batch, so a second scheduler sharing
        # the cache sees the completed solution instantly.
        scheduler_reopened = BatchScheduler(batch_window=0.0, cache=scheduler.cache)
        retry = asyncio.run(run())
        assert retry.cached
        assert scheduler.stats()["deadline_exceeded_total"] == 1

    def test_closed_scheduler_rejects_submissions(self):
        scheduler = self._scheduler()
        request = _model()

        async def run():
            await scheduler.close()
            with pytest.raises(ServiceClosedError):
                await scheduler.submit(request.model, request.policy)

        asyncio.run(run())

    def test_close_fails_unflushed_waiters(self):
        scheduler = self._scheduler(batch_window=60.0)
        request = _model()

        async def run():
            waiter = asyncio.ensure_future(scheduler.submit(request.model, request.policy))
            await asyncio.sleep(0)
            await scheduler.close()
            with pytest.raises(ServiceClosedError):
                await waiter

        asyncio.run(run())


class TestSolveManyAsync:
    def test_matches_the_synchronous_facade(self, small_model):
        cache = SolutionCache()

        async def run():
            return await solve_many_async([small_model, small_model], "spectral", cache=cache)

        outcomes = asyncio.run(run())
        reference = solve_many([small_model], "spectral", cache=False)
        assert outcomes[0] == outcomes[1]
        assert outcomes[0].metrics == reference[0].metrics
        assert cache.stats()["solves"] == 1

    def test_requires_a_running_loop(self, small_model):
        with pytest.raises(RuntimeError):
            # Not awaited from a loop: the coroutine refuses at creation time.
            coroutine = solve_many_async([small_model])
            try:
                coroutine.send(None)
            finally:
                coroutine.close()


class _InterruptedExecutor:
    """A ProcessPoolExecutor stand-in whose map() hits a KeyboardInterrupt."""

    instances: list["_InterruptedExecutor"] = []

    def __init__(self, max_workers: int) -> None:
        self.shutdown_calls: list[dict] = []
        type(self).instances.append(self)

    def submit(self, fn, *args):
        class _Probe:
            @staticmethod
            def result():
                return True

        return _Probe()

    def map(self, fn, tasks, chunksize=1):
        raise KeyboardInterrupt

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self.shutdown_calls.append({"wait": wait, "cancel_futures": cancel_futures})


class TestInterruptShutsPoolDownPromptly:
    def test_keyboard_interrupt_cancels_queued_futures(self, small_model, monkeypatch):
        """Ctrl-C during a parallel batch must not wait for in-flight items."""
        _InterruptedExecutor.instances.clear()
        monkeypatch.setattr(facade_module, "ProcessPoolExecutor", _InterruptedExecutor)
        models = [
            small_model.with_arrival_rate(0.5 + 0.1 * index) for index in range(4)
        ]
        with pytest.raises(KeyboardInterrupt):
            solve_many(models, "spectral", parallel=True, max_workers=2, cache=False)
        (executor,) = _InterruptedExecutor.instances
        assert executor.shutdown_calls == [{"wait": False, "cancel_futures": True}]
