"""Unit tests for the brute-force, iterative and EM fitting procedures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential, HyperExponential
from repro.exceptions import FittingError
from repro.fitting import (
    fit_gauss_seidel,
    fit_hyperexponential_brute_force,
    fit_hyperexponential_em,
    fit_newton,
)


@pytest.fixture(scope="module")
def paper_like_distribution() -> HyperExponential:
    return HyperExponential(weights=[0.7246, 0.2754], rates=[0.1663, 0.0091])


class TestBruteForce:
    def test_two_phase_fit_recovers_mean_and_scv(self, paper_like_distribution):
        moments = paper_like_distribution.moments(3)
        result = fit_hyperexponential_brute_force(moments, num_phases=2, grid_points=16)
        assert result.distribution.mean == pytest.approx(paper_like_distribution.mean, rel=0.02)
        assert result.distribution.scv == pytest.approx(paper_like_distribution.scv, rel=0.1)

    def test_three_phase_fit_on_two_phase_data_flags_near_equal_rates(
        self, paper_like_distribution
    ):
        """The paper observed that the 3-phase search returned two almost equal
        rates, signalling that two phases suffice."""
        moments = paper_like_distribution.moments(5)
        result = fit_hyperexponential_brute_force(
            moments, num_phases=3, grid_points=24, refinement_rounds=3
        )
        assert result.rates_nearly_equal

    def test_objective_reported_and_small_for_exact_data(self, paper_like_distribution):
        moments = paper_like_distribution.moments(3)
        result = fit_hyperexponential_brute_force(moments, num_phases=2, grid_points=20)
        assert result.objective >= 0.0
        assert result.evaluations > 0

    def test_insufficient_moments_rejected(self):
        with pytest.raises(FittingError):
            fit_hyperexponential_brute_force([1.0, 2.0], num_phases=2)

    def test_negative_moments_rejected(self):
        with pytest.raises(FittingError):
            fit_hyperexponential_brute_force([1.0, -2.0, 3.0], num_phases=2)

    def test_invalid_rate_bounds_rejected(self):
        with pytest.raises(FittingError):
            fit_hyperexponential_brute_force(
                [1.0, 3.0, 15.0], num_phases=2, rate_bounds=(2.0, 1.0)
            )

    def test_low_variability_data_cannot_be_matched(self):
        # Deterministic-like moments (scv ~ 0.01): every hyperexponential has
        # scv >= 1, so the best achievable fit keeps scv >= 1 and leaves a
        # visible residual on the higher moments.
        moments = np.array([2.0, 4.04, 8.24])
        result = fit_hyperexponential_brute_force(moments, num_phases=2, grid_points=10)
        assert result.distribution.scv >= 1.0 - 1e-9
        assert result.objective > 0.01


class TestNewton:
    def test_two_phase_convergence_from_good_start(self, paper_like_distribution):
        moments = paper_like_distribution.moments(3)
        result = fit_newton(
            moments,
            num_phases=2,
            initial=([0.7, 0.3], [0.2, 0.01]),
        )
        assert result.converged
        assert result.distribution.mean == pytest.approx(paper_like_distribution.mean, rel=1e-6)
        assert result.residual_norm < 1e-8

    def test_newton_reports_iterations(self, paper_like_distribution):
        moments = paper_like_distribution.moments(3)
        result = fit_newton(moments, num_phases=2, initial=([0.7, 0.3], [0.2, 0.01]))
        assert result.iterations >= 1

    def test_newton_failure_raises_fitting_error(self):
        """Newton fails on moments no hyperexponential can attain (the paper
        reports such convergence failures for higher-phase fits)."""
        # Erlang-2 moments have scv = 0.5 < 1, which is outside the
        # hyperexponential family, so the iteration cannot converge.
        from repro.distributions import Erlang

        moments = Erlang(shape=2, rate=1.0).moments(5)
        with pytest.raises(FittingError):
            fit_newton(moments, num_phases=3, max_iterations=60)

    def test_insufficient_moments_rejected(self):
        with pytest.raises(FittingError):
            fit_newton([1.0, 2.0], num_phases=2)

    def test_bad_initial_shape_rejected(self, paper_like_distribution):
        with pytest.raises(FittingError):
            fit_newton(
                paper_like_distribution.moments(3),
                num_phases=2,
                initial=([1.0], [0.5, 0.2]),
            )


class TestGaussSeidel:
    def test_two_phase_convergence(self, paper_like_distribution):
        """The paper notes Gauss-Seidel converges when re-run with n = 2."""
        moments = paper_like_distribution.moments(3)
        result = fit_gauss_seidel(moments, num_phases=2)
        assert result.converged
        assert result.distribution.mean == pytest.approx(paper_like_distribution.mean, rel=1e-4)
        assert result.distribution.scv == pytest.approx(paper_like_distribution.scv, rel=1e-3)

    def test_insufficient_moments_rejected(self):
        with pytest.raises(FittingError):
            fit_gauss_seidel([1.0], num_phases=2)

    def test_exponential_data_fails(self):
        with pytest.raises(FittingError):
            fit_gauss_seidel(Exponential(rate=2.0).moments(3), num_phases=2, max_iterations=100)


class TestEM:
    def test_recovers_mixture_structure(self, rng, paper_like_distribution):
        draws = paper_like_distribution.sample(rng, size=60_000)
        result = fit_hyperexponential_em(draws, num_phases=2)
        assert result.converged
        fitted = result.distribution
        assert fitted.mean == pytest.approx(paper_like_distribution.mean, rel=0.05)
        # Rates sorted in decreasing order: fast phase near 0.1663, slow near 0.0091.
        assert fitted.rates[0] == pytest.approx(0.1663, rel=0.2)
        assert fitted.rates[1] == pytest.approx(0.0091, rel=0.2)

    def test_log_likelihood_improves_over_exponential(self, rng, paper_like_distribution):
        draws = paper_like_distribution.sample(rng, size=20_000)
        result = fit_hyperexponential_em(draws, num_phases=2)
        exponential_loglik = float(np.sum(np.log(Exponential.from_mean(np.mean(draws)).pdf(draws))))
        assert result.log_likelihood > exponential_loglik

    def test_single_phase_em_matches_sample_mean(self, rng):
        draws = Exponential(rate=0.5).sample(rng, size=20_000)
        result = fit_hyperexponential_em(draws, num_phases=1)
        assert result.distribution.mean == pytest.approx(float(np.mean(draws)), rel=1e-6)

    def test_empty_observations_rejected(self):
        with pytest.raises(FittingError):
            fit_hyperexponential_em([], num_phases=2)

    def test_non_positive_observations_rejected(self):
        with pytest.raises(FittingError):
            fit_hyperexponential_em([1.0, 0.0, 2.0], num_phases=2)

    def test_deterministic_given_seeded_rng(self, paper_like_distribution):
        draws = paper_like_distribution.sample(np.random.default_rng(7), size=5_000)
        first = fit_hyperexponential_em(draws, num_phases=2, rng=np.random.default_rng(3))
        second = fit_hyperexponential_em(draws, num_phases=2, rng=np.random.default_rng(3))
        np.testing.assert_allclose(first.distribution.rates, second.distribution.rates)
