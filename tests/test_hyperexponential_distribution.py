"""Unit tests for :class:`repro.distributions.HyperExponential`."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    SUN_INOPERATIVE_FIT,
    SUN_OPERATIVE_FIT,
    Exponential,
    HyperExponential,
)
from repro.exceptions import ParameterError


class TestConstruction:
    def test_weights_and_rates_stored(self):
        dist = HyperExponential(weights=[0.3, 0.7], rates=[1.0, 0.1])
        np.testing.assert_allclose(dist.weights, [0.3, 0.7])
        np.testing.assert_allclose(dist.rates, [1.0, 0.1])
        assert dist.num_phases == 2

    def test_two_phase_constructor(self):
        dist = HyperExponential.two_phase(alpha1=0.25, rate1=2.0, rate2=0.5)
        np.testing.assert_allclose(dist.weights, [0.25, 0.75])

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ParameterError):
            HyperExponential(weights=[0.5, 0.4], rates=[1.0, 2.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ParameterError):
            HyperExponential(weights=[-0.1, 1.1], rates=[1.0, 2.0])

    def test_non_positive_rate_rejected(self):
        with pytest.raises(ParameterError):
            HyperExponential(weights=[0.5, 0.5], rates=[1.0, 0.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            HyperExponential(weights=[1.0], rates=[1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            HyperExponential(weights=[], rates=[])

    def test_single_phase_reduces_to_exponential(self):
        dist = HyperExponential(weights=[1.0], rates=[0.5])
        reference = Exponential(rate=0.5)
        assert dist.mean == pytest.approx(reference.mean)
        assert dist.scv == pytest.approx(1.0)

    def test_equality(self):
        a = HyperExponential(weights=[0.5, 0.5], rates=[1.0, 2.0])
        b = HyperExponential(weights=[0.5, 0.5], rates=[1.0, 2.0])
        c = HyperExponential(weights=[0.4, 0.6], rates=[1.0, 2.0])
        assert a == b
        assert a != c

    def test_phase_means(self):
        dist = HyperExponential(weights=[0.5, 0.5], rates=[2.0, 0.25])
        np.testing.assert_allclose(dist.phase_means, [0.5, 4.0])


class TestPaperFit:
    """Checks against the numbers quoted in Section 2 of the paper."""

    def test_operative_fit_mean(self):
        # 1/xi = alpha1/xi1 + alpha2/xi2 ~ 34.62 (Figure 6 caption: xi = 0.0289).
        assert SUN_OPERATIVE_FIT.mean == pytest.approx(34.62, abs=0.05)
        assert SUN_OPERATIVE_FIT.aggregate_rate == pytest.approx(0.0289, abs=0.0002)

    def test_operative_fit_phase_means(self):
        # ~72% of periods have mean ~6, ~28% have mean ~110.
        means = SUN_OPERATIVE_FIT.phase_means
        assert means[0] == pytest.approx(6.0, abs=0.05)
        assert means[1] == pytest.approx(110.0, abs=1.0)

    def test_operative_fit_scv_exceeds_one(self):
        assert SUN_OPERATIVE_FIT.scv > 1.0

    def test_inoperative_fit_mean(self):
        # ~93% with mean 0.04 and ~7% with mean 0.61 -> overall ~0.08.
        assert SUN_INOPERATIVE_FIT.mean == pytest.approx(0.08, abs=0.005)

    def test_inoperative_fit_phase_means(self):
        means = SUN_INOPERATIVE_FIT.phase_means
        assert means[0] == pytest.approx(0.04, abs=0.001)
        assert means[1] == pytest.approx(0.61, abs=0.01)


class TestMoments:
    def test_moment_formula(self):
        dist = HyperExponential(weights=[0.4, 0.6], rates=[2.0, 0.5])
        for k in range(1, 6):
            expected = math.factorial(k) * (0.4 / 2.0**k + 0.6 / 0.5**k)
            assert dist.moment(k) == pytest.approx(expected)

    def test_scv_always_greater_than_one_for_distinct_rates(self):
        dist = HyperExponential(weights=[0.5, 0.5], rates=[1.0, 0.01])
        assert dist.scv > 1.0

    def test_from_mean_and_scv_matches_targets(self):
        dist = HyperExponential.from_mean_and_scv(34.62, 4.6)
        assert dist.mean == pytest.approx(34.62, rel=1e-9)
        assert dist.scv == pytest.approx(4.6, rel=1e-9)

    def test_from_mean_and_scv_one_is_exponential_like(self):
        dist = HyperExponential.from_mean_and_scv(5.0, 1.0)
        assert dist.mean == pytest.approx(5.0)
        assert dist.scv == pytest.approx(1.0)

    def test_from_mean_and_scv_below_one_rejected(self):
        with pytest.raises(ParameterError):
            HyperExponential.from_mean_and_scv(5.0, 0.5)

    def test_aggregate_rate_is_reciprocal_mean(self):
        dist = HyperExponential(weights=[0.2, 0.8], rates=[3.0, 0.3])
        assert dist.aggregate_rate == pytest.approx(1.0 / dist.mean)


class TestDensities:
    def test_pdf_is_mixture_of_exponentials(self):
        dist = HyperExponential(weights=[0.3, 0.7], rates=[1.0, 0.2])
        x = 2.0
        expected = 0.3 * 1.0 * math.exp(-1.0 * x) + 0.7 * 0.2 * math.exp(-0.2 * x)
        assert dist.pdf(x) == pytest.approx(expected)

    def test_cdf_is_mixture(self):
        dist = HyperExponential(weights=[0.3, 0.7], rates=[1.0, 0.2])
        x = 3.0
        expected = 0.3 * (1 - math.exp(-x)) + 0.7 * (1 - math.exp(-0.2 * x))
        assert dist.cdf(x) == pytest.approx(expected)

    def test_negative_arguments(self):
        dist = SUN_OPERATIVE_FIT
        assert dist.pdf(-1.0) == 0.0
        assert dist.cdf(-1.0) == 0.0

    def test_pdf_integrates_to_one(self):
        dist = HyperExponential(weights=[0.6, 0.4], rates=[1.0, 0.05])
        xs = np.linspace(0.0, 400.0, 400_001)
        assert np.trapezoid(dist.pdf(xs), xs) == pytest.approx(1.0, abs=1e-4)

    def test_vectorised_cdf(self):
        dist = SUN_OPERATIVE_FIT
        xs = np.array([0.0, 1.0, 10.0, 100.0])
        np.testing.assert_allclose(dist.cdf(xs), [dist.cdf(float(x)) for x in xs])


class TestSamplingAndTransforms:
    def test_sample_mean_converges(self, rng):
        draws = SUN_OPERATIVE_FIT.sample(rng, size=300_000)
        assert np.mean(draws) == pytest.approx(SUN_OPERATIVE_FIT.mean, rel=0.02)

    def test_sample_scv_converges(self, rng):
        dist = HyperExponential(weights=[0.7246, 0.2754], rates=[0.1663, 0.0091])
        draws = dist.sample(rng, size=300_000)
        scv = np.var(draws) / np.mean(draws) ** 2
        assert scv == pytest.approx(dist.scv, rel=0.05)

    def test_scalar_sample(self, rng):
        value = SUN_INOPERATIVE_FIT.sample(rng)
        assert isinstance(value, float)
        assert value >= 0.0

    def test_laplace_transform_at_zero(self):
        assert SUN_OPERATIVE_FIT.laplace_transform(0.0) == pytest.approx(1.0)

    def test_laplace_transform_is_mixture(self):
        dist = HyperExponential(weights=[0.3, 0.7], rates=[1.0, 0.2])
        s = 0.4
        expected = 0.3 * 1.0 / (1.0 + s) + 0.7 * 0.2 / (0.2 + s)
        assert dist.laplace_transform(s) == pytest.approx(expected)

    def test_phase_type_view_matches_moments(self):
        dist = HyperExponential(weights=[0.25, 0.75], rates=[2.0, 0.2])
        ph = dist.to_phase_type()
        for k in range(1, 4):
            assert ph.moment(k) == pytest.approx(dist.moment(k), rel=1e-9)

    def test_phase_sampling_probabilities_are_weights(self):
        dist = HyperExponential(weights=[0.25, 0.75], rates=[2.0, 0.2])
        np.testing.assert_allclose(dist.phase_sampling_probabilities(), [0.25, 0.75])


@settings(max_examples=50, deadline=None)
@given(
    alpha=st.floats(min_value=0.01, max_value=0.99),
    rate1=st.floats(min_value=1e-2, max_value=1e2),
    ratio=st.floats(min_value=1.1, max_value=100.0),
)
def test_property_scv_at_least_one(alpha, rate1, ratio):
    """Every 2-phase hyperexponential has squared coefficient of variation >= 1."""
    dist = HyperExponential.two_phase(alpha1=alpha, rate1=rate1, rate2=rate1 / ratio)
    assert dist.scv >= 1.0 - 1e-9


@settings(max_examples=50, deadline=None)
@given(
    mean=st.floats(min_value=0.1, max_value=100.0),
    scv=st.floats(min_value=1.0, max_value=50.0),
)
def test_property_mean_scv_roundtrip(mean, scv):
    """from_mean_and_scv reproduces the requested first two moments exactly."""
    dist = HyperExponential.from_mean_and_scv(mean, scv)
    assert dist.mean == pytest.approx(mean, rel=1e-9)
    assert dist.scv == pytest.approx(scv, rel=1e-6)
