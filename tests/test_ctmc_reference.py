"""Unit tests for the truncated-CTMC reference solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Exponential, HyperExponential
from repro.exceptions import SolverError, UnstableQueueError
from repro.queueing import (
    UnreliableQueueModel,
    build_truncated_generator,
    default_truncation_level,
    mm1_queue_length_pmf,
    solve_truncated_ctmc,
)


class TestGeneratorConstruction:
    def test_generator_rows_sum_to_zero(self, small_model):
        generator = build_truncated_generator(small_model, max_queue_length=20)
        row_sums = np.asarray(generator.sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, 0.0, atol=1e-10)

    def test_generator_shape(self, small_model):
        generator = build_truncated_generator(small_model, max_queue_length=20)
        expected = 21 * small_model.num_modes
        assert generator.shape == (expected, expected)

    def test_off_diagonal_nonnegative(self, small_model):
        generator = build_truncated_generator(small_model, max_queue_length=10).toarray()
        off_diagonal = generator - np.diag(np.diag(generator))
        assert np.all(off_diagonal >= 0.0)

    def test_invalid_truncation_rejected(self, small_model):
        with pytest.raises(Exception):
            build_truncated_generator(small_model, max_queue_length=0)


class TestSolution:
    def test_distribution_normalised(self, small_model):
        solution = solve_truncated_ctmc(small_model)
        total = sum(
            solution.queue_length_pmf(level)
            for level in range(solution.truncation_level + 1)
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_truncation_mass_is_small(self, small_model):
        solution = solve_truncated_ctmc(small_model)
        assert solution.truncation_mass() < 1e-8

    def test_mm1_special_case(self):
        model = UnreliableQueueModel(
            num_servers=1,
            arrival_rate=0.5,
            service_rate=1.0,
            operative=Exponential(rate=1e-9),
            inoperative=Exponential(rate=1e3),
        )
        solution = solve_truncated_ctmc(model, max_queue_length=200)
        for level in range(8):
            assert solution.queue_length_pmf(level) == pytest.approx(
                mm1_queue_length_pmf(0.5, 1.0, level), abs=1e-6
            )

    def test_throughput_flow_balance(self, medium_model):
        solution = solve_truncated_ctmc(medium_model)
        busy = solution.mean_jobs_in_service
        assert busy * medium_model.service_rate == pytest.approx(
            medium_model.arrival_rate, rel=1e-6
        )

    def test_mode_marginals_match_environment(self, small_model):
        solution = solve_truncated_ctmc(small_model)
        np.testing.assert_allclose(
            solution.mode_marginals(), small_model.environment.steady_state, atol=1e-8
        )

    def test_unstable_model_rejected(self, small_model):
        with pytest.raises(UnstableQueueError):
            solve_truncated_ctmc(small_model.with_arrival_rate(100.0))

    def test_truncation_below_servers_rejected(self, small_model):
        with pytest.raises(SolverError):
            solve_truncated_ctmc(small_model, max_queue_length=1)

    def test_levels_beyond_truncation_have_zero_probability(self, small_model):
        solution = solve_truncated_ctmc(small_model, max_queue_length=30)
        assert solution.queue_length_pmf(31) == 0.0
        assert solution.queue_length_pmf(-1) == 0.0

    def test_default_truncation_level_scales_with_load(self):
        lightly_loaded = UnreliableQueueModel(
            num_servers=4,
            arrival_rate=1.0,
            service_rate=1.0,
            operative=HyperExponential(weights=[0.7, 0.3], rates=[0.2, 0.02]),
            inoperative=Exponential(rate=5.0),
        )
        heavily_loaded = lightly_loaded.with_arrival_rate(3.7)
        assert default_truncation_level(heavily_loaded) > default_truncation_level(
            lightly_loaded
        )

    def test_level_vector_shape(self, small_model):
        solution = solve_truncated_ctmc(small_model, max_queue_length=25)
        assert solution.level_vector(3).size == small_model.num_modes
        assert solution.level_vector(1000).sum() == 0.0
