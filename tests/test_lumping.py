"""Lumped-vs-product equivalence of the scenario chain.

The scenario solvers work in the lumped, count-based mode space; the
per-server-labelled product chain is the ground truth the lumping must
reproduce.  Exchangeability makes the product chain strongly lumpable, so
after aggregating through the lumping map the two solves must agree to
solver precision — not statistically, *numerically*.  These tests pin that
equivalence at ``1e-10`` for every named preset (steady state and transient
trajectories alike) and, via hypothesis, over a family of random stable
scenarios whose product spaces are still small enough to build.

Both representations are solved at the *same* truncation level so the
truncation bias cancels exactly and the comparison isolates the lumping.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential, HyperExponential
from repro.scenarios import (
    ScenarioModel,
    ServerGroup,
    preset_names,
    scenario_preset,
    solve_scenario_ctmc,
)
from repro.scenarios.ctmc import product_environment
from repro.transient import solve_transient

#: The pinned agreement tolerance: lumping is exact, so the two solves may
#: differ only by linear-solver noise.
TOLERANCE = 1e-10

#: Transient comparison grid (three points: early ramp, mid, near-stationary).
TRANSIENT_TIMES = (1.0, 5.0, 20.0)


def _solve_both(scenario: ScenarioModel, level: int):
    lumped = solve_scenario_ctmc(scenario, level, representation="lumped")
    product = solve_scenario_ctmc(scenario, level, representation="product")
    return lumped, product


class TestPresetSteadyStateEquivalence:
    @pytest.mark.parametrize("name", preset_names())
    def test_lumped_matches_product(self, name: str):
        scenario = scenario_preset(name)
        level = scenario.num_servers + 25
        lumped, product = _solve_both(scenario, level)

        assert lumped.representation == "lumped"
        assert product.representation == "product"
        assert product.num_solved_states > lumped.num_solved_states

        assert np.max(
            np.abs(lumped.probabilities_by_level - product.probabilities_by_level)
        ) <= TOLERANCE
        assert abs(lumped.mean_queue_length - product.mean_queue_length) <= TOLERANCE
        assert abs(lumped.utilisation - product.utilisation) <= TOLERANCE
        assert np.max(np.abs(lumped.mode_marginals() - product.mode_marginals())) <= TOLERANCE

    @pytest.mark.parametrize("name", preset_names())
    def test_product_mode_count_formula(self, name: str):
        scenario = scenario_preset(name)
        environment = scenario.environment
        expected_product = 1
        expected_lumped = 1
        for group in scenario.groups:
            phases = (
                _num_phases(group.operative) + _num_phases(group.inoperative)
            )
            expected_product *= phases**group.size
            expected_lumped *= math.comb(group.size + phases - 1, phases - 1)
        assert environment.num_product_modes == expected_product
        assert environment.num_modes == expected_lumped
        assert expected_product >= expected_lumped


def _num_phases(distribution) -> int:
    if isinstance(distribution, HyperExponential):
        return int(distribution.rates.size)
    return 1


class TestPresetTransientEquivalence:
    @pytest.mark.parametrize("name", preset_names())
    def test_trajectories_match(self, name: str):
        scenario = scenario_preset(name)
        level = scenario.num_servers + 20
        lumped = solve_transient(
            scenario, TRANSIENT_TIMES, max_queue_length=level, representation="lumped"
        )
        product = solve_transient(
            scenario, TRANSIENT_TIMES, max_queue_length=level, representation="product"
        )

        assert lumped.representation == "lumped"
        assert product.representation == "product"
        assert product.num_solved_states > lumped.num_solved_states

        for t in TRANSIENT_TIMES:
            assert np.max(
                np.abs(lumped.distribution_at(t) - product.distribution_at(t))
            ) <= TOLERANCE
        assert np.max(np.abs(lumped.mean_queue_length - product.mean_queue_length)) <= TOLERANCE
        assert np.max(np.abs(lumped.availability - product.availability)) <= TOLERANCE


@st.composite
def small_stable_scenarios(draw) -> ScenarioModel:
    """A random stable scenario whose product space is still buildable.

    Sizes are kept small (the product space grows as ``(n + m)^N``) and one
    group may get a two-phase operative period so the lumping is exercised
    beyond the exponential special case.
    """
    num_groups = draw(st.integers(min_value=1, max_value=2))
    groups = []
    for index in range(num_groups):
        if draw(st.booleans()):
            operative = HyperExponential(
                weights=[0.4, 0.6],
                rates=[
                    draw(st.floats(min_value=0.05, max_value=0.2)),
                    draw(st.floats(min_value=0.3, max_value=0.8)),
                ],
            )
        else:
            operative = Exponential(rate=draw(st.floats(min_value=0.05, max_value=0.3)))
        groups.append(
            ServerGroup(
                name=f"group{index}",
                size=draw(st.integers(min_value=1, max_value=3)),
                service_rate=draw(st.floats(min_value=0.5, max_value=2.0, allow_nan=False)),
                operative=operative,
                inoperative=Exponential(rate=draw(st.floats(min_value=1.0, max_value=5.0))),
            )
        )
    num_servers = sum(group.size for group in groups)
    repair_capacity = draw(st.integers(min_value=1, max_value=num_servers))
    scenario = ScenarioModel(
        groups=tuple(groups),
        arrival_rate=1.0,  # placeholder; replaced via the utilisation draw
        repair_capacity=repair_capacity,
    )
    utilisation = draw(st.floats(min_value=0.3, max_value=0.7))
    return scenario.with_arrival_rate(utilisation * scenario.mean_service_capacity)


@given(scenario=small_stable_scenarios())
@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_scenarios_lump_exactly(scenario: ScenarioModel):
    assert scenario.is_stable
    level = scenario.num_servers + 15
    lumped, product = _solve_both(scenario, level)

    assert np.max(np.abs(lumped.mode_marginals() - product.mode_marginals())) <= TOLERANCE, (
        f"steady-state marginals diverge for {scenario!r}"
    )
    assert abs(lumped.mean_queue_length - product.mean_queue_length) <= TOLERANCE

    counts = scenario.environment.operative_counts
    availability_lumped = float(lumped.mode_marginals() @ counts) / scenario.num_servers
    availability_product = float(product.mode_marginals() @ counts) / scenario.num_servers
    assert abs(availability_lumped - availability_product) <= TOLERANCE

    lumped_t = solve_transient(
        scenario, TRANSIENT_TIMES, max_queue_length=level, representation="lumped"
    )
    product_t = solve_transient(
        scenario, TRANSIENT_TIMES, max_queue_length=level, representation="product"
    )
    for t in TRANSIENT_TIMES:
        assert np.max(
            np.abs(lumped_t.distribution_at(t) - product_t.distribution_at(t))
        ) <= TOLERANCE, f"transient law diverges at t={t} for {scenario!r}"


def test_product_environment_steady_state_lumps_to_scenario_steady_state():
    scenario = scenario_preset("two-speed-cluster")
    environment = product_environment(scenario)
    lumped_from_product = environment.lump_distribution(
        environment.steady_state[np.newaxis, :]
    )[0]
    assert np.max(
        np.abs(lumped_from_product - scenario.environment.steady_state)
    ) <= TOLERANCE
