"""Unit tests for operational-mode enumeration (paper Eq. 12 and Section 3.1 example)."""

from __future__ import annotations

from math import comb

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.markov import (
    compositions,
    enumerate_modes,
    mode_index_map,
    num_modes,
    operative_counts,
)


class TestNumModes:
    def test_paper_example_two_servers(self):
        """N=2, n=2, m=1 has 6 operational modes (Section 3.1)."""
        assert num_modes(2, 2, 1) == 6

    def test_paper_figure5_formula(self):
        """With n=2, m=1 the paper states s = (N+2)(N+1)/2."""
        for n_servers in range(1, 20):
            assert num_modes(n_servers, 2, 1) == (n_servers + 2) * (n_servers + 1) // 2

    def test_binomial_formula(self):
        assert num_modes(5, 3, 2) == comb(5 + 3 + 2 - 1, 3 + 2 - 1)

    def test_zero_servers(self):
        assert num_modes(0, 2, 1) == 1

    def test_single_phase_single_server(self):
        assert num_modes(1, 1, 1) == 2

    def test_invalid_phase_count_rejected(self):
        with pytest.raises(ParameterError):
            num_modes(2, 0, 1)

    def test_negative_servers_rejected(self):
        with pytest.raises(ParameterError):
            num_modes(-1, 2, 1)


class TestCompositions:
    def test_total_two_parts(self):
        assert compositions(2, 2) == [(2, 0), (1, 1), (0, 2)]

    def test_single_part(self):
        assert compositions(5, 1) == [(5,)]

    def test_zero_total(self):
        assert compositions(0, 3) == [(0, 0, 0)]

    def test_count_matches_binomial(self):
        assert len(compositions(4, 3)) == comb(4 + 2, 2)

    def test_all_sum_to_total(self):
        for parts in compositions(6, 4):
            assert sum(parts) == 6

    def test_no_duplicates(self):
        result = compositions(5, 3)
        assert len(result) == len(set(result))


class TestEnumerateModes:
    def test_paper_worked_example_order(self):
        """The six modes of the N=2, n=2, m=1 example in the paper's order."""
        modes = enumerate_modes(2, 2, 1)
        assert modes == [
            ((0, 0), (2,)),  # i=0: 2 inoperative
            ((1, 0), (1,)),  # i=1: 1 operative phase 1, 1 inoperative
            ((0, 1), (1,)),  # i=2: 1 operative phase 2, 1 inoperative
            ((2, 0), (0,)),  # i=3: 2 operative phase 1
            ((1, 1), (0,)),  # i=4: one in each operative phase
            ((0, 2), (0,)),  # i=5: 2 operative phase 2
        ]

    def test_mode_count_matches_formula(self):
        modes = enumerate_modes(4, 2, 2)
        assert len(modes) == num_modes(4, 2, 2)

    def test_all_modes_conserve_servers(self):
        for operative, inoperative in enumerate_modes(5, 3, 2):
            assert sum(operative) + sum(inoperative) == 5

    def test_modes_are_unique(self):
        modes = enumerate_modes(4, 2, 2)
        assert len(modes) == len(set(modes))

    def test_index_map_consistent(self):
        modes = enumerate_modes(3, 2, 1)
        index_map = mode_index_map(3, 2, 1)
        for index, mode in enumerate(modes):
            assert index_map[mode] == index

    def test_operative_counts_in_mode_order(self):
        counts = operative_counts(2, 2, 1)
        assert counts == [0, 1, 1, 2, 2, 2]

    def test_returned_list_is_a_copy(self):
        first = enumerate_modes(2, 2, 1)
        first.append("garbage")  # type: ignore[arg-type]
        second = enumerate_modes(2, 2, 1)
        assert len(second) == 6


@settings(max_examples=40, deadline=None)
@given(
    num_servers=st.integers(min_value=0, max_value=12),
    operative_phases=st.integers(min_value=1, max_value=3),
    inoperative_phases=st.integers(min_value=1, max_value=3),
)
def test_property_enumeration_matches_count(num_servers, operative_phases, inoperative_phases):
    modes = enumerate_modes(num_servers, operative_phases, inoperative_phases)
    assert len(modes) == num_modes(num_servers, operative_phases, inoperative_phases)
    assert len(set(modes)) == len(modes)
    for operative, inoperative in modes:
        assert sum(operative) + sum(inoperative) == num_servers
        assert len(operative) == operative_phases
        assert len(inoperative) == inoperative_phases
