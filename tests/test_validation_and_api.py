"""Tests of the shared validation helpers, the exception hierarchy and the public API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import exceptions
from repro._validation import (
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_positive_vector,
    check_probability,
    check_probability_vector,
    check_same_length,
)
from repro.exceptions import ParameterError


class TestScalarValidation:
    def test_check_positive_accepts(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf"), "abc"])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ParameterError):
            check_positive(value, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ParameterError):
            check_non_negative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ParameterError):
            check_probability(1.2, "p")

    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        assert check_positive_int(np.int64(4), "n") == 4
        for bad in (0, -2, 2.5, True):
            with pytest.raises(ParameterError):
                check_positive_int(bad, "n")

    def test_check_non_negative_int(self):
        assert check_non_negative_int(0, "n") == 0
        with pytest.raises(ParameterError):
            check_non_negative_int(-1, "n")


class TestVectorValidation:
    def test_positive_vector(self):
        np.testing.assert_allclose(check_positive_vector([1.0, 2.0], "v"), [1.0, 2.0])
        for bad in ([], [1.0, 0.0], [1.0, -1.0], [[1.0]], [np.nan]):
            with pytest.raises(ParameterError):
                check_positive_vector(bad, "v")

    def test_probability_vector(self):
        np.testing.assert_allclose(
            check_probability_vector([0.25, 0.75], "p"), [0.25, 0.75]
        )
        for bad in ([0.5, 0.4], [-0.1, 1.1], []):
            with pytest.raises(ParameterError):
                check_probability_vector(bad, "p")

    def test_same_length(self):
        check_same_length(np.zeros(3), np.ones(3), "a and b")
        with pytest.raises(ParameterError):
            check_same_length(np.zeros(3), np.ones(2), "a and b")


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ParameterError",
            "UnstableQueueError",
            "SolverError",
            "FittingError",
            "DataError",
            "SimulationError",
        ):
            assert issubclass(getattr(exceptions, name), exceptions.ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(exceptions.ParameterError, ValueError)

    def test_unstable_error_message(self):
        error = exceptions.UnstableQueueError(8.0, 7.99)
        assert "8" in str(error)
        assert error.offered_load == 8.0
        assert error.effective_servers == 7.99


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_subpackage_exports_resolvable(self):
        import repro.data
        import repro.distributions
        import repro.experiments
        import repro.extensions
        import repro.fitting
        import repro.markov
        import repro.optimization
        import repro.queueing
        import repro.simulation
        import repro.spectral
        import repro.stats

        for module in (
            repro.distributions,
            repro.stats,
            repro.fitting,
            repro.data,
            repro.markov,
            repro.spectral,
            repro.queueing,
            repro.simulation,
            repro.optimization,
            repro.experiments,
            repro.extensions,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__} missing {name}"

    def test_quickstart_flow(self):
        """The README quickstart must keep working."""
        from repro import UnreliableQueueModel
        from repro.distributions import SUN_OPERATIVE_FIT, Exponential

        model = UnreliableQueueModel(
            num_servers=10,
            arrival_rate=7.0,
            service_rate=1.0,
            operative=SUN_OPERATIVE_FIT,
            inoperative=Exponential(rate=25.0),
        )
        solution = model.solve_spectral()
        assert solution.mean_response_time > 1.0
        assert model.solve_geometric().decay_rate < 1.0
