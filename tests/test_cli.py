"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data import generate_small_trace, write_trace_csv


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_arguments(self):
        arguments = build_parser().parse_args(
            ["solve", "--servers", "10", "--arrival-rate", "7"]
        )
        assert arguments.command == "solve"
        assert arguments.servers == 10
        assert arguments.arrival_rate == 7.0
        assert arguments.method == "both"

    def test_fit_arguments(self):
        arguments = build_parser().parse_args(["fit", "trace.csv", "--bins", "30"])
        assert arguments.command == "fit"
        assert arguments.trace == "trace.csv"
        assert arguments.bins == 30

    def test_reproduce_arguments(self):
        arguments = build_parser().parse_args(["reproduce", "--quick"])
        assert arguments.command == "reproduce"
        assert arguments.quick
        assert not arguments.parallel

    def test_sweep_arguments(self):
        arguments = build_parser().parse_args(
            ["sweep", "--servers", "8,10", "--arrival-rates", "6.5,7.0", "--parallel"]
        )
        assert arguments.command == "sweep"
        assert arguments.servers == "8,10"
        assert arguments.arrival_rates == "6.5,7.0"
        assert arguments.parallel
        assert arguments.solvers == "spectral,geometric"


class TestSolveCommand:
    def test_solve_prints_metrics(self, capsys):
        exit_code = main(
            [
                "solve",
                "--servers", "5",
                "--arrival-rate", "3.5",
                "--operative-mean", "34.62",
                "--operative-scv", "4.6",
                "--repair-mean", "0.04",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Exact spectral-expansion solution" in output
        assert "Geometric approximation" in output
        assert "mean response time W" in output

    def test_solve_spectral_only(self, capsys):
        exit_code = main(
            ["solve", "--servers", "3", "--arrival-rate", "1.5", "--method", "spectral"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Exact spectral-expansion solution" in output
        assert "Geometric approximation" not in output

    def test_solve_unstable_returns_nonzero(self, capsys):
        exit_code = main(["solve", "--servers", "2", "--arrival-rate", "50"])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "unstable" in output

    def test_solve_exponential_periods(self, capsys):
        exit_code = main(
            [
                "solve",
                "--servers", "3",
                "--arrival-rate", "1.0",
                "--operative-scv", "1.0",
            ]
        )
        assert exit_code == 0
        assert "mean jobs L" in capsys.readouterr().out

    def test_solve_invalid_scv_reports_error(self, capsys):
        exit_code = main(
            ["solve", "--servers", "3", "--arrival-rate", "1.0", "--operative-scv", "0.5"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error" in captured.err


class TestFitCommand:
    def test_fit_on_synthetic_trace(self, tmp_path, capsys):
        trace = generate_small_trace(num_events=5000, seed=1)
        path = write_trace_csv(trace, tmp_path / "trace.csv")
        exit_code = main(["fit", str(path)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Operative periods" in output
        assert "Inoperative periods" in output
        assert "H2 weights" in output

    def test_fit_missing_file_reports_error(self, tmp_path, capsys):
        exit_code = main(["fit", str(tmp_path / "missing.csv")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error" in captured.err


class TestReproduceCommand:
    def test_quick_reproduce_runs(self, capsys):
        exit_code = main(["reproduce", "--quick", "--skip-section2"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for name in ("figure5", "figure6", "figure7", "figure8", "figure9"):
            assert name in output


class TestSweepCommand:
    def test_sweep_prints_table(self, capsys):
        exit_code = main(
            ["sweep", "--servers", "9,10", "--arrival-rates", "7.0", "--solvers", "geometric"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Sweep over" in output
        assert "mean jobs L" in output

    def test_sweep_writes_csv_and_json(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        json_path = tmp_path / "sweep.json"
        exit_code = main(
            [
                "sweep",
                "--servers", "10",
                "--arrival-rates", "7.0",
                "--solvers", "geometric",
                "--csv", str(csv_path),
                "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        assert csv_path.exists() and json_path.exists()
        assert "mean_queue_length" in csv_path.read_text()

    def test_sweep_unstable_point_reported_not_fatal(self, capsys):
        exit_code = main(
            ["sweep", "--servers", "2", "--arrival-rates", "50", "--solvers", "geometric"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "no" in output  # the stable column

    def test_sweep_tolerates_spaces_after_commas(self, capsys):
        exit_code = main(
            ["sweep", "--servers", "9, 10", "--arrival-rates", "7.0", "--solvers", "geometric, ctmc"]
        )
        assert exit_code == 0
        assert "geometric" in capsys.readouterr().out

    def test_sweep_bad_list_reports_error(self, capsys):
        exit_code = main(["sweep", "--servers", "abc", "--arrival-rates", "7.0"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error" in captured.err

    def test_sweep_unknown_solver_reports_error(self, capsys):
        exit_code = main(
            ["sweep", "--servers", "10", "--arrival-rates", "7.0", "--solvers", "magic"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error" in captured.err


class TestScenarioCommand:
    def test_scenario_arguments(self):
        arguments = build_parser().parse_args(
            ["scenario", "--preset", "two-speed-cluster", "--repair-capacity", "1"]
        )
        assert arguments.command == "scenario"
        assert arguments.preset == "two-speed-cluster"
        assert arguments.repair_capacity == 1
        assert arguments.solvers == "ctmc,simulate"

    def test_list_prints_gallery(self, capsys):
        exit_code = main(["scenario", "--list"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for name in ("two-speed-cluster", "single-repairman", "legacy-homogeneous"):
            assert name in output

    def test_preset_solved_via_ctmc(self, capsys):
        exit_code = main(["scenario", "--preset", "single-repairman"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "repair capacity R" in output
        assert "Solution (ctmc)" in output
        assert "mean jobs L" in output

    def test_overrides_change_the_model(self, capsys):
        exit_code = main(
            [
                "scenario",
                "--preset", "two-speed-cluster",
                "--repair-capacity", "1",
                "--arrival-rate", "1.0",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "repair capacity R      1" in output

    def test_missing_preset_reports_error(self, capsys):
        exit_code = main(["scenario"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "choose a preset" in captured.err

    def test_unstable_override_reports_and_exits_one(self, capsys):
        exit_code = main(
            ["scenario", "--preset", "single-repairman", "--arrival-rate", "50"]
        )
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "unstable" in output

    def test_list_json_emits_machine_readable_gallery(self, capsys):
        import json

        exit_code = main(["scenario", "--list", "--json"])
        output = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(output)
        names = [entry["name"] for entry in payload["presets"]]
        assert "two-speed-cluster" in names and "single-repairman" in names
        record = next(
            entry for entry in payload["presets"] if entry["name"] == "single-repairman"
        )
        assert record["repair_capacity"] == 1
        assert record["stable"] is True
        assert record["groups"][0]["size"] == 3

    def test_list_json_writes_to_path(self, tmp_path, capsys):
        import json

        path = tmp_path / "gallery.json"
        exit_code = main(["scenario", "--list", "--json", str(path)])
        assert exit_code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert len(payload["presets"]) >= 4

    def test_json_without_list_or_preset_reports_error(self, capsys):
        exit_code = main(["scenario", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--list" in captured.err and "--preset" in captured.err

    def test_preset_json_reports_representation_and_state_space(self, capsys):
        import json

        exit_code = main(
            ["scenario", "--preset", "single-repairman", "--solvers", "ctmc", "--json"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(output[output.index("{") :])
        assert payload["scenario"] == "single-repairman"
        assert payload["solver"] == "ctmc"
        representation = payload["representation"]
        assert representation["requested"] == "auto"
        assert representation["chosen"] == "lumped"
        assert representation["num_product_modes"] >= representation["num_modes"]
        assert payload["metrics"]["num_solved_states"] > 0

    def test_product_representation_solves_and_agrees(self, capsys):
        import json

        exit_code = main(
            [
                "scenario",
                "--preset", "single-repairman",
                "--solvers", "ctmc",
                "--representation", "product",
                "--json",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(output[output.index("{") :])
        assert payload["representation"]["chosen"] == "product"
        # The per-server-labelled chain is strictly larger than the lumped one.
        exit_code = main(
            ["scenario", "--preset", "single-repairman", "--solvers", "ctmc", "--json"]
        )
        lumped = json.loads((out := capsys.readouterr().out)[out.index("{") :])
        assert payload["metrics"]["num_solved_states"] > lumped["metrics"]["num_solved_states"]
        assert payload["metrics"]["mean_queue_length"] == pytest.approx(
            lumped["metrics"]["mean_queue_length"], abs=1e-10
        )


class TestTransientCommand:
    def test_transient_arguments(self):
        arguments = build_parser().parse_args(
            ["transient", "--preset", "single-repairman", "--times", "1,5"]
        )
        assert arguments.command == "transient"
        assert arguments.preset == "single-repairman"
        assert arguments.times == "1,5"
        assert arguments.initial == "empty-operative"

    def test_homogeneous_trajectories_printed(self, capsys):
        exit_code = main(
            [
                "transient",
                "--servers", "3",
                "--arrival-rate", "1.5",
                "--times", "1,5",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Transient analysis" in output
        assert "mean jobs L(t)" in output
        assert "availability A(t)" in output

    def test_product_representation_on_a_preset(self, tmp_path, capsys):
        import json

        json_path = tmp_path / "transient.json"
        exit_code = main(
            [
                "transient",
                "--preset", "single-repairman",
                "--times", "1,5",
                "--representation", "product",
                "--json", str(json_path),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "representation        product" in output
        payload = json.loads(json_path.read_text())
        assert payload["representation"] == "product"
        assert payload["num_solved_states"] > 0

    def test_product_representation_rejected_for_homogeneous(self, capsys):
        exit_code = main(
            ["transient", "--servers", "3", "--times", "1", "--representation", "product"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no lumping to undo" in captured.err

    def test_preset_with_first_passage(self, capsys):
        exit_code = main(
            [
                "transient",
                "--preset", "single-repairman",
                "--times", "10,50",
                "--first-passage", "all-servers-down",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "First passage to 'all-servers-down'" in output
        assert "mean 46.66" in output

    def test_horizon_and_points_build_the_grid(self, capsys):
        exit_code = main(
            [
                "transient",
                "--servers", "3",
                "--arrival-rate", "1.2",
                "--horizon", "10",
                "--points", "4",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "(4 grid points)" in output
        assert " 2.5000" in output and "10.0000" in output

    def test_csv_and_json_export(self, tmp_path, capsys):
        import csv
        import json

        csv_path = tmp_path / "transient.csv"
        json_path = tmp_path / "transient.json"
        exit_code = main(
            [
                "transient",
                "--servers", "3",
                "--arrival-rate", "1.2",
                "--times", "1,5",
                "--csv", str(csv_path),
                "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        assert "wrote" in capsys.readouterr().out
        rows = list(csv.DictReader(csv_path.open()))
        assert [row["time"] for row in rows] == ["1.0", "5.0"]
        payload = json.loads(json_path.read_text())
        assert len(payload["rows"]) == 2

    def test_repair_capacity_without_preset_rejected(self, capsys):
        exit_code = main(
            ["transient", "--servers", "3", "--arrival-rate", "1", "--repair-capacity", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "applies to scenario presets" in captured.err

    def test_queue_threshold_required_for_queue_exceeds(self, capsys):
        exit_code = main(
            [
                "transient",
                "--servers", "3",
                "--arrival-rate", "1.2",
                "--times", "1",
                "--first-passage", "queue-exceeds",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "queue_threshold" in captured.err

    def test_unstable_model_reports_error(self, capsys):
        exit_code = main(
            ["transient", "--servers", "2", "--arrival-rate", "50", "--times", "1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unstable" in captured.err


class TestVersionAndUnknownCommands:
    def test_version_reports_the_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_unknown_subcommand_exits_2_with_a_one_line_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        captured = capsys.readouterr()
        assert excinfo.value.code == 2
        error_lines = [line for line in captured.err.splitlines() if line.strip()]
        assert len(error_lines) == 1
        assert "repro: error:" in error_lines[0]
        assert "--help" in error_lines[0]

    def test_missing_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestServeCommand:
    def test_serve_arguments(self):
        arguments = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--workers", "2",
                "--batch-window", "0.01",
                "--max-queue", "32",
            ]
        )
        assert arguments.command == "serve"
        assert arguments.port == 0
        assert arguments.workers == 2
        assert arguments.batch_window == 0.01
        assert arguments.max_queue == 32
        assert arguments.host == "127.0.0.1"

    def test_serve_help_documents_the_endpoints(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--help"])
        output = capsys.readouterr().out
        for needle in ("POST /solve", "GET /healthz", "GET /stats", "queue-full",
                      "deadline", "--batch-window"):
            assert needle in output

    def test_serve_rejects_bad_tunables(self, capsys):
        exit_code = main(["serve", "--port", "0", "--max-queue", "0"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "max_queue" in captured.err


class TestCacheStatsCommand:
    def test_in_process_cache_stats(self, capsys):
        exit_code = main(["cache-stats"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Shared solution cache" in output
        for counter in ("hits", "misses", "size", "evictions"):
            assert counter in output

    def test_in_process_cache_stats_json(self, capsys):
        import json

        exit_code = main(["cache-stats", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert set(payload) >= {"hits", "misses", "hit_rate", "size", "solves", "evictions"}

    def test_cache_stats_of_a_running_service(self, capsys):
        import json

        from repro.service import ServiceClient, ServiceConfig, ThreadedService

        with ThreadedService(ServiceConfig(port=0)) as service:
            with ServiceClient(service.host, service.port) as client:
                client.solve_ok({"model": {"servers": 3, "arrival_rate": 1.5}})
            exit_code = main(["cache-stats", "--url", service.address])
            output = capsys.readouterr().out
            assert exit_code == 0
            assert "Service http://" in output
            assert "coalesced total" in output
            assert "Solution cache" in output

            exit_code = main(["cache-stats", "--url", service.address, "--json"])
            payload = json.loads(capsys.readouterr().out)
            assert exit_code == 0
            assert payload["scheduler"]["cache"]["solves"] == 1

    def test_unreachable_service_reports_an_error(self, capsys):
        exit_code = main(["cache-stats", "--url", "http://127.0.0.1:9"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "could not reach" in captured.err

    def test_bad_url_port_reports_an_error_not_a_traceback(self, capsys):
        exit_code = main(["cache-stats", "--url", "http://127.0.0.1:notaport"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--url must be a plain http://host:port address" in captured.err

    def test_in_process_cache_stats_lists_spill_counters(self, capsys):
        exit_code = main(["cache-stats"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for counter in ("spills", "spilled_entries", "loads", "loaded_entries"):
            assert counter in output

    def test_service_cache_stats_list_spill_counters(self, capsys):
        from repro.service import ServiceConfig, ThreadedService

        with ThreadedService(ServiceConfig(port=0)) as service:
            exit_code = main(["cache-stats", "--url", service.address])
        output = capsys.readouterr().out
        assert exit_code == 0
        for counter in ("spills", "spilled_entries", "loads", "loaded_entries"):
            assert counter in output


class TestTopCommand:
    def test_top_once_json_summarises_a_live_service(self, capsys):
        import json

        from repro.service import ServiceClient, ServiceConfig, ThreadedService

        with ThreadedService(ServiceConfig(port=0)) as service:
            with ServiceClient(service.host, service.port, timeout=120.0) as client:
                client.solve_ok({"model": {"servers": 3, "arrival_rate": 1.5}})
            exit_code = main(["top", "--url", service.address, "--once", "--json"])
            payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["responses_total"] >= 1
        assert payload["rps"] is None  # a single snapshot has no rate
        assert payload["slo"]["queue_wait_target_seconds"] == 2.0
        assert payload["shards"]
        assert payload["shards"][0]["requests_total"] >= 1

    def test_top_once_renders_the_dashboard(self, capsys):
        from repro.service import ServiceClient, ServiceConfig, ThreadedService

        with ThreadedService(ServiceConfig(port=0)) as service:
            with ServiceClient(service.host, service.port, timeout=120.0) as client:
                client.solve_ok({"model": {"servers": 3, "arrival_rate": 1.5}})
            exit_code = main(["top", "--url", service.address, "--once"])
            output = capsys.readouterr().out
        assert exit_code == 0
        assert output.startswith("repro top — ")
        assert "pressure" in output
        assert "shard" in output

    def test_top_json_requires_once(self, capsys):
        exit_code = main(["top", "--url", "http://127.0.0.1:9", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--json needs --once" in captured.err

    def test_top_unreachable_service_reports_an_error(self, capsys):
        exit_code = main(["top", "--url", "http://127.0.0.1:9", "--once"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "could not reach" in captured.err
