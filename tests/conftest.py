"""Shared fixtures for the test-suite.

The fixtures provide small, fast-to-solve model instances that many test
modules reuse:  a tiny two-server system matching the paper's worked example
(two operative phases, one inoperative phase), a moderate ten-server system
with the fitted Sun parameters, and a seeded random generator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import SUN_OPERATIVE_FIT, Exponential, HyperExponential
from repro.queueing import UnreliableQueueModel


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded NumPy random generator."""
    return np.random.default_rng(2006)


@pytest.fixture
def small_model() -> UnreliableQueueModel:
    """A tiny model (N=2, n=2, m=1, s=6) solvable in milliseconds."""
    return UnreliableQueueModel(
        num_servers=2,
        arrival_rate=1.0,
        service_rate=1.0,
        operative=HyperExponential(weights=[0.6, 0.4], rates=[0.2, 0.02]),
        inoperative=Exponential(rate=2.0),
    )


@pytest.fixture
def medium_model() -> UnreliableQueueModel:
    """A moderately loaded five-server model with the fitted operative periods."""
    return UnreliableQueueModel(
        num_servers=5,
        arrival_rate=3.5,
        service_rate=1.0,
        operative=SUN_OPERATIVE_FIT,
        inoperative=Exponential(rate=25.0),
    )


@pytest.fixture
def paper_model() -> UnreliableQueueModel:
    """The N=10 configuration used by several of the paper's figures."""
    return UnreliableQueueModel(
        num_servers=10,
        arrival_rate=7.0,
        service_rate=1.0,
        operative=SUN_OPERATIVE_FIT,
        inoperative=Exponential(rate=25.0),
    )
