"""Unit tests for :mod:`repro.stats.empirical` (paper Eq. 1–3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential
from repro.exceptions import DataError
from repro.stats import EmpiricalDensity, estimate_moments, sample_scv


class TestEmpiricalDensityConstruction:
    def test_probabilities_sum_to_one(self):
        data = np.array([0.5, 1.5, 2.5, 3.5, 4.5])
        density = EmpiricalDensity.from_observations(data, num_bins=5)
        assert density.probabilities.sum() == pytest.approx(1.0)

    def test_densities_are_probabilities_over_width(self):
        data = np.array([0.5, 1.5, 2.5, 3.5])
        density = EmpiricalDensity.from_observations(data, num_bins=4, upper=4.0)
        widths = np.diff(density.bin_edges)
        np.testing.assert_allclose(density.densities * widths, density.probabilities)

    def test_number_of_bins(self):
        data = np.linspace(0.1, 9.9, 50)
        density = EmpiricalDensity.from_observations(data, num_bins=7)
        assert len(density) == 7
        assert density.bin_edges.size == 8

    def test_midpoints_are_centres(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        density = EmpiricalDensity.from_observations(data, num_bins=4, upper=4.0)
        np.testing.assert_allclose(density.midpoints, [0.5, 1.5, 2.5, 3.5])

    def test_values_above_upper_are_clipped_into_last_bin(self):
        data = np.array([0.5, 1.5, 100.0])
        density = EmpiricalDensity.from_observations(data, num_bins=2, upper=2.0)
        assert density.probabilities.sum() == pytest.approx(1.0)
        assert density.probabilities[-1] == pytest.approx(2.0 / 3.0)

    def test_sample_size_recorded(self):
        data = np.arange(1, 11, dtype=float)
        density = EmpiricalDensity.from_observations(data, num_bins=5)
        assert density.sample_size == 10

    def test_empty_observations_rejected(self):
        with pytest.raises(DataError):
            EmpiricalDensity.from_observations([], num_bins=5)

    def test_negative_observations_rejected(self):
        with pytest.raises(DataError):
            EmpiricalDensity.from_observations([-1.0, 2.0], num_bins=5)

    def test_non_finite_observations_rejected(self):
        with pytest.raises(DataError):
            EmpiricalDensity.from_observations([1.0, np.nan], num_bins=5)

    def test_invalid_bins_rejected(self):
        with pytest.raises(Exception):
            EmpiricalDensity.from_observations([1.0, 2.0], num_bins=0)


class TestMoments:
    def test_moment_formula_eq1(self):
        """M~_k = sum x_i^k p_i over the histogram grid (paper Eq. 1)."""
        data = np.array([0.5, 0.5, 1.5, 2.5])
        density = EmpiricalDensity.from_observations(data, num_bins=3, upper=3.0)
        expected_m1 = 0.5 * 0.5 + 1.5 * 0.25 + 2.5 * 0.25
        assert density.moment(1) == pytest.approx(expected_m1)

    def test_variance_and_scv_eq2(self):
        data = np.array([0.5, 0.5, 1.5, 2.5])
        density = EmpiricalDensity.from_observations(data, num_bins=3, upper=3.0)
        m1, m2 = density.moment(1), density.moment(2)
        assert density.variance == pytest.approx(m2 - m1 * m1)
        assert density.scv == pytest.approx(m2 / m1**2 - 1.0)

    def test_histogram_moments_close_to_sample_moments(self, rng):
        draws = Exponential(rate=0.5).sample(rng, size=100_000)
        density = EmpiricalDensity.from_observations(draws, num_bins=400)
        raw = estimate_moments(draws, 2)
        assert density.moment(1) == pytest.approx(raw[0], rel=0.02)
        assert density.moment(2) == pytest.approx(raw[1], rel=0.05)

    def test_moments_helper(self):
        data = np.array([1.0, 2.0, 3.0])
        density = EmpiricalDensity.from_observations(data, num_bins=3, upper=3.0)
        np.testing.assert_allclose(
            density.moments(2), [density.moment(1), density.moment(2)]
        )


class TestCDF:
    def test_cdf_is_cumulative_sum_eq3(self):
        data = np.array([0.5, 1.5, 1.5, 2.5])
        density = EmpiricalDensity.from_observations(data, num_bins=3, upper=3.0)
        np.testing.assert_allclose(density.cdf(), np.cumsum(density.probabilities))

    def test_cdf_reaches_one(self):
        data = np.linspace(0.5, 9.5, 100)
        density = EmpiricalDensity.from_observations(data, num_bins=10)
        assert density.cdf()[-1] == pytest.approx(1.0)

    def test_cdf_at_before_first_midpoint(self):
        data = np.array([1.0, 2.0, 3.0])
        density = EmpiricalDensity.from_observations(data, num_bins=3, upper=3.0)
        assert density.cdf_at(0.0) == 0.0

    def test_cdf_at_after_last_midpoint(self):
        data = np.array([1.0, 2.0, 3.0])
        density = EmpiricalDensity.from_observations(data, num_bins=3, upper=3.0)
        assert density.cdf_at(10.0) == pytest.approx(1.0)

    def test_as_series_returns_copies(self):
        data = np.array([1.0, 2.0, 3.0])
        density = EmpiricalDensity.from_observations(data, num_bins=3, upper=3.0)
        midpoints, values = density.as_series()
        midpoints[0] = -99.0
        assert density.midpoints[0] != -99.0


class TestRawEstimators:
    def test_estimate_moments_matches_numpy(self, rng):
        draws = rng.exponential(scale=2.0, size=1000)
        moments = estimate_moments(draws, 3)
        assert moments[0] == pytest.approx(np.mean(draws))
        assert moments[2] == pytest.approx(np.mean(draws**3))

    def test_sample_scv_of_exponential_near_one(self, rng):
        draws = Exponential(rate=1.0).sample(rng, size=200_000)
        assert sample_scv(draws) == pytest.approx(1.0, abs=0.05)

    def test_estimate_moments_empty_rejected(self):
        with pytest.raises(DataError):
            estimate_moments([], 2)

    def test_sample_scv_constant_sample_is_zero(self):
        assert sample_scv(np.full(100, 3.0)) == pytest.approx(0.0)


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=2, max_size=200),
    num_bins=st.integers(min_value=1, max_value=60),
)
def test_property_probabilities_sum_to_one(data, num_bins):
    if max(data) < 1e-6:
        data = [value + 0.5 for value in data]
    density = EmpiricalDensity.from_observations(np.array(data), num_bins=num_bins)
    assert density.probabilities.sum() == pytest.approx(1.0)
    cdf = density.cdf()
    assert np.all(np.diff(cdf) >= -1e-12)
    assert cdf[-1] == pytest.approx(1.0)
