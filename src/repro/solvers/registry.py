"""The solver registry: name-based dispatch with third-party registration.

The library ships four backends (see :mod:`repro.solvers.backends`); the
registry maps their names to :class:`~repro.solvers.base.Solver` instances
and lets downstream packages plug in additional backends, either imperatively
(:func:`register_solver`) or declaratively through the ``repro.solvers``
entry-point group (:func:`load_entry_point_solvers`):

.. code-block:: toml

    # pyproject.toml of a plugin package
    [project.entry-points."repro.solvers"]
    my-solver = "my_package.solvers:MySolver"

Solver policies (:class:`~repro.solvers.policy.SolverPolicy`) validate their
names against the default registry, so a registered third-party solver
participates in fallback chains exactly like a built-in one.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..exceptions import ParameterError
from .backends import BUILTIN_SOLVER_NAMES, builtin_solvers
from .base import Solver


class SolverRegistry:
    """A mapping from solver name to :class:`Solver` instance.

    The registry preserves insertion order, which is the order
    :meth:`names` reports and the order documentation presents the
    backends in; it does not affect fallback order (that is the policy's
    job).
    """

    def __init__(self, solvers: Iterable[Solver] = ()) -> None:
        self._solvers: dict[str, Solver] = {}
        for solver in solvers:
            self.register(solver)

    def register(self, solver: Solver, *, replace: bool = False) -> Solver:
        """Add a solver under its :attr:`~Solver.name`.

        Parameters
        ----------
        solver:
            The solver instance to register.
        replace:
            Allow overwriting an existing registration of the same name
            (default: registering a duplicate name is an error).
        """
        name = getattr(solver, "name", "")
        if not isinstance(name, str) or not name:
            raise ParameterError(
                f"solver {solver!r} has no usable name; set a non-empty `name` attribute"
            )
        if not replace and name in self._solvers:
            raise ParameterError(
                f"a solver named {name!r} is already registered; "
                "pass replace=True to overwrite it"
            )
        self._solvers[name] = solver
        return solver

    def unregister(self, name: str) -> Solver:
        """Remove and return the solver registered under ``name``."""
        try:
            return self._solvers.pop(name)
        except KeyError:
            raise ParameterError(
                f"no solver named {name!r} is registered; "
                f"registered solvers: {', '.join(self.names()) or '(none)'}"
            ) from None

    def get(self, name: str) -> Solver:
        """The solver registered under ``name``.

        Raises
        ------
        ParameterError
            With the list of registered names, when ``name`` is unknown.
        """
        try:
            return self._solvers[name]
        except KeyError:
            raise ParameterError(
                f"unknown solver {name!r}; registered solvers: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """The registered solver names, in registration order."""
        return tuple(self._solvers)

    def __contains__(self, name: object) -> bool:
        return name in self._solvers

    def __iter__(self) -> Iterator[Solver]:
        return iter(self._solvers.values())

    def __len__(self) -> int:
        return len(self._solvers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SolverRegistry({', '.join(self.names())})"


#: The process-wide default registry, pre-populated with the built-ins.
_DEFAULT_REGISTRY = SolverRegistry(builtin_solvers())


def default_registry() -> SolverRegistry:
    """The process-wide registry used when no explicit registry is passed."""
    return _DEFAULT_REGISTRY


def register_solver(solver: Solver, *, replace: bool = False) -> Solver:
    """Register a solver with the default registry (third-party hook)."""
    return _DEFAULT_REGISTRY.register(solver, replace=replace)


def unregister_solver(name: str) -> Solver:
    """Remove a solver from the default registry (mostly for tests)."""
    return _DEFAULT_REGISTRY.unregister(name)


def get_solver(name: str) -> Solver:
    """Look up a solver by name in the default registry."""
    return _DEFAULT_REGISTRY.get(name)


def solver_names() -> tuple[str, ...]:
    """The names registered with the default registry."""
    return _DEFAULT_REGISTRY.names()


def load_entry_point_solvers(
    group: str = "repro.solvers", *, registry: SolverRegistry | None = None
) -> int:
    """Load and register solvers advertised via package entry points.

    Each entry point in ``group`` must resolve to a :class:`Solver` subclass
    (instantiated with no arguments) or a ready-made instance.  Returns the
    number of solvers registered.  Already-registered names are replaced, so
    calling this twice is idempotent.
    """
    from importlib import metadata

    target = registry if registry is not None else _DEFAULT_REGISTRY
    count = 0
    for entry_point in metadata.entry_points(group=group):
        loaded = entry_point.load()
        solver = loaded() if isinstance(loaded, type) else loaded
        target.register(solver, replace=True)
        count += 1
    return count


__all__ = [
    "BUILTIN_SOLVER_NAMES",
    "SolverRegistry",
    "default_registry",
    "get_solver",
    "load_entry_point_solvers",
    "register_solver",
    "solver_names",
    "unregister_solver",
]
