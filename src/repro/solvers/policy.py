"""Solver policies: which backends to try, in which order, with what options.

A :class:`SolverPolicy` is the single vocabulary every call site uses to name
solvers — the sweep engine, the cost optimiser, the sizing helpers and the
CLI all accept one (or anything :func:`as_policy` can coerce into one: a
solver name, or a sequence of names forming a fallback chain).  Names are
validated against the default :mod:`solver registry <repro.solvers.registry>`
at construction time, so registered third-party solvers are first-class
policy members.
"""

from __future__ import annotations

import contextlib
import contextvars
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..exceptions import ParameterError
from .base import SIMULATE_DEFAULTS
from .registry import default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import SolverRegistry

#: Registry that policies constructed inside :func:`validating_against`
#: validate their names with (``None`` selects the default registry).
_VALIDATION_REGISTRY: contextvars.ContextVar["SolverRegistry | None"] = contextvars.ContextVar(
    "repro_solver_validation_registry", default=None
)


@contextlib.contextmanager
def validating_against(registry: "SolverRegistry | None") -> Iterator[None]:
    """Validate policies constructed in this context against ``registry``.

    The facade uses this so ``solve(model, "mine", registry=custom)`` accepts
    names that exist only in the custom registry; ``None`` is a no-op.
    """
    if registry is None:
        yield
        return
    token = _VALIDATION_REGISTRY.set(registry)
    try:
        yield
    finally:
        _VALIDATION_REGISTRY.reset(token)


@dataclass(frozen=True)
class SolverPolicy:
    """Which solvers to try, in order, and how to configure the simulator.

    Attributes
    ----------
    order:
        Solver names tried left to right; the first one that succeeds
        produces the metrics.  A solver failure
        (:class:`~repro.exceptions.SolverError`, a
        :class:`~repro.exceptions.ParameterError` from non-Markovian period
        distributions, or a simulation error) falls through to the next name.
    simulate_horizon, simulate_seed, simulate_num_batches,
    simulate_warmup_fraction:
        Options forwarded to :meth:`UnreliableQueueModel.simulate` when the
        ``"simulate"`` solver runs.
    transient_times:
        Evaluation time grid forwarded to the ``"transient"`` solver (empty =
        the solver's default grid).  The policy is part of every solution
        cache key, so folding the grid in here is what makes cached transient
        outcomes time-grid-aware: the same model solved over two different
        grids occupies two cache entries.
    representation:
        Chain representation forwarded to the scenario-capable CTMC backends
        (``"ctmc"`` and ``"transient"``).  ``"auto"`` (the default) lets the
        solver choose — always the lumped count-based chain; ``"lumped"`` and
        ``"product"`` force the respective representation (product space is a
        verification tool and only applies to scenario models).
    """

    order: tuple[str, ...] = ("spectral", "geometric")
    simulate_horizon: float = SIMULATE_DEFAULTS.horizon
    simulate_seed: int = SIMULATE_DEFAULTS.seed
    simulate_num_batches: int = SIMULATE_DEFAULTS.num_batches
    simulate_warmup_fraction: float = SIMULATE_DEFAULTS.warmup_fraction
    transient_times: tuple[float, ...] = ()
    representation: str = "auto"

    def __post_init__(self) -> None:
        if not self.order:
            raise ParameterError("a solver policy needs at least one solver")
        object.__setattr__(self, "order", tuple(self.order))
        object.__setattr__(
            self, "transient_times", tuple(float(t) for t in self.transient_times)
        )
        if any(t < 0.0 for t in self.transient_times):
            raise ParameterError("transient_times must be non-negative")
        if self.representation not in ("auto", "lumped", "product"):
            raise ParameterError(
                f"unknown representation {self.representation!r}; "
                "expected one of auto, lumped, product"
            )
        registry = _VALIDATION_REGISTRY.get()
        if registry is None:
            registry = default_registry()
        for name in self.order:
            if name not in registry:
                raise ParameterError(
                    f"unknown solver {name!r}; registered solvers: "
                    f"{', '.join(registry.names())}"
                )

    def with_order(self, *order: str) -> "SolverPolicy":
        """A copy of the policy with a different solver order."""
        return replace(self, order=tuple(order))

    def with_transient_times(self, *times: float) -> "SolverPolicy":
        """A copy of the policy with a different transient evaluation grid."""
        return replace(self, transient_times=tuple(times))

    def with_representation(self, representation: str) -> "SolverPolicy":
        """A copy of the policy forcing a chain representation."""
        return replace(self, representation=representation)


def as_policy(policy: object, *, registry: "SolverRegistry | None" = None) -> SolverPolicy:
    """Coerce a user-facing solver specification into a :class:`SolverPolicy`.

    Accepted forms: an existing policy (returned unchanged), ``None`` (the
    default policy), a solver name string (a one-element chain), or an
    iterable of names (a fallback chain).  Anything else — including solver
    callables, which bypass the registry — is a :class:`ParameterError`.
    Names are validated against ``registry`` when given (else the default
    registry), so custom registries can dispatch solvers of their own.
    """
    if isinstance(policy, SolverPolicy):
        return policy
    with validating_against(registry):
        if policy is None:
            return SolverPolicy()
        if isinstance(policy, str):
            return SolverPolicy(order=(policy,))
        if isinstance(policy, Iterable):
            return SolverPolicy(order=tuple(str(name) for name in policy))
    raise ParameterError(
        f"cannot interpret {policy!r} as a solver policy; expected a SolverPolicy, "
        "a solver name, or a sequence of solver names"
    )
