"""Unified solver dispatch: registry, fallback facade and shared cache.

The paper's value is that four independent methods answer the same
steady-state questions about the unreliable M/M/N queue:

* ``spectral`` — exact spectral expansion (paper Section 3.1);
* ``geometric`` — the heavy-load geometric approximation (Section 3.2);
* ``ctmc`` — the truncated-CTMC reference used for validation;
* ``simulate`` — discrete-event simulation, which also accepts
  non-phase-type period distributions;
* ``transient`` — the uniformization time-dependent solver
  (:mod:`repro.transient`), which answers ``pi(t)`` questions over the
  policy's ``transient_times`` grid rather than steady-state ones.

This package is the single place where "pick a solver by name, fall back on
failure" lives.  It provides:

* the :class:`Solver` protocol and a :class:`SolverRegistry` with the five
  built-in backends pre-registered; third parties plug in via
  :func:`register_solver` or the ``repro.solvers`` entry-point group;
* :class:`SolverPolicy` — the one vocabulary for naming solvers and fallback
  chains, validated against the registry;
* :func:`solve` / :func:`solve_many` — the facade implementing the
  spectral → geometric → ctmc → simulate fallback chain exactly once, with a
  shared, process-safe :class:`SolutionCache` and batch deduplication under
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out.

Example
-------

>>> from repro.queueing import sun_fitted_model
>>> from repro.solvers import solve, solver_names
>>> solver_names()
('spectral', 'geometric', 'ctmc', 'simulate', 'transient')
>>> outcome = solve(sun_fitted_model(num_servers=10, arrival_rate=7.0))
>>> outcome.solver
'spectral'
>>> round(outcome.metrics["mean_queue_length"], 2)  # doctest: +SKIP
9.2
"""

from .backends import (
    BUILTIN_SOLVER_NAMES,
    GeometricSolver,
    SimulationSolver,
    SpectralSolver,
    TransientSolver,
    TruncatedCTMCSolver,
    builtin_solvers,
)
from .base import INFINITE_METRICS, SolveOutcome, Solver
from .cache import SolutionCache, distribution_key, shared_cache, solution_cache_key
from .facade import (
    FALLBACK_EXCEPTIONS,
    default_max_workers,
    evaluate,
    solve,
    solve_many,
    solve_many_async,
)
from .policy import SolverPolicy, as_policy
from .registry import (
    SolverRegistry,
    default_registry,
    get_solver,
    load_entry_point_solvers,
    register_solver,
    solver_names,
    unregister_solver,
)

__all__ = [
    "BUILTIN_SOLVER_NAMES",
    "FALLBACK_EXCEPTIONS",
    "INFINITE_METRICS",
    "GeometricSolver",
    "SimulationSolver",
    "SolutionCache",
    "SolveOutcome",
    "Solver",
    "SolverPolicy",
    "SolverRegistry",
    "SpectralSolver",
    "TransientSolver",
    "TruncatedCTMCSolver",
    "as_policy",
    "builtin_solvers",
    "default_max_workers",
    "default_registry",
    "distribution_key",
    "evaluate",
    "get_solver",
    "load_entry_point_solvers",
    "register_solver",
    "shared_cache",
    "solution_cache_key",
    "solve",
    "solve_many",
    "solve_many_async",
    "solver_names",
    "unregister_solver",
]
