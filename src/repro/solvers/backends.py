"""The four built-in solver backends, wrapped behind the :class:`Solver` protocol.

Each backend delegates to the corresponding method of
:class:`~repro.queueing.model.UnreliableQueueModel` and normalises the native
solution object into the flat metric mapping shared by every consumer (the
sweep engine, the cost optimiser, the CLI).  The trusted fallback order —
exact first, then the fast approximation, then the finite-chain reference,
then simulation — is encoded once, in :data:`BUILTIN_SOLVER_NAMES`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import SIMULATE_DEFAULTS, Solver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..queueing.model import UnreliableQueueModel
    from .policy import SolverPolicy


class _MarkovianSolver(Solver):
    """Base for the analytical backends, which need a Markovian environment."""

    def supports(self, model: "UnreliableQueueModel") -> bool:
        return model.is_markovian

    def unsupported_reason(self, model: "UnreliableQueueModel") -> str:
        return (
            f"the {self.name!r} solver requires exponential or hyperexponential "
            f"period distributions, got {type(model.operative).__name__}/"
            f"{type(model.inoperative).__name__}"
        )


class SpectralSolver(_MarkovianSolver):
    """Exact spectral-expansion solution (paper Section 3.1)."""

    name = "spectral"

    def solve(self, model: "UnreliableQueueModel", **options):
        return model.solve_spectral(**options)

    def metrics(self, solution) -> dict[str, float]:
        return {
            "mean_queue_length": solution.mean_queue_length,
            "mean_response_time": solution.mean_response_time,
            "decay_rate": solution.decay_rate,
        }


class GeometricSolver(_MarkovianSolver):
    """Heavy-load geometric approximation (paper Section 3.2)."""

    name = "geometric"

    def solve(self, model: "UnreliableQueueModel", **options):
        return model.solve_geometric(**options)

    def metrics(self, solution) -> dict[str, float]:
        return {
            "mean_queue_length": solution.mean_queue_length,
            "mean_response_time": solution.mean_response_time,
            "decay_rate": solution.decay_rate,
        }


class TruncatedCTMCSolver(_MarkovianSolver):
    """Truncated-CTMC reference solution used for validation."""

    name = "ctmc"

    def solve(self, model: "UnreliableQueueModel", **options):
        return model.solve_ctmc(**options)

    def metrics(self, solution) -> dict[str, float]:
        return {
            "mean_queue_length": solution.mean_queue_length,
            "mean_response_time": solution.mean_response_time,
        }


class SimulationSolver(Solver):
    """Discrete-event simulation; accepts arbitrary period distributions."""

    name = "simulate"

    def solve(
        self,
        model: "UnreliableQueueModel",
        *,
        horizon: float = SIMULATE_DEFAULTS["horizon"],
        warmup_fraction: float = SIMULATE_DEFAULTS["warmup_fraction"],
        num_batches: int = SIMULATE_DEFAULTS["num_batches"],
        seed: int = SIMULATE_DEFAULTS["seed"],
    ):
        return model.simulate(
            horizon=horizon,
            warmup_fraction=warmup_fraction,
            num_batches=num_batches,
            seed=seed,
        )

    def metrics(self, estimate) -> dict[str, float]:
        return {
            "mean_queue_length": estimate.mean_queue_length.estimate,
            "mean_response_time": estimate.mean_response_time.estimate,
            "utilisation": estimate.utilisation,
        }

    def options_from_policy(self, policy: "SolverPolicy") -> dict[str, object]:
        return {
            "horizon": policy.simulate_horizon,
            "warmup_fraction": policy.simulate_warmup_fraction,
            "num_batches": policy.simulate_num_batches,
            "seed": policy.simulate_seed,
        }


def builtin_solvers() -> tuple[Solver, ...]:
    """Fresh instances of the four built-in backends, in trusted order."""
    return (SpectralSolver(), GeometricSolver(), TruncatedCTMCSolver(), SimulationSolver())


#: The built-in solver names in the order the library trusts them.
BUILTIN_SOLVER_NAMES = ("spectral", "geometric", "ctmc", "simulate")
