"""The built-in solver backends, wrapped behind the :class:`Solver` protocol.

Each backend delegates to the corresponding solver of the library and
normalises the native solution object into the flat metric mapping shared by
every consumer (the sweep engine, the cost optimiser, the CLI).  The trusted
steady-state fallback order — exact first, then the fast approximation, then
the finite-chain reference, then simulation — is encoded once, in
:data:`BUILTIN_SOLVER_NAMES`; the ``transient`` backend sits outside that
chain (it answers time-dependent questions) and runs only when a policy
names it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..exceptions import UnsupportedScenarioError
from .base import SIMULATE_DEFAULTS, Solver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..queueing.model import UnreliableQueueModel
    from .policy import SolverPolicy


def is_scenario_model(model: object) -> bool:
    """Whether ``model`` is a scenario (duck-typed to avoid an import cycle)."""
    return bool(getattr(model, "is_scenario", False))


class _MarkovianSolver(Solver):
    """Base for the analytical backends, which need a Markovian environment."""

    def supports(self, model: "UnreliableQueueModel") -> bool:
        return model.is_markovian

    def unsupported_reason(self, model: "UnreliableQueueModel") -> str:
        if is_scenario_model(model):
            return (
                f"the {self.name!r} solver requires exponential or hyperexponential "
                "period distributions in every server group"
            )
        return (
            f"the {self.name!r} solver requires exponential or hyperexponential "
            f"period distributions, got {type(model.operative).__name__}/"
            f"{type(model.inoperative).__name__}"
        )


class _HomogeneousOnlySolver(_MarkovianSolver):
    """Analytical backends derived for the paper's homogeneous pool only.

    Scenario models (heterogeneous groups, limited repair crews) fall outside
    the spectral state-space structure, so these backends report them as
    unsupported and raise :class:`UnsupportedScenarioError` — a
    :class:`~repro.exceptions.SolverError` subclass, so fallback chains skip
    to the scenario-capable ``ctmc`` and ``simulate`` backends.
    """

    supports_scenarios = False

    def supports(self, model: "UnreliableQueueModel") -> bool:
        return not is_scenario_model(model) and super().supports(model)

    def unsupported_reason(self, model: "UnreliableQueueModel") -> str:
        if is_scenario_model(model):
            return (
                f"the {self.name!r} solver handles only the homogeneous model; "
                "scenario models (server groups, repair crews) need 'ctmc' or "
                "'simulate' — or ScenarioModel.as_homogeneous() for K=1, R=N"
            )
        return super().unsupported_reason(model)

    def _reject_scenarios(self, model: "UnreliableQueueModel") -> None:
        if is_scenario_model(model):
            raise UnsupportedScenarioError(self.unsupported_reason(model))


class SpectralSolver(_HomogeneousOnlySolver):
    """Exact spectral-expansion solution (paper Section 3.1)."""

    name = "spectral"

    def solve(self, model: "UnreliableQueueModel", **options: Any) -> object:
        self._reject_scenarios(model)
        return model.solve_spectral(**options)

    def metrics(self, solution: Any) -> dict[str, float]:
        return {
            "mean_queue_length": solution.mean_queue_length,
            "mean_response_time": solution.mean_response_time,
            "decay_rate": solution.decay_rate,
        }


class GeometricSolver(_HomogeneousOnlySolver):
    """Heavy-load geometric approximation (paper Section 3.2)."""

    name = "geometric"

    def solve(self, model: "UnreliableQueueModel", **options: Any) -> object:
        self._reject_scenarios(model)
        return model.solve_geometric(**options)

    def metrics(self, solution: Any) -> dict[str, float]:
        return {
            "mean_queue_length": solution.mean_queue_length,
            "mean_response_time": solution.mean_response_time,
            "decay_rate": solution.decay_rate,
        }


class TruncatedCTMCSolver(_MarkovianSolver):
    """Truncated-CTMC reference solution used for validation.

    Accepts scenario models as well as the homogeneous model: both expose
    ``solve_ctmc`` with the same signature.
    """

    name = "ctmc"
    supports_scenarios = True
    supports_warm_start = True

    def solve(self, model: "UnreliableQueueModel", **options: Any) -> object:
        if not is_scenario_model(model):
            representation = str(options.pop("representation", "auto"))
            if representation == "product":
                raise UnsupportedScenarioError(
                    "the product representation only applies to scenario models; "
                    "the homogeneous chain has no lumping to undo"
                )
        return model.solve_ctmc(**options)

    def options_from_policy(self, policy: "SolverPolicy") -> dict[str, object]:
        if policy.representation != "auto":
            return {"representation": policy.representation}
        return {}

    def metrics(self, solution: Any) -> dict[str, float]:
        metrics = {
            "mean_queue_length": solution.mean_queue_length,
            "mean_response_time": solution.mean_response_time,
        }
        # Scenario solutions report their utilisation so CTMC rows are
        # directly comparable to simulation estimates in cross-validation.
        utilisation = getattr(solution, "utilisation", None)
        if utilisation is not None:
            metrics["utilisation"] = float(utilisation)
        # Scenario solutions also report the size of the chain that was
        # actually swept, so callers can see what the lumping bought them.
        num_solved_states = getattr(solution, "num_solved_states", None)
        if num_solved_states is not None:
            metrics["num_solved_states"] = float(num_solved_states)
        return metrics


class SimulationSolver(Solver):
    """Discrete-event simulation; accepts arbitrary period distributions.

    Dispatches through ``model.simulate``, so homogeneous models and scenario
    models (which route to the scenario simulator) are both supported.
    """

    name = "simulate"
    supports_scenarios = True

    def solve(
        self,
        model: "UnreliableQueueModel",
        *,
        horizon: float = SIMULATE_DEFAULTS.horizon,
        warmup_fraction: float = SIMULATE_DEFAULTS.warmup_fraction,
        num_batches: int = SIMULATE_DEFAULTS.num_batches,
        seed: int = SIMULATE_DEFAULTS.seed,
    ) -> object:
        return model.simulate(
            horizon=horizon,
            warmup_fraction=warmup_fraction,
            num_batches=num_batches,
            seed=seed,
        )

    def metrics(self, estimate: Any) -> dict[str, float]:
        return {
            "mean_queue_length": estimate.mean_queue_length.estimate,
            "mean_response_time": estimate.mean_response_time.estimate,
            "utilisation": estimate.utilisation,
        }

    def options_from_policy(self, policy: "SolverPolicy") -> dict[str, object]:
        return {
            "horizon": policy.simulate_horizon,
            "warmup_fraction": policy.simulate_warmup_fraction,
            "num_batches": policy.simulate_num_batches,
            "seed": policy.simulate_seed,
        }


class TransientSolver(_MarkovianSolver):
    """Uniformization transient solver (:mod:`repro.transient`).

    Computes ``pi(t)`` over the policy's ``transient_times`` grid (the
    package default grid when the policy names none) and reports the headline
    metrics *at the final grid time*.  Unlike the steady-state backends its
    metrics carry no ``mean_response_time`` — a time-dependent response time
    is not a point functional of ``pi(t)`` — but they include the
    ``evaluation_time`` itself, so exported rows are self-describing (the
    name deliberately differs from the reserved ``time`` sweep-axis name, so
    time-axis sweeps never emit two columns with the same header).

    Accepts scenario models as well as the homogeneous model (the transient
    engine reuses the truncated-CTMC generator builders of both).
    """

    name = "transient"
    supports_scenarios = True

    def solve(self, model: "UnreliableQueueModel", **options: Any) -> object:
        from ..transient import solve_transient

        return solve_transient(model, **options)

    def metrics(self, solution: Any) -> dict[str, float]:
        return {
            "mean_queue_length": float(solution.mean_queue_length[-1]),
            "availability": float(solution.availability[-1]),
            "probability_empty": float(solution.probability_empty[-1]),
            "probability_all_inoperative": float(solution.probability_all_inoperative[-1]),
            "evaluation_time": float(solution.times[-1]),
        }

    def options_from_policy(self, policy: "SolverPolicy") -> dict[str, object]:
        options: dict[str, object] = {}
        if policy.transient_times:
            options["times"] = policy.transient_times
        if policy.representation != "auto":
            options["representation"] = policy.representation
        return options


def builtin_solvers() -> tuple[Solver, ...]:
    """Fresh instances of the five built-in backends, in trusted order."""
    return (
        SpectralSolver(),
        GeometricSolver(),
        TruncatedCTMCSolver(),
        SimulationSolver(),
        TransientSolver(),
    )


#: The built-in solver names in the order the library trusts them.  The
#: steady-state backends come first (their order is the default fallback
#: vocabulary); ``transient`` answers a different question and only runs when
#: a policy names it explicitly.
BUILTIN_SOLVER_NAMES = ("spectral", "geometric", "ctmc", "simulate", "transient")
