"""The shared solution cache, keyed by full model parameterisation + policy.

One :class:`SolutionCache` can back every call site that evaluates models —
the :func:`repro.solvers.solve` facade, :func:`repro.solvers.solve_many`
batches, :class:`~repro.sweeps.SweepRunner` instances and the optimisation
helpers — so a configuration solved anywhere is never solved again.

Process safety
--------------
The cache is *parent-owned*: worker processes never see it.  During parallel
fan-out, :func:`~repro.solvers.facade.solve_many` deduplicates pending work
by cache key before submitting tasks, workers return picklable
:class:`~repro.solvers.base.SolveOutcome` records, and the parent merges them
back into the cache.  Repeated grid points therefore cost one solve even when
the batch is spread over a :class:`~concurrent.futures.ProcessPoolExecutor`.
A :class:`threading.Lock` additionally makes the cache safe to share between
threads in the parent.

Keys
----
:func:`distribution_key` turns a period distribution into a hashable,
*value-based* stand-in.  Library distributions implement
:meth:`~repro.distributions.base.Distribution.parameter_key`, so the key is
``(type name, parameter tuple)`` — two distributions of different types, or
of the same type with different parameters, never share a key (the old
``repr``-based fallback collided for distinct parameterisations with equal
mean and SCV).  Unknown third-party distributions fall back to the instance
itself when hashable, else to a type-qualified repr fortified with the first
three moments.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from collections.abc import Mapping
from pathlib import Path
from typing import TYPE_CHECKING

from ..exceptions import CachePersistenceError
from .base import SolveOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..queueing.model import UnreliableQueueModel
    from .policy import SolverPolicy

#: A cache key: hashable tuple identifying one (model, policy) evaluation.
CacheKey = tuple


def distribution_key(distribution: object) -> object:
    """A hashable, value-based stand-in for a period distribution."""
    key_method = getattr(distribution, "parameter_key", None)
    if key_method is not None:
        try:
            return (type(distribution).__qualname__, tuple(key_method()))
        except NotImplementedError:
            pass
    try:
        hash(distribution)
    except TypeError:
        # Unhashable and without a parameter_key: a bare repr can collide for
        # distinct parameterisations (the default Distribution repr shows only
        # mean and SCV), so fortify the key with the first three moments.
        moments = tuple(distribution.moment(k) for k in (1, 2, 3))
        return (type(distribution).__qualname__, repr(distribution), moments)
    return distribution


def solution_cache_key(model: "UnreliableQueueModel", policy: "SolverPolicy") -> CacheKey:
    """The memoisation key of one evaluation: full model parameters + policy.

    Models that define ``solution_key()`` (e.g.
    :class:`~repro.scenarios.ScenarioModel`, whose parameterisation is a group
    structure rather than the homogeneous field set) provide their own
    value-based key; the homogeneous model is keyed by its five fields.
    """
    key_method = getattr(model, "solution_key", None)
    if key_method is not None:
        return (*key_method(), policy)
    return (
        model.num_servers,
        model.arrival_rate,
        model.service_rate,
        distribution_key(model.operative),
        distribution_key(model.inoperative),
        policy,
    )


#: Snapshot format version written by :meth:`SolutionCache.spill`; bumped on
#: any incompatible change to the key/outcome encoding.
SPILL_FORMAT_VERSION = 1


class _UnspillableKeyError(Exception):
    """A cache key contains a value the JSON snapshot codec cannot represent."""


def _encode_key_part(value: object) -> object:
    """One key component as a tagged, JSON-representable value.

    Cache keys are hashable trees of value types (numbers, strings, tuples,
    :class:`~repro.solvers.policy.SolverPolicy` instances); the tags make the
    round trip exact — ``["t", ...]`` decodes back to a tuple, never a list,
    so a loaded key is *equal* to the key it was spilled from.  Third-party
    objects that fall back to instance keying are unspillable: the entry is
    skipped rather than persisted under a key that could never match again.
    """
    from .policy import SolverPolicy

    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, tuple):
        return ["t", [_encode_key_part(item) for item in value]]
    if isinstance(value, SolverPolicy):
        return [
            "p",
            {
                "order": list(value.order),
                "simulate_horizon": value.simulate_horizon,
                "simulate_seed": value.simulate_seed,
                "simulate_num_batches": value.simulate_num_batches,
                "simulate_warmup_fraction": value.simulate_warmup_fraction,
                "transient_times": list(value.transient_times),
                "representation": value.representation,
            },
        ]
    raise _UnspillableKeyError(f"cannot persist key component of type {type(value).__name__}")


def _decode_key_part(value: object) -> object:
    """The inverse of :func:`_encode_key_part` (raises on malformed input)."""
    from .policy import SolverPolicy

    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, list) and len(value) == 2 and value[0] == "f":
        return float(value[1])
    if isinstance(value, list) and len(value) == 2 and value[0] == "t":
        return tuple(_decode_key_part(item) for item in value[1])
    if isinstance(value, list) and len(value) == 2 and value[0] == "p":
        options = dict(value[1])
        options["order"] = tuple(options.get("order", ()))
        options["transient_times"] = tuple(options.get("transient_times", ()))
        return SolverPolicy(**options)
    raise _UnspillableKeyError(f"unrecognised encoded key component {value!r}")


class SolutionCache:
    """A thread-safe, optionally size-bounded memo of :class:`SolveOutcome` records.

    Parameters
    ----------
    enabled:
        A disabled cache keeps counting lookups (every one a miss) but never
        stores anything; it exists so callers can switch memoisation off
        without changing their control flow.
    maxsize:
        Upper bound on the number of memoised outcomes; the least recently
        *used* entry (lookups and stores both refresh recency) is evicted
        when the bound is exceeded, and :meth:`stats` counts the evictions.
        ``None`` (the default) keeps the cache unbounded — the historical
        behaviour — but long-running sweep workloads over large grids should
        set a bound, since every distinct configuration otherwise stays
        resident forever.
    """

    def __init__(self, *, enabled: bool = True, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be None or >= 1, got {maxsize}")
        self._enabled = bool(enabled)
        self._maxsize = maxsize
        self._data: OrderedDict[CacheKey, SolveOutcome] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._solves = 0
        self._evictions = 0
        self._spills = 0
        self._spilled_entries = 0
        self._loads = 0
        self._loaded_entries = 0

    @property
    def enabled(self) -> bool:
        """Whether the cache stores outcomes at all."""
        return self._enabled

    @property
    def maxsize(self) -> int | None:
        """The eviction bound (``None`` = unbounded)."""
        return self._maxsize

    def key(self, model: "UnreliableQueueModel", policy: "SolverPolicy") -> CacheKey:
        """The cache key of one ``(model, policy)`` evaluation."""
        return solution_cache_key(model, policy)

    @staticmethod
    def _isolated(outcome: SolveOutcome) -> SolveOutcome:
        """A copy whose metrics dict is private to the receiver.

        Outcomes are handed to many independent callers; without this, one
        caller mutating ``outcome.metrics`` (e.g. annotating a result) would
        silently rewrite the cached entry for everyone else.
        """
        return outcome._replace(metrics=dict(outcome.metrics))

    def _evict_over_bound(self) -> None:
        """Drop least-recently-used entries until the bound holds (lock held)."""
        if self._maxsize is None:
            return
        while len(self._data) > self._maxsize:
            self._data.popitem(last=False)
            self._evictions += 1

    def lookup(self, key: CacheKey) -> SolveOutcome | None:
        """The cached outcome for ``key``, counting a hit or a miss."""
        with self._lock:
            outcome = self._data.get(key) if self._enabled else None
            if outcome is None:
                self._misses += 1
                return None
            self._hits += 1
            self._data.move_to_end(key)
            return self._isolated(outcome)

    def probe(self, key: CacheKey) -> SolveOutcome | None:
        """A speculative lookup that counts a hit when found, but never a miss.

        The serving scheduler probes the cache before *scheduling* work; when
        the probe misses, the very same key is looked up again (and missed
        again) by :func:`~repro.solvers.solve_many` as the batch executes.
        Counting both would double every miss and halve the reported hit
        rate, so the probe contributes only its hits and leaves the
        authoritative miss to the evaluation path.
        """
        with self._lock:
            outcome = self._data.get(key) if self._enabled else None
            if outcome is None:
                return None
            self._hits += 1
            self._data.move_to_end(key)
            return self._isolated(outcome)

    def store(self, key: CacheKey, outcome: SolveOutcome) -> None:
        """Memoise one outcome (no-op when disabled)."""
        if not self._enabled:
            return
        with self._lock:
            self._data[key] = self._isolated(outcome)
            self._data.move_to_end(key)
            self._evict_over_bound()

    def merge(self, outcomes: Mapping[CacheKey, SolveOutcome]) -> None:
        """Merge worker-computed outcomes back into the parent cache."""
        if not self._enabled:
            return
        with self._lock:
            for key, outcome in outcomes.items():
                self._data[key] = self._isolated(outcome)
                self._data.move_to_end(key)
            self._evict_over_bound()

    def record_solves(self, count: int) -> None:
        """Record that ``count`` actual solver evaluations were performed."""
        with self._lock:
            self._solves += count

    def stats(self) -> dict[str, int | float | None]:
        """Hit/miss/solve/eviction counters, current size/bound and hit rate.

        This is the payload the service's ``/stats`` endpoint and the
        ``repro cache-stats`` subcommand report verbatim, so the keys are
        part of the serving protocol: ``hits``, ``misses``, ``hit_rate``
        (``0.0`` before the first lookup), ``size``, ``maxsize`` (``None``
        = unbounded), ``solves``, ``evictions``, and the persistence
        counters ``spills``/``spilled_entries``/``loads``/``loaded_entries``.
        """
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / lookups if lookups else 0.0,
                "size": len(self._data),
                "maxsize": self._maxsize,
                "solves": self._solves,
                "evictions": self._evictions,
                "spills": self._spills,
                "spilled_entries": self._spilled_entries,
                "loads": self._loads,
                "loaded_entries": self._loaded_entries,
            }

    # -- persistence -------------------------------------------------------

    def spill(self, path: str | Path) -> int:
        """Snapshot the memoised outcomes to ``path`` as JSON, atomically.

        The snapshot is written to a sibling temporary file first and moved
        into place with :func:`os.replace`, so a reader (or a crash mid-write)
        never observes a torn file.  Entries whose key cannot be represented
        in JSON (third-party objects without ``parameter_key()``) are skipped
        — persistence is best-effort by design.  Returns the number of
        entries written.  Counters are *not* persisted: a loaded cache starts
        its statistics fresh, recording only what this process observes.
        """
        path = Path(path)
        with self._lock:
            items = list(self._data.items())
        entries: list[dict[str, object]] = []
        for key, outcome in items:
            try:
                encoded = _encode_key_part(key)
            except _UnspillableKeyError:
                continue
            entries.append(
                {
                    "key": encoded,
                    "outcome": {
                        "solver": outcome.solver,
                        "stable": outcome.stable,
                        "metrics": dict(outcome.metrics),
                        "error": outcome.error,
                    },
                }
            )
        payload = {"version": SPILL_FORMAT_VERSION, "entries": entries}
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        temporary.write_text(json.dumps(payload) + "\n")
        os.replace(temporary, path)
        with self._lock:
            self._spills += 1
            self._spilled_entries += len(entries)
        return len(entries)

    def load(self, path: str | Path) -> int:
        """Merge a :meth:`spill` snapshot back in; returns the entries loaded.

        A missing file is a cold start, not an error (returns ``0``).  A
        corrupt or incompatible snapshot raises
        :class:`~repro.exceptions.CachePersistenceError` so the caller can
        decide whether to serve cold or abort.  Entries referencing solvers
        absent from this process's registry are skipped individually.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return 0
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CachePersistenceError(f"cache snapshot {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != SPILL_FORMAT_VERSION:
            raise CachePersistenceError(
                f"cache snapshot {path} has version {payload.get('version')!r}; "
                f"this build reads version {SPILL_FORMAT_VERSION}"
            )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise CachePersistenceError(f"cache snapshot {path} has no entry list")
        loaded: dict[CacheKey, SolveOutcome] = {}
        from ..exceptions import ParameterError

        for entry in entries:
            try:
                key = _decode_key_part(entry["key"])
                record = entry["outcome"]
                outcome = SolveOutcome(
                    solver=record["solver"],
                    stable=bool(record["stable"]),
                    metrics={str(name): value for name, value in record["metrics"].items()},
                    error=record["error"],
                )
            except (_UnspillableKeyError, ParameterError, KeyError, TypeError, AttributeError):
                # One bad entry (an unknown solver name in a policy, a
                # hand-edited file) must not poison the rest of the snapshot.
                continue
            if not isinstance(key, tuple):
                continue
            loaded[key] = outcome
        self.merge(loaded)
        with self._lock:
            self._loads += 1
            self._loaded_entries += len(loaded)
        return len(loaded)

    def clear(self) -> None:
        """Drop all memoised outcomes and reset every counter."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._solves = 0
            self._evictions = 0
            self._spills = 0
            self._spilled_entries = 0
            self._loads = 0
            self._loaded_entries = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._data


#: Eviction bound of the process-wide shared cache.  Far above any single
#: workload's working set, but it keeps a long-lived process that sweeps many
#: large grids from accumulating solutions without limit.
SHARED_CACHE_MAXSIZE = 10_000

#: The process-wide cache used by the facade when no cache is passed.
_SHARED_CACHE = SolutionCache(maxsize=SHARED_CACHE_MAXSIZE)


def shared_cache() -> SolutionCache:
    """The process-wide :class:`SolutionCache` shared across call sites."""
    return _SHARED_CACHE
