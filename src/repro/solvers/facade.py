"""The solve facade: the library's single solver-fallback implementation.

:func:`evaluate` is the **only** place the spectral → geometric → ctmc →
simulate fallback chain exists; :func:`solve` adds shared-cache memoisation
on top, and :func:`solve_many` adds batch deduplication and process
parallelism.  Every consumer — the sweep engine, the cost optimiser, the
sizing helpers, the CLI and the experiment drivers — dispatches through this
module, so fallback semantics cannot drift between call sites.

Parallel fan-out is parent-owned: pending work is deduplicated by cache key
*before* tasks are submitted, worker processes evaluate pure
``(model, policy)`` functions and return picklable outcomes, and the parent
merges the results back into the cache.  Repeated grid points are therefore
never solved twice, serial or parallel.
"""

from __future__ import annotations

import asyncio
import functools
import os
import time
import warnings
from collections.abc import Iterable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import TYPE_CHECKING

from ..exceptions import ParameterError, SimulationError, SolverError
from ..obs.metrics import MetricsRegistry, numerics_registry
from ..obs.profiling import AttemptRecord, capture_attempts, record_attempt
from .base import INFINITE_METRICS, SolveOutcome
from .cache import CacheKey, SolutionCache, distribution_key, shared_cache
from .policy import SolverPolicy, as_policy
from .registry import SolverRegistry, default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..queueing.model import UnreliableQueueModel

#: Exception types that make one solver fall through to the next in a policy.
FALLBACK_EXCEPTIONS = (SolverError, ParameterError, SimulationError, NotImplementedError)


def _evaluate_capturing(
    model: "UnreliableQueueModel",
    policy: SolverPolicy | None,
    registry: SolverRegistry | None,
    seeds: dict[str, object] | None = None,
) -> tuple[SolveOutcome, dict[str, object]]:
    """Evaluate one model, threading warm starts in and native solutions out.

    ``seeds`` maps solver names to the native solution of a *nearby* model;
    each is forwarded as the ``warm_start`` option to solvers that declare
    :attr:`~repro.solvers.base.Solver.supports_warm_start`.  The returned
    mapping carries the winning solver's native solution (same keying) so the
    batch path can seed the next grid point — it never leaves this module.
    """
    policy = as_policy(policy, registry=registry)
    registry = registry if registry is not None else default_registry()
    if not model.is_stable:
        return SolveOutcome(None, False, dict(INFINITE_METRICS), None), {}
    numerics = numerics_registry()
    failures: list[str] = []
    for name in policy.order:
        warm = False
        seeded = False
        attempt_started = time.perf_counter()
        try:
            solver = registry.get(name)
            if not solver.supports(model):
                reason = solver.unsupported_reason(model)
                failures.append(f"{name}: {reason}")
                record_attempt(
                    name, time.perf_counter() - attempt_started, ok=False, error=reason
                )
                _count_attempt(numerics, name, "unsupported")
                continue
            options = solver.options_from_policy(policy)
            warm = bool(getattr(solver, "supports_warm_start", False))
            seeded = bool(warm and seeds and name in seeds)
            if seeded and seeds is not None:
                options["warm_start"] = seeds[name]
            solution = solver.solve(model, **options)
            metrics = dict(solver.metrics(solution))
        except FALLBACK_EXCEPTIONS as exc:
            failures.append(f"{name}: {exc}")
            record_attempt(
                name, time.perf_counter() - attempt_started, ok=False, error=str(exc)
            )
            _count_attempt(numerics, name, "failed")
            continue
        record_attempt(
            name, time.perf_counter() - attempt_started, ok=True, warm_start=seeded
        )
        _count_attempt(numerics, name, "ok")
        if seeded:
            numerics.counter(
                "repro_solver_warm_start_hits_total",
                "Successful solves that were seeded from a neighbouring solution.",
                labels={"solver": name},
            ).inc()
        return SolveOutcome(name, True, metrics, None), ({name: solution} if warm else {})
    numerics.counter(
        "repro_solver_fallback_exhausted_total",
        "Evaluations in which every solver in the policy order failed.",
    ).inc()
    return SolveOutcome(None, True, {}, "; ".join(failures) or "no solver succeeded"), {}


def _count_attempt(numerics: "MetricsRegistry", solver: str, outcome: str) -> None:
    """One fallback-chain attempt in the numerical-health registry."""
    numerics.counter(
        "repro_solver_attempts_total",
        "Fallback-chain attempts, by solver and outcome.",
        labels={"solver": solver, "outcome": outcome},
    ).inc()


def evaluate(
    model: "UnreliableQueueModel",
    policy: SolverPolicy | None = None,
    *,
    registry: SolverRegistry | None = None,
) -> SolveOutcome:
    """Evaluate one model under a policy; a pure function of its arguments.

    Unstable models are not errors: they yield ``stable=False`` with infinite
    queue-length/response-time metrics (what cost curves over a server-count
    axis expect).  Each solver in the policy order is tried in turn; a failed
    capability check or a :data:`FALLBACK_EXCEPTIONS` failure falls through
    to the next name, and a row with every solver failed carries the
    concatenated diagnostics.
    """
    outcome, _ = _evaluate_capturing(model, policy, registry)
    return outcome


def _resolve_cache(cache: SolutionCache | bool | None) -> SolutionCache | None:
    """Map the user-facing ``cache`` argument onto a cache instance.

    ``None`` selects the process-wide shared cache, ``False`` disables
    caching entirely, ``True`` is an explicit alias for the shared cache, and
    a :class:`SolutionCache` instance is used as-is.
    """
    if cache is None or cache is True:
        return shared_cache()
    if cache is False:
        return None
    return cache


def solve(
    model: "UnreliableQueueModel",
    policy: SolverPolicy | str | Sequence[str] | None = None,
    *,
    cache: SolutionCache | bool | None = None,
    registry: SolverRegistry | None = None,
) -> SolveOutcome:
    """Solve one model through the registry, memoising in the shared cache.

    Parameters
    ----------
    model:
        The queueing model to evaluate.
    policy:
        A :class:`SolverPolicy`, a solver name, or a sequence of names
        forming a fallback chain (default: spectral → geometric).
    cache:
        ``None`` (default) uses the process-wide shared cache, ``False``
        disables memoisation, and an explicit :class:`SolutionCache` scopes
        it (what :class:`~repro.sweeps.SweepRunner` does).
    registry:
        An alternative solver registry (default: the global one).
    """
    policy = as_policy(policy, registry=registry)
    cache_obj = _resolve_cache(cache)
    if cache_obj is None:
        return evaluate(model, policy, registry=registry)
    key = cache_obj.key(model, policy)
    cached = cache_obj.lookup(key)
    if cached is not None:
        return cached
    outcome = evaluate(model, policy, registry=registry)
    cache_obj.record_solves(1)
    cache_obj.store(key, outcome)
    return outcome


def _broadcast_policies(
    policy: object, count: int, registry: SolverRegistry | None
) -> list[SolverPolicy]:
    """One policy per model: broadcast a scalar spec, validate a sequence."""
    if (
        policy is not None
        and not isinstance(policy, (str, SolverPolicy))
        and isinstance(policy, Iterable)
    ):
        items = list(policy)
        if items and all(isinstance(item, SolverPolicy) for item in items):
            if len(items) != count:
                raise ParameterError(
                    f"got {len(items)} policies for {count} models; "
                    "pass one policy per model or a single shared policy"
                )
            return items
        # Anything else iterable is a fallback chain shared by all models.
        policy = tuple(items)
    return [as_policy(policy, registry=registry)] * count


def _solve_task(
    task: tuple[int, "UnreliableQueueModel", SolverPolicy],
) -> tuple[int, SolveOutcome]:
    """Worker entry point: evaluate one model and tag it with its index."""
    index, model, policy = task
    return index, evaluate(model, policy)


def _parameter_vector(model: "UnreliableQueueModel") -> tuple[float, ...]:
    """The numeric leaves of a model's solution key, for grid-distance ordering.

    Models of the same family (same structure, different rates) yield vectors
    of equal length whose Euclidean distance is a meaningful "how far apart on
    the sweep grid" measure; structurally different models yield different
    lengths, which the batch path treats as "no ordering possible".
    """
    key_method = getattr(model, "solution_key", None)
    if key_method is not None:
        key: tuple = tuple(key_method())
    else:
        key = (
            model.num_servers,
            model.arrival_rate,
            model.service_rate,
            distribution_key(model.operative),
            distribution_key(model.inoperative),
        )
    leaves: list[float] = []

    def visit(value: object) -> None:
        if isinstance(value, bool):
            leaves.append(float(value))
        elif isinstance(value, (int, float)):
            leaves.append(float(value))
        elif isinstance(value, (tuple, list)):
            for item in value:
                visit(item)

    visit(key)
    return tuple(leaves)


def _grid_order(vectors: list[tuple[float, ...]]) -> list[int] | None:
    """Greedy nearest-neighbour ordering of grid points, or ``None``.

    Returns ``None`` when the batch has no common parameterisation (vector
    lengths differ, or no numeric parameters at all), in which case the
    caller keeps the submission order and skips warm-starting.
    """
    if len({len(vector) for vector in vectors}) != 1 or not vectors[0]:
        return None
    # Normalise each dimension by its range across the batch so "one more
    # server" and "0.1 more arrivals/sec" are commensurable steps.
    columns = list(zip(*vectors))
    spans = [max(column) - min(column) or 1.0 for column in columns]
    scaled = [
        tuple(value / span for value, span in zip(vector, spans)) for vector in vectors
    ]

    def distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
        return sum((x - y) ** 2 for x, y in zip(a, b))

    remaining = set(range(1, len(vectors)))
    order = [0]
    while remaining:
        last = scaled[order[-1]]
        closest = min(remaining, key=lambda position: distance(scaled[position], last))
        remaining.discard(closest)
        order.append(closest)
    return order


def _evaluate_recorded(
    model: "UnreliableQueueModel",
    policy: SolverPolicy | None,
    registry: SolverRegistry | None,
    seeds: dict[str, object] | None,
    profile: dict[int, list[AttemptRecord]] | None,
    index: int,
) -> tuple[SolveOutcome, dict[str, object]]:
    """One evaluation, optionally capturing its attempts into ``profile[index]``."""
    if profile is None:
        return _evaluate_capturing(model, policy, registry, seeds)
    with capture_attempts() as attempts:
        result = _evaluate_capturing(model, policy, registry, seeds)
    profile[index] = list(attempts)
    return result


def _execute_serial(
    tasks: list[tuple[int, "UnreliableQueueModel", SolverPolicy]],
    registry: SolverRegistry | None,
    profile: dict[int, list[AttemptRecord]] | None = None,
) -> list[tuple[int, SolveOutcome]]:
    """Evaluate a batch in-process, warm-starting along the parameter grid.

    Grid points are visited in greedy nearest-neighbour order and each solve
    is seeded with the native solution of its *nearest already-solved*
    neighbour (initial iterate + truncation level), which is what makes dense
    sweeps through the iterative CTMC solver cheap: consecutive grid points
    differ by one parameter nudge, so the neighbour's solution is already an
    excellent iterate.  Outcomes are identical to independent solves up to
    solver tolerance.
    """
    if len(tasks) < 2:
        return [
            (index, _evaluate_recorded(model, policy, registry, None, profile, index)[0])
            for index, model, policy in tasks
        ]
    vectors = [_parameter_vector(model) for _, model, _ in tasks]
    order = _grid_order(vectors)
    if order is None:
        return [
            (index, _evaluate_recorded(model, policy, registry, None, profile, index)[0])
            for index, model, policy in tasks
        ]
    results: list[tuple[int, SolveOutcome]] = []
    solved: list[tuple[int, dict[str, object]]] = []  # (task position, native solutions)

    def distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
        return sum((x - y) ** 2 for x, y in zip(a, b))

    for position in order:
        index, model, policy = tasks[position]
        seeds: dict[str, object] = {}
        if solved:
            _, seeds = min(
                solved, key=lambda item: distance(vectors[item[0]], vectors[position])
            )
        outcome, solutions = _evaluate_recorded(
            model, policy, registry, seeds, profile, index
        )
        if solutions:
            solved.append((position, solutions))
        results.append((index, outcome))
    return results


def _solve_chunk(
    chunk: list[tuple[int, "UnreliableQueueModel", SolverPolicy]],
) -> list[tuple[int, SolveOutcome]]:
    """Worker entry point for one contiguous grid neighbourhood.

    Each worker process receives a *contiguous* run of the greedy
    nearest-neighbour ordering and replays the serial warm-start walk inside
    it, so every solve (after the chunk's first) is seeded from a solved
    neighbour of its own process — the parallel counterpart of the serial
    sweep seeding.  Workers dispatch through their own process-global
    registry, exactly like :func:`_solve_task` did.
    """
    return _execute_serial(chunk, None)


def _neighbourhood_chunks(
    tasks: list[tuple[int, "UnreliableQueueModel", SolverPolicy]],
    workers: int,
) -> list[list[tuple[int, "UnreliableQueueModel", SolverPolicy]]] | None:
    """Partition a batch into per-worker contiguous grid neighbourhoods.

    The batch is ordered by the same greedy nearest-neighbour walk the serial
    path uses, then cut into ``workers`` contiguous runs of near-equal size;
    consecutive members of a run are close on the parameter grid, which is
    what makes within-chunk warm starts effective.  ``None`` when the batch
    has no common parameterisation (mixed model families), in which case the
    caller falls back to unseeded per-task fan-out.
    """
    vectors = [_parameter_vector(model) for _, model, _ in tasks]
    order = _grid_order(vectors)
    if order is None:
        return None
    ordered = [tasks[position] for position in order]
    chunk_count = min(workers, len(ordered))
    size, remainder = divmod(len(ordered), chunk_count)
    chunks: list[list[tuple[int, "UnreliableQueueModel", SolverPolicy]]] = []
    start = 0
    for index in range(chunk_count):
        stop = start + size + (1 if index < remainder else 0)
        chunks.append(ordered[start:stop])
        start = stop
    return chunks


def _pool_probe() -> bool:
    """Trivial task used to check that worker processes can start at all."""
    return True


def default_max_workers() -> int:
    """The default worker count: the CPUs this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _execute_parallel(
    tasks: list[tuple[int, "UnreliableQueueModel", SolverPolicy]],
    max_workers: int,
    registry: SolverRegistry | None,
) -> list[tuple[int, SolveOutcome]]:
    workers = min(max_workers, len(tasks))
    chunksize = max(1, len(tasks) // (4 * workers))
    # Probe the pool with a trivial task first: environments where worker
    # processes cannot start at all (no /dev/shm, forbidden fork) fail here
    # and degrade to the serial path.  The probe deliberately does NOT guard
    # the real map below — a worker crashing on an actual grid point (e.g.
    # OOM on a pathological configuration) is a genuine error that must
    # propagate, not be silently replayed serially in-process.
    executor = None
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
        executor.submit(_pool_probe).result()
    except (OSError, RuntimeError):  # pragma: no cover - sandboxed envs
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        warnings.warn(
            "worker processes are unavailable; evaluating the batch serially",
            RuntimeWarning,
            stacklevel=4,
        )
        # The degraded path runs in-process, so unlike real workers it can —
        # and must — honour the caller's registry.  Running serially also
        # restores the full warm-start walk over the whole batch.
        return _execute_serial(tasks, registry)
    chunks = _neighbourhood_chunks(tasks, workers)
    try:
        if chunks is not None:
            # One contiguous neighbourhood per worker: each process seeds its
            # solves from its own already-solved neighbours.
            mapped = executor.map(_solve_chunk, chunks, chunksize=1)
            results = [result for chunk_results in mapped for result in chunk_results]
        else:
            results = list(executor.map(_solve_task, tasks, chunksize=chunksize))
    except BaseException:
        # A KeyboardInterrupt (or an async cancellation surfacing here) must
        # abort the batch promptly: cancel every queued item and return
        # without waiting for in-flight ones, instead of the default
        # shutdown(wait=True) that would block until the slowest grid point
        # finishes solving.
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    executor.shutdown()
    return results


def solve_many(
    models: Iterable["UnreliableQueueModel"],
    policy: object = None,
    *,
    parallel: bool = False,
    max_workers: int | None = None,
    cache: SolutionCache | bool | None = None,
    registry: SolverRegistry | None = None,
    profile: dict[int, list[AttemptRecord]] | None = None,
) -> list[SolveOutcome]:
    """Solve a batch of models, deduplicated and optionally in parallel.

    Parameters
    ----------
    models:
        The models to evaluate; the result list is aligned with their order.
    policy:
        A single policy specification shared by all models (anything
        :func:`~repro.solvers.policy.as_policy` accepts), or a sequence of
        :class:`SolverPolicy` instances, one per model.
    parallel:
        Fan the batch out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
        Results are identical to the serial path; only wall-clock changes.
    max_workers:
        Worker-process count (defaults to the usable CPU count).
    cache:
        As in :func:`solve`.  With an enabled cache, models sharing a cache
        key are solved **once** per batch — duplicates are resolved from the
        in-flight result, serial or parallel.
    registry:
        An alternative registry for the serial path.  Worker processes always
        dispatch through their own process-global registry, so parallel
        batches require solvers registered at import time.
    profile:
        A mapping the serial path fills with per-backend
        :class:`~repro.obs.profiling.AttemptRecord` lists, keyed by batch
        index.  Only *freshly solved* models appear (cache hits and coalesced
        duplicates made no attempts), and the parallel path skips it —
        attempts made in worker processes do not travel back.
    """
    models = list(models)
    policies = _broadcast_policies(policy, len(models), registry)
    if max_workers is None:
        max_workers = default_max_workers()
    if max_workers < 1:
        raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
    cache_obj = _resolve_cache(cache)

    outcomes: dict[int, SolveOutcome] = {}
    keys: dict[int, CacheKey] = {}
    pending: list[int] = []
    if cache_obj is not None:
        for index, (model, item_policy) in enumerate(zip(models, policies)):
            keys[index] = cache_obj.key(model, item_policy)
            cached = cache_obj.lookup(keys[index])
            if cached is not None:
                outcomes[index] = cached
            else:
                pending.append(index)
    else:
        pending = list(range(len(models)))

    if pending:
        # Deduplicate by cache key so repeated configurations are solved once
        # per batch (a disabled cache means "no memoisation", so it opts out).
        deduplicate = cache_obj is not None and cache_obj.enabled
        groups: dict[CacheKey, list[int]] = {}
        if deduplicate:
            for index in pending:
                groups.setdefault(keys[index], []).append(index)
            unique = [indices[0] for indices in groups.values()]
        else:
            unique = pending

        tasks = [(index, models[index], policies[index]) for index in unique]
        if parallel and len(tasks) > 1 and max_workers > 1:
            solved = _execute_parallel(tasks, max_workers, registry)
        else:
            solved = _execute_serial(tasks, registry, profile)
        count = 0
        for index, outcome in solved:
            count += 1
            outcomes[index] = outcome
            if cache_obj is not None:
                cache_obj.store(keys[index], outcome)
        if cache_obj is not None:
            cache_obj.record_solves(count)
        if deduplicate:
            for key, indices in groups.items():
                for duplicate in indices[1:]:
                    outcomes[duplicate] = outcomes[indices[0]]

    return [outcomes[index] for index in range(len(models))]


async def solve_many_async(
    models: Iterable["UnreliableQueueModel"],
    policy: object = None,
    *,
    parallel: bool = False,
    max_workers: int | None = None,
    cache: SolutionCache | bool | None = None,
    registry: SolverRegistry | None = None,
    executor: Executor | None = None,
    profile: dict[int, list[AttemptRecord]] | None = None,
) -> list[SolveOutcome]:
    """Awaitable :func:`solve_many`: the batch runs off the event loop.

    Solver evaluations are CPU-bound, so running them on the loop thread
    would stall every other coroutine (the serving layer's accept loop, its
    batch timers, its health endpoint) for the duration of the batch.  This
    wrapper materialises the model list eagerly — generators must not be
    consumed from another thread — and dispatches the otherwise-identical
    :func:`solve_many` call onto ``executor`` (the loop's default thread pool
    when ``None``).  The :class:`SolutionCache` is thread-safe, so cached and
    coalesced lookups behave exactly as in the synchronous path.
    """
    call = functools.partial(
        solve_many,
        list(models),
        policy,
        parallel=parallel,
        max_workers=max_workers,
        cache=cache,
        registry=registry,
        profile=profile,
    )
    return await asyncio.get_running_loop().run_in_executor(executor, call)
