"""The :class:`Solver` protocol and the normalised :class:`SolveOutcome`.

Every steady-state backend of the library — the exact spectral expansion, the
heavy-load geometric approximation, the truncated-CTMC reference and the
discrete-event simulator — answers the same questions about an
:class:`~repro.queueing.model.UnreliableQueueModel`.  A :class:`Solver` wraps
one such backend behind a uniform surface:

* ``name`` — the registry key users put in solver policies;
* :meth:`Solver.supports` — a cheap capability check against a model (the
  analytical solvers require a Markovian environment, the simulator accepts
  anything);
* :meth:`Solver.solve` — run the backend and return its native solution
  object (a :class:`~repro.queueing.solution_base.QueueSolution` subclass, or
  the simulator's estimate record);
* :meth:`Solver.metrics` — normalise a native solution into the flat metric
  mapping the sweep engine, the cost optimiser and the CLI consume.

Third parties subclass :class:`Solver` and register instances with
:func:`repro.solvers.register_solver`; registered names participate in
fallback policies exactly like the built-in backends.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, NamedTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..queueing.model import UnreliableQueueModel
    from .policy import SolverPolicy

#: Metrics reported for unstable models: the queue grows without bound.
INFINITE_METRICS: dict[str, float] = {
    "mean_queue_length": float("inf"),
    "mean_response_time": float("inf"),
}

class SimulateDefaults(NamedTuple):
    """Default simulation options, shared by :class:`~repro.solvers.SolverPolicy`
    field defaults and the simulation backend's keyword defaults so the two
    cannot drift apart."""

    horizon: float = 50_000.0
    warmup_fraction: float = 0.1
    num_batches: int = 10
    seed: int = 0


#: The shared defaults instance both the policy and the backend read.
SIMULATE_DEFAULTS = SimulateDefaults()


class SolveOutcome(NamedTuple):
    """The normalised result of evaluating one model under a solver policy.

    The class is a named tuple on purpose: outcomes are stored in the shared
    :class:`~repro.solvers.cache.SolutionCache`, shipped between worker
    processes during parallel fan-out, and unpacked positionally by older
    call sites (``solver, stable, metrics, error = outcome``).

    Attributes
    ----------
    solver:
        Name of the solver that produced the metrics; ``None`` when the model
        was unstable or every solver in the policy failed.
    stable:
        Whether the model satisfied the stability condition (paper Eq. 11).
        Unstable models are not errors: they carry infinite metrics.
    metrics:
        Flat mapping of metric name to value (``mean_queue_length``,
        ``mean_response_time``, plus solver-specific extras such as
        ``decay_rate`` or ``utilisation``).
    error:
        Concatenated per-solver failure messages when no solver succeeded.
    """

    solver: str | None
    stable: bool
    metrics: dict[str, float]
    error: str | None

    @property
    def ok(self) -> bool:
        """Whether the outcome carries usable metrics."""
        return self.error is None


class Solver(abc.ABC):
    """One steady-state backend, dispatchable by name through the registry.

    Subclasses set :attr:`name` and implement :meth:`solve` and
    :meth:`metrics`; :meth:`supports` defaults to accepting every model and
    should be overridden by backends with structural requirements.
    """

    #: Registry key of the solver; must be unique within a registry.
    name: str = ""

    #: Whether the backend evaluates :class:`~repro.scenarios.ScenarioModel`
    #: instances (heterogeneous server groups, limited repair crews) — the
    #: declared scenario contract the ``RPR004`` lint rule checks for.
    #: Backends that *touch* scenario models must either set this or raise
    #: :class:`~repro.exceptions.UnsupportedScenarioError` so fallback chains
    #: can skip them deterministically.
    supports_scenarios: bool = False

    #: Whether :meth:`solve` accepts a ``warm_start`` keyword carrying the
    #: native solution of a *nearby* model (same family).  The serial path of
    #: :func:`~repro.solvers.facade.solve_many` orders grid points by
    #: parameter distance and seeds each solve from its nearest solved
    #: neighbour when the winning solver declares this.
    supports_warm_start: bool = False

    def supports(self, model: "UnreliableQueueModel") -> bool:
        """Whether this solver can evaluate ``model`` at all.

        This is a *structural* check (e.g. "the period distributions admit a
        Markovian environment"), not a prediction of numerical success; a
        supported model may still raise
        :class:`~repro.exceptions.SolverError` from :meth:`solve`, which the
        fallback chain treats the same way.
        """
        return True

    def unsupported_reason(self, model: "UnreliableQueueModel") -> str:
        """A human-readable reason why :meth:`supports` returned False."""
        return f"model not supported by the {self.name!r} solver"

    @abc.abstractmethod
    def solve(self, model: "UnreliableQueueModel", **options: object) -> object:
        """Evaluate ``model`` and return the backend's native solution object."""

    @abc.abstractmethod
    def metrics(self, solution: object) -> dict[str, float]:
        """Normalise a native solution into the flat metric mapping."""

    def options_from_policy(self, policy: "SolverPolicy") -> dict[str, object]:
        """Extract this solver's keyword options from a policy.

        The base implementation returns no options; the simulation backend
        overrides it to pick up the ``simulate_*`` policy fields.
        """
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
