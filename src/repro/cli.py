"""Command-line interface for the library.

Four subcommands cover the everyday workflows:

``solve``
    Evaluate one model configuration and print the headline performance
    metrics.  ``--solver`` accepts any :mod:`repro.solvers` registry name
    (``spectral``, ``geometric``, ``ctmc``, ``simulate``, or a third-party
    registration) or ``both`` for the exact/approximate side-by-side view.

``fit``
    Run the Section-2 analysis pipeline on a breakdown-trace CSV: cleaning,
    moment estimation, Kolmogorov–Smirnov tests and the hyperexponential fit.

``reproduce``
    Run the paper's experiments (optionally the quick variants, optionally
    in parallel) and print the consolidated report.

``sweep``
    Evaluate a user-defined parameter grid (server counts x arrival rates)
    through the :mod:`repro.sweeps` engine, with solver fallback, optional
    process parallelism and CSV/JSON export.

``scenario``
    Evaluate a named preset from the :mod:`repro.scenarios` library —
    heterogeneous server groups and limited repair crews — through the
    scenario-capable solvers (``ctmc``, ``simulate``), with optional load
    and crew-size overrides.  ``--list`` prints the preset gallery
    (``--list --json`` emits it as machine-readable JSON).

``transient``
    Time-dependent analysis through :mod:`repro.transient`: expected queue
    length, point availability and empty/all-down probabilities over a time
    grid for the homogeneous model or any scenario preset, optional
    first-passage analysis (time to "all servers down" or "queue exceeds
    L"), and CSV/JSON export of the per-time rows.

``serve``
    Run the :mod:`repro.service` solver service: an asyncio HTTP server
    answering concurrent JSON queries (steady-state, scenario, transient)
    with request coalescing, batch scheduling and backpressure.  See
    ``repro serve --help`` for the endpoints and the tuning knobs.

``cache-stats``
    Print solution-cache statistics: of a running ``repro serve`` instance
    (``--url``), or of this process's shared cache.

``top``
    A live terminal dashboard over a running service's ``/metrics`` and
    ``/stats``: per-shard RPS, p50/p99 latency, queue depth, cache hit
    rates, shedding tiers and SLO budget burn, redrawn every ``--interval``
    seconds (``--once --json`` emits one machine-readable summary instead).

``lint``
    Run the :mod:`repro.analysis` static analyzer — the repo-specific
    ``RPR001`` ... ``RPR011`` rules (blocking calls in async code, cache-unsafe
    distributions, float equality in the numerical core, undeclared scenario
    support, unstable error codes, swallowed cancellation, mutable defaults,
    dense generator allocations on the CTMC hot paths, multiprocessing
    primitives created on the event loop, print/root-logger use in the
    service stack, wall-clock duration measurement) — over files or
    directories.  Text or ``--format json`` output; exit
    code 0 when clean, 1 with findings, 2 on usage errors.

The CLI is installed as ``python -m repro`` (see ``__main__.py``) and as the
``repro`` console script when the package is installed with pip.
``repro --version`` reports the installed package version.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Callable, Sequence
from pathlib import Path
from typing import NoReturn, TypeVar

from .data import read_trace_csv
from .distributions import Distribution, Exponential, HyperExponential
from .exceptions import ReproError
from .experiments import format_key_values, format_table, render_report, run_all_experiments
from .fitting import fit_exponential, fit_two_phase_from_moments
from .queueing import UnreliableQueueModel
from .scenarios import (
    REPRESENTATIONS,
    ScenarioModel,
    preset_description,
    preset_names,
    resolve_representation,
    scenario_preset,
)
from .solvers import SolverPolicy, solve as solve_model, solver_names
from .stats import EmpiricalDensity, estimate_moments, ks_test_grid
from .sweeps import SweepRunner, SweepSpec
from .transient import (
    INITIAL_CONDITIONS,
    TARGET_NAMES,
    first_passage_time,
    solve_transient,
)

_T = TypeVar("_T")


def _package_version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-unreliable-servers")
    except PackageNotFoundError:
        from . import __version__

        return __version__


class _OneLineErrorParser(argparse.ArgumentParser):
    """Top-level parser whose failures are one-line hints, not usage walls.

    An unknown subcommand (or a bad top-level flag) exits 2 with a single
    actionable line; subcommand parsers keep argparse's richer per-option
    diagnostics.
    """

    def error(self, message: str) -> NoReturn:
        self.exit(2, f"{self.prog}: error: {message} (run '{self.prog} --help' for usage)\n")


#: Endpoint and tuning documentation shown by ``repro serve --help``.
_SERVE_EPILOG = """\
endpoints:
  POST /solve    answer one JSON query, e.g.
                 {"query": "steady-state",
                  "model": {"servers": 10, "arrival_rate": 7.0}}
                 {"query": "scenario", "preset": "two-speed-cluster"}
                 {"query": "transient", "model": {...}, "times": [1, 5, 25]}
                 optional: "solvers" (fallback chain), "deadline" (seconds),
                 "simulate" ({"horizon", "seed", "num_batches",
                 "warmup_fraction"}).  Success: {"status": "ok", "solver",
                 "stable", "metrics", "cached", "coalesced", "elapsed_ms"}.
                 Failure: {"status": "error", "error": {"code", "message"}}
                 with codes bad-json, bad-request, unknown-solver,
                 unknown-preset, unstable-model, queue-full (429 +
                 Retry-After), load-shed (429, sharded tier), worker-crashed
                 (503, retryable), deadline-exceeded (504), solve-failed.
  GET /healthz   liveness + current queue depth (and, sharded, workers ready)
  GET /stats     uptime, scheduler counters (coalesced/batched/rejected)
                 and solution-cache statistics; with --workers N > 1 also
                 per-shard breakdowns, pool totals and shedding counters
  GET /metrics   Prometheus text exposition (version 0.0.4): per-shard
                 solve/queue-wait/cache-lookup latency histograms, the
                 scheduler, cache and front counters, solver numerical-health
                 series and the repro_slo_* gauges, all as repro_* series
  GET /traces    recently retained traces newest-first; ?slow=1 restricts to
                 the slow ring, ?limit=N bounds the count (default 32).
                 Sharded fronts fan the listing out to every shard worker.
  GET /traces/<id>  one retained trace's span tree (admission, queue-wait,
                 solve, ...); sharded fronts merge the owning worker's spans
                 into the front's re-based copy

observability:
  Every response carries an X-Trace-Id header and echoes the same id as
  "trace_id" in its JSON payload; requests slower than
  --slow-request-seconds emit their completed span trees to the log and
  stay queryable via GET /traces?slow=1.  Independently, every
  --trace-exemplar-interval-th trace is retained regardless of latency, so
  a representative healthy request survives ring churn.  'repro top --url
  http://host:port' renders the live dashboard over /metrics + /stats.
  --log-format json switches the service log to one JSON object per line
  (ts, level, event, trace_id, ...) for machine ingestion.

  --slo-queue-wait and --slo-solve-latency set rolling p99 targets; when
  either rolling p99 breaches its target the admission controller sheds
  cheapest-to-recompute query kinds first (429 load-shed) even while the
  queue is still shallow, and repro_slo_error_budget_total counts every
  request that individually missed a target.

tuning:
  --batch-window trades first-request latency for batching: concurrent
  distinct requests arriving within the window are solved as one
  solve_many() batch (identical requests are always coalesced to a single
  computation regardless of the window).  Raise it when clients burst many
  distinct configurations; lower it (or use 0) for latency-sensitive,
  low-concurrency traffic.  --max-queue bounds distinct pending
  computations; beyond it requests are rejected with 429 queue-full.

  --workers N > 1 starts the sharded tier: a front process consistent-hashes
  each request's solution key onto one of N worker processes (per-shard
  caches and coalescing stay exact), sheds cheapest-to-recompute query kinds
  first as load approaches N x max-queue (429 load-shed with shard and
  shed_tier), and restarts crashed workers under the same shard id.
  --cache-dir persists each shard's cache across restarts (atomic JSON
  snapshots, spilled every --spill-interval seconds and on SIGTERM).
"""


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests and docs)."""
    parser = _OneLineErrorParser(
        prog="repro",
        description=(
            "Evaluate multi-server systems with unreliable servers "
            "(Palmer & Mitrani, DSN 2006 reproduction)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser(
        "solve", help="evaluate one model configuration and print its metrics"
    )
    solve.add_argument("--servers", type=int, required=True, help="number of servers N")
    solve.add_argument("--arrival-rate", type=float, required=True, help="Poisson arrival rate")
    solve.add_argument("--service-rate", type=float, default=1.0, help="per-server service rate")
    solve.add_argument(
        "--operative-mean", type=float, default=34.62, help="mean operative period"
    )
    solve.add_argument(
        "--operative-scv",
        type=float,
        default=4.6,
        help="squared coefficient of variation of operative periods (>= 1; 1 = exponential)",
    )
    solve.add_argument(
        "--repair-mean", type=float, default=0.04, help="mean inoperative (repair) period"
    )
    solve.add_argument(
        "--solver",
        "--method",
        dest="method",
        choices=("both", *solver_names()),
        default="both",
        help="which registered solver to use ('both' = spectral and geometric)",
    )
    solve.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print per-backend timing and the fallback-chain attempt record "
            "alongside the metrics (disables the solution cache for the run)"
        ),
    )

    fit = subparsers.add_parser(
        "fit", help="fit operative/inoperative period distributions to a trace CSV"
    )
    fit.add_argument("trace", help="path to the breakdown-trace CSV file")
    fit.add_argument(
        "--bins", type=int, default=50, help="number of histogram bins for the KS grid"
    )

    reproduce = subparsers.add_parser(
        "reproduce", help="run the paper's experiments and print the report"
    )
    reproduce.add_argument(
        "--quick", action="store_true", help="use reduced grids (a couple of minutes)"
    )
    reproduce.add_argument(
        "--skip-section2", action="store_true", help="skip the Section-2 trace analysis"
    )
    reproduce.add_argument(
        "--parallel", action="store_true", help="evaluate figure grids across worker processes"
    )
    reproduce.add_argument(
        "--jobs", type=int, default=None, help="worker-process count (default: CPU count)"
    )

    sweep = subparsers.add_parser(
        "sweep", help="evaluate a user-defined parameter grid over the model"
    )
    sweep.add_argument(
        "--servers",
        default="10",
        help="comma-separated server counts (e.g. 8,10,12)",
    )
    sweep.add_argument(
        "--arrival-rates",
        required=True,
        help="comma-separated Poisson arrival rates (e.g. 6.5,7.0,7.5)",
    )
    sweep.add_argument("--service-rate", type=float, default=1.0, help="per-server service rate")
    sweep.add_argument(
        "--operative-mean", type=float, default=34.62, help="mean operative period"
    )
    sweep.add_argument(
        "--operative-scv",
        type=float,
        default=4.6,
        help="squared coefficient of variation of operative periods (>= 1; 1 = exponential)",
    )
    sweep.add_argument(
        "--repair-mean", type=float, default=0.04, help="mean inoperative (repair) period"
    )
    sweep.add_argument(
        "--solvers",
        default="spectral,geometric",
        help="comma-separated solver order with fallback "
        "(any repro.solvers registry name: spectral, geometric, ctmc, simulate, ...)",
    )
    sweep.add_argument(
        "--parallel", action="store_true", help="evaluate grid points across worker processes"
    )
    sweep.add_argument(
        "--jobs", type=int, default=None, help="worker-process count (default: CPU count)"
    )
    sweep.add_argument("--csv", help="write the result rows to this CSV file")
    sweep.add_argument("--json", help="write the result rows to this JSON file")

    scenario = subparsers.add_parser(
        "scenario", help="evaluate a named scenario preset (server groups, repair crews)"
    )
    scenario.add_argument(
        "--list", action="store_true", help="list the available scenario presets and exit"
    )
    scenario.add_argument(
        "--preset",
        choices=preset_names(),
        help="which scenario preset to evaluate",
    )
    scenario.add_argument(
        "--arrival-rate", type=float, default=None, help="override the preset's arrival rate"
    )
    scenario.add_argument(
        "--repair-capacity",
        type=int,
        default=None,
        help="override the preset's repair-crew size R",
    )
    scenario.add_argument(
        "--solvers",
        default="ctmc,simulate",
        help="comma-separated solver order with fallback (scenario-capable: ctmc, simulate)",
    )
    scenario.add_argument(
        "--representation",
        choices=REPRESENTATIONS,
        default="auto",
        help="chain representation for the CTMC solver: lumped (count-based, the "
        "default under auto) or product (per-server-labelled, verification only)",
    )
    scenario.add_argument(
        "--horizon",
        type=float,
        default=50_000.0,
        help="simulation horizon used when the 'simulate' solver runs",
    )
    scenario.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit machine-readable JSON (to PATH, or stdout if omitted): the preset "
        "gallery with --list, or the solved scenario with --preset",
    )

    transient = subparsers.add_parser(
        "transient",
        help="time-dependent metrics (queue length, availability, first passage) over a time grid",
    )
    transient.add_argument(
        "--preset",
        choices=preset_names(),
        default=None,
        help="analyse a scenario preset instead of the homogeneous model",
    )
    transient.add_argument("--servers", type=int, default=4, help="number of servers N")
    transient.add_argument(
        "--arrival-rate", type=float, default=2.0, help="Poisson arrival rate"
    )
    transient.add_argument(
        "--service-rate", type=float, default=1.0, help="per-server service rate"
    )
    transient.add_argument(
        "--operative-mean", type=float, default=34.62, help="mean operative period"
    )
    transient.add_argument(
        "--operative-scv",
        type=float,
        default=4.6,
        help="squared coefficient of variation of operative periods (>= 1; 1 = exponential)",
    )
    transient.add_argument(
        "--repair-mean", type=float, default=0.04, help="mean inoperative (repair) period"
    )
    transient.add_argument(
        "--repair-capacity",
        type=int,
        default=None,
        help="override the preset's repair-crew size R (presets only)",
    )
    transient.add_argument(
        "--times",
        default=None,
        help="comma-separated evaluation times (overrides --horizon/--points)",
    )
    transient.add_argument(
        "--horizon", type=float, default=50.0, help="largest evaluation time of the default grid"
    )
    transient.add_argument(
        "--points", type=int, default=8, help="number of grid points up to the horizon"
    )
    transient.add_argument(
        "--initial",
        choices=INITIAL_CONDITIONS,
        default="empty-operative",
        help="initial condition of the chain",
    )
    transient.add_argument(
        "--representation",
        choices=REPRESENTATIONS,
        default="auto",
        help="chain representation to sweep: lumped (count-based, the default "
        "under auto) or product (per-server-labelled; scenario presets only)",
    )
    transient.add_argument(
        "--first-passage",
        dest="first_passage",
        choices=TARGET_NAMES,
        default=None,
        help="also compute the first-passage law to this target set",
    )
    transient.add_argument(
        "--queue-threshold",
        type=int,
        default=None,
        help="the level L of the 'queue-exceeds' first-passage target",
    )
    transient.add_argument("--csv", help="write the per-time metric rows to this CSV file")
    transient.add_argument("--json", help="write the per-time metric rows to this JSON file")

    serve = subparsers.add_parser(
        "serve",
        help="run the asyncio solver service (JSON over HTTP, coalescing + batching)",
        description=(
            "Run the repro.service solver service: an asyncio HTTP server answering "
            "concurrent steady-state, scenario and transient JSON queries.  Identical "
            "in-flight requests are coalesced to one computation, distinct requests "
            "arriving within the batch window are solved as one batch, and a bounded "
            "queue applies backpressure (429 + Retry-After)."
        ),
        epilog=_SERVE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default: %(default)s)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port to bind; 0 = ephemeral (default: %(default)s)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "serving tier: 1 = single process, N > 1 = consistent-hash sharded front "
            "over N worker processes (default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        help="seconds to hold a batch open for further requests (default: %(default)s)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="bound on distinct pending computations before 429 rejections (default: %(default)s)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="largest batch handed to one solve_many call (default: %(default)s)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="LRU bound of the service's solution cache (default: %(default)s)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "directory for solution-cache snapshots (one shard-<i>.json per worker); "
            "loaded on startup, spilled periodically and on shutdown (default: no persistence)"
        ),
    )
    serve.add_argument(
        "--spill-interval",
        type=float,
        default=30.0,
        help="seconds between periodic cache spills under --cache-dir (default: %(default)s)",
    )
    serve.add_argument(
        "--log-format",
        choices=("text", "json"),
        default="text",
        help="service log format: human-readable text or JSON lines (default: %(default)s)",
    )
    serve.add_argument(
        "--slow-request-seconds",
        type=float,
        default=1.0,
        help=(
            "requests slower than this emit their completed trace (span tree) "
            "to the log and land in the /traces?slow=1 ring (default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--trace-exemplar-interval",
        type=int,
        default=32,
        help=(
            "retain every Nth trace regardless of latency so /traces keeps "
            "healthy exemplars; 0 disables sampling (default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--slo-queue-wait",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help=(
            "rolling p99 queue-wait target; breaching it triggers "
            "latency-aware load shedding (default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--slo-solve-latency",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "rolling p99 solve-latency target for the SLO tracker "
            "(default: %(default)s)"
        ),
    )

    top = subparsers.add_parser(
        "top",
        help="live dashboard over a running service (/metrics + /stats)",
        description=(
            "Poll a running 'repro serve' instance's /metrics and /stats and "
            "render a live terminal dashboard: per-shard request rates, p50/p99 "
            "solve latency, queue depth, cache hit rates, shedding tiers and "
            "SLO error-budget burn.  Press q to quit.  With --once the current "
            "snapshot is printed to stdout instead (add --json for the "
            "machine-readable summary)."
        ),
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="base URL of the running service (default: %(default)s)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between dashboard refreshes (default: %(default)s)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit instead of entering the live view",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="with --once, emit the summary as JSON for scripts",
    )

    cache_stats = subparsers.add_parser(
        "cache-stats",
        help="print solution-cache statistics (of a running service, or in-process)",
        description=(
            "Print solution-cache statistics.  With --url, query a running "
            "'repro serve' instance's /stats endpoint (cache plus scheduler "
            "counters); without it, report this process's shared cache."
        ),
    )
    cache_stats.add_argument(
        "--url",
        default=None,
        help="base URL of a running service, e.g. http://127.0.0.1:8080",
    )
    cache_stats.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of the table"
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the repro static analyzer (RPR rules) over python sources",
        description=(
            "Run the repro.analysis static analyzer: repo-specific AST lint rules "
            "(RPR001...RPR011) encoding the solver/service stack's correctness "
            "contracts.  Exit code 0 = clean, 1 = findings, 2 = usage error.  "
            "Suppress a finding per line with '# repro: noqa RPRxxx'."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: %(default)s)",
    )
    lint.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: every registered rule)",
    )
    lint.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _operative_distribution(mean: float, scv: float) -> Distribution:
    if scv < 1.0:
        raise ReproError(
            "the analytical model requires an operative-period SCV >= 1 "
            "(use the simulator for low-variability periods)"
        )
    if scv == 1.0:
        return Exponential(rate=1.0 / mean)
    return HyperExponential.from_mean_and_scv(mean, scv)


def _command_solve(arguments: argparse.Namespace) -> int:
    model = UnreliableQueueModel(
        num_servers=arguments.servers,
        arrival_rate=arguments.arrival_rate,
        service_rate=arguments.service_rate,
        operative=_operative_distribution(arguments.operative_mean, arguments.operative_scv),
        inoperative=Exponential(rate=1.0 / arguments.repair_mean),
    )
    print(
        format_key_values(
            [
                ("servers", model.num_servers),
                ("offered load", model.offered_load),
                ("availability", model.availability),
                ("mean operative servers", model.mean_operative_servers),
                ("stable", model.is_stable),
                ("operational modes", model.num_modes),
            ],
            title="Model",
        )
    )
    if not model.is_stable:
        print("\nThe queue is unstable (paper Eq. 11); add servers or reduce the load.")
        return 1
    from .obs.profiling import capture_attempts

    with capture_attempts() as attempts:
        _print_solutions(model, arguments)
    if arguments.profile:
        print()
        print(
            format_table(
                ("solver", "seconds", "ok", "warm start", "error"),
                [
                    (
                        attempt.solver,
                        f"{attempt.seconds:.6f}",
                        "yes" if attempt.ok else "no",
                        "yes" if attempt.warm_start else "no",
                        attempt.error or "",
                    )
                    for attempt in attempts
                ],
                title="Backend attempts (fallback chain)",
            )
        )
    return 0


def _print_solutions(model: UnreliableQueueModel, arguments: argparse.Namespace) -> None:
    """Print the solution tables for ``repro solve``, recording backend timings."""
    from .obs.profiling import record_attempt

    if arguments.method in ("spectral", "both"):
        started = time.perf_counter()
        solution = model.solve_spectral()
        record_attempt("spectral", time.perf_counter() - started, ok=True)
        print()
        print(
            format_key_values(
                [
                    ("mean jobs L", solution.mean_queue_length),
                    ("mean response time W", solution.mean_response_time),
                    ("P(empty)", solution.probability_empty),
                    ("P(delay)", solution.probability_delay),
                    ("decay rate z_s", solution.decay_rate),
                ],
                title="Exact spectral-expansion solution",
            )
        )
    if arguments.method in ("geometric", "both"):
        started = time.perf_counter()
        approximation = model.solve_geometric()
        record_attempt("geometric", time.perf_counter() - started, ok=True)
        print()
        print(
            format_key_values(
                [
                    ("mean jobs L", approximation.mean_queue_length),
                    ("mean response time W", approximation.mean_response_time),
                    ("decay rate z_s", approximation.decay_rate),
                ],
                title="Geometric approximation",
            )
        )
    if arguments.method not in ("spectral", "geometric", "both"):
        # Under --profile the cache is bypassed so the fallback chain's
        # attempts actually execute (a memoised hit records nothing).
        outcome = solve_model(model, arguments.method, cache=False if arguments.profile else None)
        if outcome.solver is None:
            raise ReproError(outcome.error or "no solver succeeded")
        preferred = [
            ("mean jobs L", outcome.metrics.get("mean_queue_length")),
            ("mean response time W", outcome.metrics.get("mean_response_time")),
        ]
        print()
        print(
            format_key_values(
                [
                    *[(label, value) for label, value in preferred if value is not None],
                    *sorted(
                        (name, value)
                        for name, value in outcome.metrics.items()
                        if name not in ("mean_queue_length", "mean_response_time")
                    ),
                ],
                title=f"Solution ({outcome.solver})",
            )
        )


def _command_fit(arguments: argparse.Namespace) -> int:
    trace = read_trace_csv(arguments.trace)
    cleaned = trace.cleaned()
    print(
        format_key_values(
            [
                ("rows", trace.num_events),
                ("anomalous fraction", trace.anomalous_fraction),
            ],
            title=f"Trace {arguments.trace}",
        )
    )
    for label, sample in (
        ("Operative periods", cleaned.operative_periods()),
        ("Inoperative periods", cleaned.inoperative_periods()),
    ):
        moments = estimate_moments(sample, 3)
        density = EmpiricalDensity.from_observations(sample, num_bins=arguments.bins)
        exponential = fit_exponential(moments)
        exponential_ks = ks_test_grid(density, exponential.cdf)
        lines = [
            ("mean", float(moments[0])),
            ("C^2", float(moments[1] / moments[0] ** 2 - 1.0)),
            ("exponential KS D", exponential_ks.statistic),
            ("exponential passes at 5%", exponential_ks.passes(0.05)),
        ]
        try:
            hyper = fit_two_phase_from_moments(moments).distribution
            hyper_ks = ks_test_grid(density, hyper.cdf)
            lines.extend(
                [
                    ("H2 weights", tuple(round(float(w), 4) for w in hyper.weights)),
                    ("H2 rates", tuple(round(float(r), 4) for r in hyper.rates)),
                    ("H2 KS D", hyper_ks.statistic),
                    ("H2 passes at 5%", hyper_ks.passes(0.05)),
                ]
            )
        except ReproError as error:
            lines.append(("H2 fit", f"not applicable ({error})"))
        print()
        print(format_key_values(lines, title=label))
    return 0


def _command_reproduce(arguments: argparse.Namespace) -> int:
    reports = run_all_experiments(
        include_section2=not arguments.skip_section2,
        quick=arguments.quick,
        parallel=arguments.parallel,
        max_workers=arguments.jobs,
    )
    print(render_report(reports))
    return 0


def _parse_list(text: str, kind: Callable[[str], _T], name: str) -> tuple[_T, ...]:
    try:
        values = tuple(kind(item.strip()) for item in text.split(",") if item.strip())
    except ValueError as exc:
        raise ReproError(f"could not parse {name} from {text!r}") from exc
    if not values:
        raise ReproError(f"{name} must contain at least one value")
    return values


def _command_sweep(arguments: argparse.Namespace) -> int:
    base_model = UnreliableQueueModel(
        num_servers=1,
        arrival_rate=1.0,
        service_rate=arguments.service_rate,
        operative=_operative_distribution(arguments.operative_mean, arguments.operative_scv),
        inoperative=Exponential(rate=1.0 / arguments.repair_mean),
    )
    spec = SweepSpec(
        base_model=base_model,
        axes=[
            ("num_servers", _parse_list(arguments.servers, int, "--servers")),
            ("arrival_rate", _parse_list(arguments.arrival_rates, float, "--arrival-rates")),
        ],
        policy=SolverPolicy(order=_parse_list(arguments.solvers, str, "--solvers")),
        name="cli-sweep",
    )
    runner = SweepRunner(parallel=arguments.parallel, max_workers=arguments.jobs)
    results = runner.run(spec)

    rows = [
        (
            row.parameters["num_servers"],
            row.parameters["arrival_rate"],
            row.solver or "-",
            row.stable,
            row.metrics.get("mean_queue_length", float("nan")),
            row.metrics.get("mean_response_time", float("nan")),
            row.error or "-",
        )
        for row in results
    ]
    print(
        format_table(
            ("N", "lambda", "solver", "stable", "mean jobs L", "response W", "error"),
            rows,
            title=f"Sweep over {results.axis_names} ({len(results)} points)",
        )
    )
    if arguments.csv:
        print(f"\nwrote {results.to_csv(arguments.csv)}")
    if arguments.json:
        results.to_json(arguments.json)
        print(f"wrote {arguments.json}")
    return 0


def _preset_record(name: str) -> dict[str, object]:
    """One machine-readable gallery entry for ``repro scenario --list --json``."""
    scenario = scenario_preset(name)
    return {
        "name": name,
        "description": preset_description(name),
        "num_servers": scenario.num_servers,
        "num_groups": scenario.num_groups,
        "num_modes": scenario.num_modes,
        "arrival_rate": scenario.arrival_rate,
        "repair_capacity": scenario.effective_repair_capacity,
        "effective_load": scenario.effective_load,
        "stable": scenario.is_stable,
        "groups": [
            {
                "name": group.name,
                "size": group.size,
                "service_rate": group.service_rate,
                "operative_mean": group.operative.mean,
                "inoperative_mean": group.inoperative.mean,
            }
            for group in scenario.groups
        ],
    }


def _command_scenario(arguments: argparse.Namespace) -> int:
    if arguments.list:
        if arguments.json is not None:
            payload = {"presets": [_preset_record(name) for name in preset_names()]}
            text = json.dumps(payload, indent=2)
            if arguments.json == "-":
                print(text)
            else:
                Path(arguments.json).write_text(text + "\n")
                print(f"wrote {arguments.json}")
            return 0
        rows = [(name, preset_description(name)) for name in preset_names()]
        print(format_table(("preset", "description"), rows, title="Scenario presets"))
        return 0
    if arguments.preset is None:
        if arguments.json is not None:
            raise ReproError("--json needs --list (preset gallery) or --preset (solved scenario)")
        raise ReproError("choose a preset with --preset, or use --list to see them")
    scenario = scenario_preset(
        arguments.preset,
        arrival_rate=arguments.arrival_rate,
        repair_capacity=arguments.repair_capacity,
    )
    group_rows = [
        (
            group.name,
            group.size,
            group.service_rate,
            round(group.operative.mean, 4),
            round(group.inoperative.mean, 4),
        )
        for group in scenario.groups
    ]
    print(
        format_table(
            ("group", "size", "mu", "operative mean", "repair mean"),
            group_rows,
            title=f"Scenario {scenario.name!r}",
        )
    )
    print()
    print(
        format_key_values(
            [
                ("servers", scenario.num_servers),
                ("repair capacity R", scenario.effective_repair_capacity),
                ("arrival rate", scenario.arrival_rate),
                ("operational modes", scenario.num_modes),
                ("mean service capacity", scenario.mean_service_capacity),
                ("effective load", scenario.effective_load),
                ("stable", scenario.is_stable),
            ],
            title="Model",
        )
    )
    representation = resolve_representation(arguments.representation)
    print()
    print(
        format_key_values(
            [
                ("requested", arguments.representation),
                ("chosen", representation),
                ("lumped modes", scenario.num_modes),
                ("product modes", scenario.environment.num_product_modes),
            ],
            title="Representation",
        )
    )
    if not scenario.is_stable:
        print("\nThe scenario is unstable; add capacity or reduce the load.")
        return 1
    policy = SolverPolicy(
        order=_parse_list(arguments.solvers, str, "--solvers"),
        simulate_horizon=arguments.horizon,
        representation=arguments.representation,
    )
    outcome = solve_model(scenario, policy)
    if outcome.solver is None:
        raise ReproError(outcome.error or "no solver succeeded")
    print()
    print(
        format_key_values(
            [
                ("mean jobs L", outcome.metrics["mean_queue_length"]),
                ("mean response time W", outcome.metrics["mean_response_time"]),
                *sorted(
                    (name, value)
                    for name, value in outcome.metrics.items()
                    if name not in ("mean_queue_length", "mean_response_time")
                ),
            ],
            title=f"Solution ({outcome.solver})",
        )
    )
    if arguments.json is not None:
        payload = {
            "scenario": scenario.name,
            "servers": scenario.num_servers,
            "arrival_rate": scenario.arrival_rate,
            "repair_capacity": scenario.effective_repair_capacity,
            "representation": {
                "requested": arguments.representation,
                "chosen": representation,
                "num_modes": scenario.num_modes,
                "num_product_modes": scenario.environment.num_product_modes,
            },
            "solver": outcome.solver,
            "metrics": outcome.metrics,
        }
        text = json.dumps(payload, indent=2)
        if arguments.json == "-":
            print()
            print(text)
        else:
            Path(arguments.json).write_text(text + "\n")
            print(f"\nwrote {arguments.json}")
    return 0


def _transient_model(arguments: argparse.Namespace) -> UnreliableQueueModel | ScenarioModel:
    """The model the ``transient`` subcommand analyses (preset or homogeneous)."""
    if arguments.preset is not None:
        return scenario_preset(
            arguments.preset,
            repair_capacity=arguments.repair_capacity,
        )
    if arguments.repair_capacity is not None:
        raise ReproError("--repair-capacity applies to scenario presets; pass --preset")
    return UnreliableQueueModel(
        num_servers=arguments.servers,
        arrival_rate=arguments.arrival_rate,
        service_rate=arguments.service_rate,
        operative=_operative_distribution(arguments.operative_mean, arguments.operative_scv),
        inoperative=Exponential(rate=1.0 / arguments.repair_mean),
    )


def _transient_times(arguments: argparse.Namespace) -> tuple[float, ...]:
    """The evaluation grid: explicit ``--times``, else ``--horizon``/``--points``."""
    if arguments.times is not None:
        return _parse_list(arguments.times, float, "--times")
    if arguments.horizon <= 0.0:
        raise ReproError(f"--horizon must be positive, got {arguments.horizon}")
    points = arguments.points
    if points < 1:
        raise ReproError(f"--points must be at least 1, got {points}")
    return tuple(arguments.horizon * (index + 1) / points for index in range(points))


def _command_transient(arguments: argparse.Namespace) -> int:
    model = _transient_model(arguments)
    times = _transient_times(arguments)
    solution = solve_transient(
        model, times, initial=arguments.initial, representation=arguments.representation
    )
    print(
        format_key_values(
            [
                ("model", repr(model)),
                ("initial condition", arguments.initial),
                ("representation", solution.representation),
                ("solved states", solution.num_solved_states),
                ("truncation level", solution.truncation_level),
                ("uniformization rate", solution.uniformization_rate),
                ("uniformization steps", solution.steps),
            ],
            title="Transient analysis",
        )
    )
    rows = [
        (
            row["time"],
            round(row["mean_queue_length"], 6),
            round(row["availability"], 6),
            round(row["probability_empty"], 6),
            round(row["probability_all_inoperative"], 8),
        )
        for row in solution.to_rows()
    ]
    print()
    print(
        format_table(
            ("t", "mean jobs L(t)", "availability A(t)", "P(empty)", "P(all down)"),
            rows,
            title=f"Trajectories ({len(solution.times)} grid points)",
        )
    )
    if arguments.first_passage is not None:
        passage = first_passage_time(
            model,
            times,
            target=arguments.first_passage,
            queue_threshold=arguments.queue_threshold,
            initial=arguments.initial,
        )
        print()
        print(
            format_table(
                ("t", "P(T <= t)"),
                [(t, round(value, 6)) for t, value in zip(passage.times, passage.cdf)],
                title=f"First passage to {passage.target!r} (mean {passage.mean:.4f})",
            )
        )
    if arguments.csv:
        print(f"\nwrote {solution.to_csv(arguments.csv)}")
    if arguments.json:
        solution.to_json(arguments.json)
        print(f"wrote {arguments.json}")
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    # Imported lazily: the serving layer is only needed by this subcommand.
    from .service import ServiceConfig, run_service

    try:
        config = ServiceConfig(
            host=arguments.host,
            port=arguments.port,
            workers=arguments.workers,
            batch_window=arguments.batch_window,
            max_queue=arguments.max_queue,
            max_batch=arguments.max_batch,
            cache_maxsize=arguments.cache_size,
            cache_dir=arguments.cache_dir,
            spill_interval=arguments.spill_interval,
            log_format=arguments.log_format,
            slow_request_seconds=arguments.slow_request_seconds,
            trace_exemplar_interval=arguments.trace_exemplar_interval,
            slo_queue_wait_seconds=arguments.slo_queue_wait,
            slo_solve_latency_seconds=arguments.slo_solve_latency,
        )
        return run_service(config)
    except ValueError as error:
        raise ReproError(str(error)) from error


def _command_top(arguments: argparse.Namespace) -> int:
    # Imported lazily: the dashboard (and the service client) are only
    # needed by this subcommand.
    from .obs.dashboard import DashboardSnapshot, render_dashboard, run_dashboard, summarize
    from .service import ServiceClient

    if arguments.json and not arguments.once:
        raise ReproError("--json needs --once (the live view is curses-drawn)")
    host, port = _service_address(arguments.url)
    if arguments.interval <= 0:
        raise ReproError(f"--interval must be positive, got {arguments.interval}")

    def fetch() -> DashboardSnapshot:
        with ServiceClient(host, port, timeout=10.0) as client:
            status, metrics_text = client.metrics()
            if status != 200:
                raise ReproError(f"/metrics returned HTTP {status}")
            stats = client.stats()
            if stats.status != 200:
                raise ReproError(f"/stats returned HTTP {stats.status}: {stats.payload}")
        return DashboardSnapshot.from_payloads(
            metrics_text, stats.payload, at=time.monotonic()
        )

    try:
        snapshot = fetch()
        if arguments.once:
            if arguments.json:
                print(json.dumps(summarize(snapshot), indent=2, sort_keys=True))
            else:
                print("\n".join(render_dashboard(snapshot)))
            return 0
        run_dashboard(fetch, interval=arguments.interval)
    except OSError as error:
        raise ReproError(f"could not reach {arguments.url}: {error}") from error
    return 0


def _service_address(url: str) -> tuple[str, int]:
    """Parse a ``--url`` value into the client's host/port pair."""
    from urllib.parse import urlparse

    parsed = urlparse(url if "//" in url else f"http://{url}")
    try:
        if parsed.scheme not in ("", "http") or not parsed.hostname:
            raise ValueError("not an http address")
        port = parsed.port
    except ValueError as error:
        # urlparse defers port validation to the .port property, so a
        # non-numeric port surfaces here rather than at parse time.
        raise ReproError(
            f"--url must be a plain http://host:port address, got {url!r}"
        ) from error
    return parsed.hostname, port or 80


def _print_sharded_cache_stats(url: str, payload: dict) -> None:
    """Render a sharded /stats payload: pool totals plus per-shard hit rates."""
    totals = payload.get("totals", {})
    shedding = payload.get("shedding", {})
    print(
        format_key_values(
            [
                ("uptime seconds", payload.get("uptime_seconds")),
                ("workers", payload.get("workers")),
                ("responses total", payload.get("responses_total")),
                ("errors total", payload.get("errors_total")),
                ("shed total", shedding.get("shed_total")),
                ("requests total", totals.get("requests_total")),
                ("coalesced total", totals.get("coalesced_total")),
                ("batches total", totals.get("batches_total")),
                ("cache hits total", totals.get("cache_hits_total")),
                ("cache solves total", totals.get("solves")),
                ("cache entries total", totals.get("cache_size")),
                ("cache spills total", totals.get("cache_spills")),
                ("cache entries spilled", totals.get("cache_spilled_entries")),
                ("cache loads total", totals.get("cache_loads")),
                ("cache entries loaded", totals.get("cache_loaded_entries")),
            ],
            title=f"Service {url}",
        )
    )
    rows = []
    for entry in payload.get("shards", []):
        scheduler = entry.get("scheduler") or {}
        cache = scheduler.get("cache", {})
        hits = int(cache.get("hits", 0))
        misses = int(cache.get("misses", 0))
        lookups = hits + misses
        hit_rate = f"{hits / lookups:.3f}" if lookups else "n/a"
        rows.append(
            (
                entry.get("shard"),
                entry.get("state", "?"),
                scheduler.get("requests_total", 0),
                hits,
                misses,
                hit_rate,
                cache.get("size", 0),
            )
        )
    print()
    print(
        format_table(
            ("shard", "state", "requests", "hits", "misses", "hit rate", "entries"),
            rows,
            title="Per-shard solution caches",
        )
    )


def _command_cache_stats(arguments: argparse.Namespace) -> int:
    from .solvers import shared_cache

    if arguments.url is not None:
        from .service import ServiceClient

        host, port = _service_address(arguments.url)
        try:
            with ServiceClient(host, port, timeout=10.0) as client:
                response = client.stats()
        except OSError as error:
            raise ReproError(f"could not reach {arguments.url}: {error}") from error
        if response.status != 200:
            raise ReproError(f"/stats returned HTTP {response.status}: {response.payload}")
        payload = response.payload
        if arguments.json:
            print(json.dumps(payload, indent=2))
            return 0
        if "shards" in payload:
            _print_sharded_cache_stats(arguments.url, payload)
            return 0
        scheduler = payload.get("scheduler", {})
        cache = scheduler.get("cache", {})
        print(
            format_key_values(
                [
                    ("uptime seconds", payload.get("uptime_seconds")),
                    ("responses total", payload.get("responses_total")),
                    ("errors total", payload.get("errors_total")),
                    ("queue depth", scheduler.get("queue_depth")),
                    ("requests total", scheduler.get("requests_total")),
                    ("coalesced total", scheduler.get("coalesced_total")),
                    ("batches total", scheduler.get("batches_total")),
                    ("rejected total", scheduler.get("rejected_total")),
                ],
                title=f"Service {arguments.url}",
            )
        )
        print()
        print(format_key_values(_cache_lines(cache), title="Solution cache"))
        return 0
    stats = shared_cache().stats()
    if arguments.json:
        print(json.dumps(stats, indent=2))
        return 0
    print(format_key_values(_cache_lines(stats), title="Shared solution cache (this process)"))
    return 0


#: Canonical ordering of the solution-cache counters, persistence included —
#: ``spills``/``loads`` must render even when zero, so a PR-9 snapshot setup
#: is visible at a glance against a single-process server too.
_CACHE_STAT_KEYS = (
    "hits",
    "misses",
    "hit_rate",
    "size",
    "maxsize",
    "solves",
    "evictions",
    "spills",
    "spilled_entries",
    "loads",
    "loaded_entries",
)


def _cache_lines(cache: dict) -> list[tuple[str, object]]:
    """Cache stats as ordered key/value rows, spill/load counters always shown."""
    lines: list[tuple[str, object]] = [
        (key, cache.get(key, 0)) for key in _CACHE_STAT_KEYS
    ]
    lines.extend(sorted((k, v) for k, v in cache.items() if k not in _CACHE_STAT_KEYS))
    return lines


def _command_lint(arguments: argparse.Namespace) -> int:
    # Imported lazily: the analyzer is only needed by this subcommand.
    from .analysis import analyze_paths, default_registry

    if arguments.list_rules:
        registry = default_registry()
        rows = [(rule.rule_id, rule.title) for rule in registry]
        print(format_table(("rule", "checks for"), rows, title="Registered lint rules"))
        return 0
    select = _parse_list(arguments.select, str, "--select") if arguments.select else None
    ignore = _parse_list(arguments.ignore, str, "--ignore") if arguments.ignore else None
    report = analyze_paths(arguments.paths, select=select, ignore=ignore)
    if arguments.format == "json":
        print(json.dumps(report.to_json_payload(), indent=2))
    else:
        print(report.render_text())
    return report.exit_code


#: Subcommand dispatch: one handler per registered subparser.
_COMMANDS = {
    "solve": _command_solve,
    "fit": _command_fit,
    "reproduce": _command_reproduce,
    "sweep": _command_sweep,
    "scenario": _command_scenario,
    "transient": _command_transient,
    "serve": _command_serve,
    "top": _command_top,
    "cache-stats": _command_cache_stats,
    "lint": _command_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` command-line interface."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handler = _COMMANDS.get(arguments.command)
    if handler is None:
        # Defensive: a subparser registered without a handler must degrade to
        # the same one-line exit-2 hint as an unknown subcommand, never a
        # traceback.
        print(
            f"repro: error: unknown command {arguments.command!r} "
            "(run 'repro --help' for usage)",
            file=sys.stderr,
        )
        return 2
    try:
        return handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
