"""Classical reliable-server baselines: M/M/1 and M/M/c (Erlang-C) formulas.

These closed-form results serve three purposes in the reproduction:

* **validation** — when breakdowns are switched off (or made vanishingly
  rare) the unreliable-server model must collapse to the ordinary M/M/c
  queue, and the spectral solver is tested against these formulas;
* **baseline** — they quantify how much performance is lost to breakdowns,
  the comparison that motivates the paper;
* **teaching** — the examples use them to show the gap between the naive
  "always up" capacity plan and the breakdown-aware plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import check_positive, check_positive_int
from ..exceptions import UnstableQueueError


@dataclass(frozen=True)
class MMcMetrics:
    """Steady-state metrics of an M/M/c queue.

    Attributes
    ----------
    probability_empty:
        Probability that the system is empty, ``p0``.
    probability_wait:
        The Erlang-C probability that an arriving job has to wait.
    mean_jobs_waiting:
        Mean number of jobs in the waiting line, ``Lq``.
    mean_queue_length:
        Mean number of jobs in the system, ``L``.
    mean_waiting_time:
        Mean time spent waiting before service, ``Wq``.
    mean_response_time:
        Mean total time in the system, ``W``.
    """

    probability_empty: float
    probability_wait: float
    mean_jobs_waiting: float
    mean_queue_length: float
    mean_waiting_time: float
    mean_response_time: float


def erlang_c(num_servers: int, offered_load: float) -> float:
    """The Erlang-C probability of waiting for ``num_servers`` servers.

    Parameters
    ----------
    num_servers:
        Number of (always operative) servers ``c``.
    offered_load:
        The offered load ``a = lambda / mu`` in Erlangs; must satisfy
        ``a < c`` for the queue to be stable.

    Raises
    ------
    UnstableQueueError
        If ``offered_load >= num_servers``.
    """
    num_servers = check_positive_int(num_servers, "num_servers")
    offered_load = check_positive(offered_load, "offered_load")
    if offered_load >= num_servers:
        raise UnstableQueueError(offered_load, float(num_servers))
    utilisation = offered_load / num_servers
    # Sum_{k<c} a^k / k!  computed iteratively to avoid overflow for large c.
    partial_sum = 0.0
    term = 1.0
    for k in range(num_servers):
        if k > 0:
            term *= offered_load / k
        partial_sum += term
    top = term * offered_load / num_servers / (1.0 - utilisation)
    return top / (partial_sum + top)


def mmc_metrics(num_servers: int, arrival_rate: float, service_rate: float) -> MMcMetrics:
    """All standard steady-state metrics of the M/M/c queue."""
    arrival_rate = check_positive(arrival_rate, "arrival_rate")
    service_rate = check_positive(service_rate, "service_rate")
    offered_load = arrival_rate / service_rate
    wait_probability = erlang_c(num_servers, offered_load)
    utilisation = offered_load / num_servers
    mean_waiting_jobs = wait_probability * utilisation / (1.0 - utilisation)
    mean_jobs = mean_waiting_jobs + offered_load
    mean_waiting_time = mean_waiting_jobs / arrival_rate
    mean_response_time = mean_waiting_time + 1.0 / service_rate

    # p0 of the M/M/c queue.
    partial_sum = 0.0
    term = 1.0
    for k in range(num_servers):
        if k > 0:
            term *= offered_load / k
        partial_sum += term
    term *= offered_load / num_servers
    p0 = 1.0 / (partial_sum + term / (1.0 - utilisation))

    return MMcMetrics(
        probability_empty=p0,
        probability_wait=wait_probability,
        mean_jobs_waiting=mean_waiting_jobs,
        mean_queue_length=mean_jobs,
        mean_waiting_time=mean_waiting_time,
        mean_response_time=mean_response_time,
    )


def mm1_mean_queue_length(arrival_rate: float, service_rate: float) -> float:
    """The mean number of jobs in an M/M/1 queue, ``rho / (1 - rho)``."""
    arrival_rate = check_positive(arrival_rate, "arrival_rate")
    service_rate = check_positive(service_rate, "service_rate")
    utilisation = arrival_rate / service_rate
    if utilisation >= 1.0:
        raise UnstableQueueError(utilisation, 1.0)
    return utilisation / (1.0 - utilisation)


def mm1_queue_length_pmf(arrival_rate: float, service_rate: float, num_jobs: int) -> float:
    """The geometric queue-length probability of the M/M/1 queue."""
    arrival_rate = check_positive(arrival_rate, "arrival_rate")
    service_rate = check_positive(service_rate, "service_rate")
    if num_jobs < 0:
        return 0.0
    utilisation = arrival_rate / service_rate
    if utilisation >= 1.0:
        raise UnstableQueueError(utilisation, 1.0)
    return (1.0 - utilisation) * utilisation**num_jobs


def erlang_b(num_servers: int, offered_load: float) -> float:
    """The Erlang-B blocking probability (no waiting room).

    Included for completeness of the baseline family; computed with the
    standard numerically stable recurrence.
    """
    num_servers = check_positive_int(num_servers, "num_servers")
    offered_load = check_positive(offered_load, "offered_load")
    blocking = 1.0
    for k in range(1, num_servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return blocking


def required_servers_erlang_c(
    arrival_rate: float,
    service_rate: float,
    max_wait_probability: float,
    *,
    max_servers: int = 10_000,
) -> int:
    """The smallest ``c`` whose Erlang-C waiting probability meets a target.

    A reliable-server capacity-planning helper, used by the examples to show
    how many extra servers the breakdown-aware model requires on top of the
    classical answer.
    """
    arrival_rate = check_positive(arrival_rate, "arrival_rate")
    service_rate = check_positive(service_rate, "service_rate")
    if not 0.0 < max_wait_probability < 1.0:
        raise ValueError("max_wait_probability must lie strictly between 0 and 1")
    offered_load = arrival_rate / service_rate
    start = max(1, math.ceil(offered_load + 1e-12))
    for candidate in range(start, max_servers + 1):
        if candidate <= offered_load:
            continue
        if erlang_c(candidate, offered_load) <= max_wait_probability:
            return candidate
    raise UnstableQueueError(offered_load, float(max_servers))
