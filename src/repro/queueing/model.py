"""The unreliable multi-server queueing model of Palmer & Mitrani.

This is the front-end class users construct: ``N`` parallel servers fed by a
Poisson stream through one unbounded FIFO queue, exponential service times,
and servers that alternate between operative and inoperative periods drawn
from exponential or hyperexponential distributions.  Jobs interrupted by a
breakdown return to the head of the queue and later resume from the point of
interruption (preemptive resume), which together with the exponential service
assumption makes the system a Markov-modulated M/M/N queue.

The class validates parameters, evaluates the stability condition (paper
Eq. 11) and hands the heavy lifting to the solvers:

* :meth:`UnreliableQueueModel.solve_spectral` — exact spectral expansion
  (paper Section 3.1);
* :meth:`UnreliableQueueModel.solve_geometric` — the heavy-load geometric
  approximation (paper Section 3.2);
* :meth:`UnreliableQueueModel.solve_ctmc` — truncated-CTMC reference solution
  used for validation;
* :meth:`UnreliableQueueModel.simulate` — discrete-event simulation, which
  also accepts non-phase-type period distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import TYPE_CHECKING

from .._validation import check_positive, check_positive_int
from ..distributions import Distribution, Exponential, HyperExponential
from ..exceptions import UnstableQueueError
from ..markov import BreakdownEnvironment, expected_num_modes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.queue_sim import SimulationEstimate
    from ..spectral.approximation import GeometricSolution
    from ..spectral.solution import SpectralSolution
    from .ctmc_reference import TruncatedCTMCSolution


@dataclass(frozen=True)
class UnreliableQueueModel:
    """A multi-server queue whose servers suffer breakdowns and repairs.

    Parameters
    ----------
    num_servers:
        The number of servers ``N``.
    arrival_rate:
        The Poisson arrival rate ``lambda``.
    service_rate:
        The exponential service rate ``mu`` of each operative server
        (the paper's experiments all use ``mu = 1``).
    operative:
        Distribution of operative periods.  Exponential and
        :class:`~repro.distributions.HyperExponential` distributions yield an
        exact Markov model; other distributions are accepted but can only be
        studied by simulation.
    inoperative:
        Distribution of inoperative (repair) periods, same restrictions.

    Examples
    --------
    The configuration of the paper's Figure 5 with ``N = 12`` servers:

    >>> from repro.distributions import SUN_OPERATIVE_FIT, Exponential
    >>> model = UnreliableQueueModel(
    ...     num_servers=12,
    ...     arrival_rate=8.0,
    ...     service_rate=1.0,
    ...     operative=SUN_OPERATIVE_FIT,
    ...     inoperative=Exponential(rate=25.0),
    ... )
    >>> model.is_stable
    True
    """

    num_servers: int
    arrival_rate: float
    service_rate: float
    operative: Distribution
    inoperative: Distribution
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_positive_int(self.num_servers, "num_servers")
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.service_rate, "service_rate")
        object.__setattr__(self, "_validated", True)

    # ------------------------------------------------------------------ #
    # Derived characteristics
    # ------------------------------------------------------------------ #

    @property
    def mean_service_time(self) -> float:
        """The mean service requirement ``1 / mu``."""
        return 1.0 / self.service_rate

    @property
    def offered_load(self) -> float:
        """The offered load ``lambda / mu`` in units of busy servers."""
        return self.arrival_rate / self.service_rate

    @property
    def availability(self) -> float:
        """The long-run fraction of time each server is operative, ``eta / (xi + eta)``."""
        operative_mean = self.operative.mean
        inoperative_mean = self.inoperative.mean
        return operative_mean / (operative_mean + inoperative_mean)

    @property
    def mean_operative_servers(self) -> float:
        """The steady-state average number of operative servers ``N eta / (xi + eta)``."""
        return self.num_servers * self.availability

    @property
    def effective_load(self) -> float:
        """The load normalised by the average operative capacity.

        This is the quantity plotted on the x-axis of the paper's Figure 8:
        ``rho = (lambda / mu) / (N eta / (xi + eta))``; the queue is stable
        iff ``rho < 1``.
        """
        return self.offered_load / self.mean_operative_servers

    @property
    def is_stable(self) -> bool:
        """Whether the stability condition of paper Eq. 11 holds."""
        return self.offered_load < self.mean_operative_servers

    def require_stable(self) -> None:
        """Raise :class:`UnstableQueueError` when the stability condition fails."""
        if not self.is_stable:
            raise UnstableQueueError(self.offered_load, self.mean_operative_servers)

    @property
    def is_markovian(self) -> bool:
        """Whether both period distributions admit the exact Markov model."""
        return isinstance(self.operative, (Exponential, HyperExponential)) and isinstance(
            self.inoperative, (Exponential, HyperExponential)
        )

    @property
    def num_modes(self) -> int:
        """The number of operational modes ``s`` of the Markovian environment (Eq. 12)."""
        return expected_num_modes(self.num_servers, self.operative, self.inoperative)

    @cached_property
    def environment(self) -> BreakdownEnvironment:
        """The Markovian environment induced by the period distributions."""
        return BreakdownEnvironment(
            num_servers=self.num_servers,
            operative=self.operative,
            inoperative=self.inoperative,
        )

    # ------------------------------------------------------------------ #
    # Model surgery helpers used by the experiment harness
    # ------------------------------------------------------------------ #

    def with_servers(self, num_servers: int) -> "UnreliableQueueModel":
        """Return a copy of the model with a different number of servers."""
        return replace(self, num_servers=num_servers)

    def with_arrival_rate(self, arrival_rate: float) -> "UnreliableQueueModel":
        """Return a copy of the model with a different arrival rate."""
        return replace(self, arrival_rate=arrival_rate)

    def with_periods(
        self,
        operative: Distribution | None = None,
        inoperative: Distribution | None = None,
    ) -> "UnreliableQueueModel":
        """Return a copy with different operative and/or inoperative distributions."""
        return replace(
            self,
            operative=operative if operative is not None else self.operative,
            inoperative=inoperative if inoperative is not None else self.inoperative,
        )

    # ------------------------------------------------------------------ #
    # Solvers (lazy imports to keep the package import graph acyclic)
    # ------------------------------------------------------------------ #

    def solve_spectral(self) -> "SpectralSolution":
        """Solve the model exactly by spectral expansion (paper Section 3.1)."""
        from ..spectral.solution import solve_spectral

        return solve_spectral(self)

    def solve_geometric(self) -> "GeometricSolution":
        """Solve the model approximately by the geometric law (paper Section 3.2)."""
        from ..spectral.approximation import solve_geometric

        return solve_geometric(self)

    def solve_ctmc(
        self,
        max_queue_length: int | None = None,
        *,
        warm_start: "TruncatedCTMCSolution | None" = None,
    ) -> "TruncatedCTMCSolution":
        """Solve a truncated-CTMC reference model (validation baseline).

        ``warm_start`` seeds the truncation level and the iterative solver's
        initial iterate from a nearby model's solution (parameter sweeps).
        """
        from .ctmc_reference import solve_truncated_ctmc

        return solve_truncated_ctmc(
            self, max_queue_length=max_queue_length, warm_start=warm_start
        )

    def simulate(
        self,
        *,
        horizon: float,
        warmup_fraction: float = 0.1,
        num_batches: int = 10,
        seed: int = 0,
    ) -> "SimulationEstimate":
        """Estimate performance by discrete-event simulation.

        Unlike the analytical solvers this accepts arbitrary period
        distributions (the paper uses simulation for the deterministic
        ``C^2 = 0`` point of Figure 6).
        """
        from ..simulation.queue_sim import simulate_queue

        return simulate_queue(
            self,
            horizon=horizon,
            warmup_fraction=warmup_fraction,
            num_batches=num_batches,
            seed=seed,
        )


def sun_fitted_model(
    num_servers: int,
    arrival_rate: float,
    *,
    service_rate: float = 1.0,
    repair_rate: float = 25.0,
) -> UnreliableQueueModel:
    """Build the model used throughout the paper's Section-4 experiments.

    Operative periods follow the fitted Sun hyperexponential
    (``alpha = (0.7246, 0.2754)``, ``xi = (0.1663, 0.0091)``); inoperative
    periods are exponential with rate ``eta`` (the paper uses ``eta = 25`` in
    Figures 5, 8 and 9); the mean service time is ``1 / mu = 1``.
    """
    from ..distributions import SUN_OPERATIVE_FIT

    return UnreliableQueueModel(
        num_servers=num_servers,
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        operative=SUN_OPERATIVE_FIT,
        inoperative=Exponential(rate=repair_rate),
    )
