"""Truncated-CTMC reference solution for validation.

The spectral expansion handles the infinite queue exactly.  As an independent
check, this module solves the same Markov process on a *finite* state space by
truncating the queue at a large level ``J`` and solving the global balance
equations of the resulting CTMC with sparse linear algebra.  For a stable
queue and a sufficiently large ``J`` the truncation error is negligible, so
the two solvers must agree — the integration tests rely on this.

The truncation level is chosen automatically from the asymptotic decay rate
of the queue-length tail: the tail decays geometrically with the dominant
eigenvalue ``z_s`` of the spectral expansion, so ``J = N + log(eps) / log(z_s)``
captures all but a vanishing fraction of the probability mass.  (The effective
load ``rho`` is *not* a valid bound on ``z_s`` — with slow repairs the true
decay rate can exceed ``rho`` substantially, which used to leave non-negligible
mass at the truncation boundary.)  As a safety net, :func:`solve_truncated_ctmc`
checks the realised boundary mass after solving and re-solves with a doubled
level until the target tail mass is met or the hard cap is reached.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse

from .._validation import check_positive_int
from ..exceptions import ReproError, SolverError
from ..markov import LevelModeStructure, assemble_level_mode_generator, steady_state_csr
from ..obs.metrics import numerics_registry
from .model import UnreliableQueueModel
from .solution_base import QueueSolution

#: Target truncation tail mass used when choosing the truncation level.
_DEFAULT_TAIL_MASS = 1e-10

#: Hard bounds on the automatically chosen truncation level (above ``N``).
_MIN_EXTRA_LEVELS = 100
_MAX_EXTRA_LEVELS = 40_000


def _tail_decay_rate(model: UnreliableQueueModel) -> float:
    """The asymptotic queue-length decay rate used to size the truncation.

    The exact rate is the dominant eigenvalue ``z_s`` of the characteristic
    polynomial, obtained by the robust spectral-abscissa root finder.  When it
    cannot be computed (non-Markovian periods, critically loaded or otherwise
    ill-conditioned configurations) the effective load is used instead — a
    heuristic, not a bound, which is why the adaptive re-solve loop in
    :func:`solve_truncated_ctmc` exists.
    """
    try:
        from ..spectral.approximation import decay_rate_bisection
        from ..spectral.qbd import ModulatedQueueMatrices

        matrices = ModulatedQueueMatrices(
            environment=model.environment,
            arrival_rate=model.arrival_rate,
            service_rate=model.service_rate,
        )
        return decay_rate_bisection(matrices)
    except ReproError:
        return model.effective_load


def default_truncation_level(model: UnreliableQueueModel) -> int:
    """A truncation level that keeps the neglected tail mass below ~1e-10."""
    decay = min(_tail_decay_rate(model), 0.999999)
    if decay <= 0.0:
        extra = _MIN_EXTRA_LEVELS
    else:
        extra = int(math.ceil(math.log(_DEFAULT_TAIL_MASS) / math.log(decay)))
        extra = min(max(extra, _MIN_EXTRA_LEVELS), _MAX_EXTRA_LEVELS)
    return model.num_servers + extra


class TruncatedCTMCSolution(QueueSolution):
    """Steady-state solution of the finite (truncated) Markov chain.

    Attributes are exposed through the common :class:`QueueSolution`
    interface; :attr:`truncation_level` and :meth:`truncation_mass` report how
    aggressive the truncation was.
    """

    def __init__(
        self,
        model: UnreliableQueueModel,
        probabilities: np.ndarray,
    ) -> None:
        self._model = model
        self._probabilities = probabilities  # shape (levels, modes)
        self._level_totals = probabilities.sum(axis=1)

    @property
    def model(self) -> UnreliableQueueModel:
        """The model that was solved."""
        return self._model

    @property
    def arrival_rate(self) -> float:
        return self._model.arrival_rate

    @property
    def num_servers(self) -> int:
        return self._model.num_servers

    @property
    def truncation_level(self) -> int:
        """The largest queue length represented in the finite chain."""
        return int(self._probabilities.shape[0] - 1)

    def truncation_mass(self) -> float:
        """The probability mass at the truncation boundary (diagnostic).

        A well-chosen truncation level makes this negligible; validation
        tests assert it is tiny before comparing against the exact solution.
        """
        return float(self._level_totals[-1])

    def level_vector(self, num_jobs: int) -> np.ndarray:
        """The probability vector over modes at level ``num_jobs``."""
        if num_jobs < 0 or num_jobs > self.truncation_level:
            return np.zeros(self._probabilities.shape[1])
        return self._probabilities[num_jobs].copy()

    def queue_length_pmf(self, num_jobs: int) -> float:
        if num_jobs < 0 or num_jobs > self.truncation_level:
            return 0.0
        return float(self._level_totals[num_jobs])

    def mode_marginals(self) -> np.ndarray:
        totals = self._probabilities.sum(axis=0)
        return totals / totals.sum()

    @property
    def probabilities_by_level(self) -> np.ndarray:
        """The full ``(levels, modes)`` probability array (a copy)."""
        return self._probabilities.copy()

    @property
    def mean_queue_length(self) -> float:
        levels = np.arange(self._level_totals.size)
        return float(np.dot(levels, self._level_totals))

    @property
    def mean_jobs_in_service(self) -> float:
        """Exact mean number of busy servers under the truncated chain."""
        counts = self._model.environment.operative_counts
        total = 0.0
        for level in range(self._probabilities.shape[0]):
            busy = np.minimum(counts, float(level))
            total += float(self._probabilities[level] @ busy)
        return total

    @property
    def mean_jobs_waiting(self) -> float:
        return self.mean_queue_length - self.mean_jobs_in_service

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TruncatedCTMCSolution(N={self.num_servers}, "
            f"levels={self.truncation_level + 1}, L={self.mean_queue_length:.4f})"
        )


def build_truncated_generator(
    model: UnreliableQueueModel, max_queue_length: int
) -> scipy.sparse.csr_matrix:
    """Build the sparse generator of the truncated chain.

    States are ordered level-major: state ``(mode i, level j)`` has index
    ``j * s + i``.  Arrivals at the truncation boundary are dropped, which is
    the usual finite-buffer truncation and biases the solution optimistically
    by a negligible amount when the boundary mass is tiny.
    """
    max_queue_length = check_positive_int(max_queue_length, "max_queue_length")
    environment = model.environment
    counts = np.asarray(environment.operative_counts, dtype=float)
    levels = np.arange(max_queue_length + 1, dtype=float)
    departures = np.minimum(counts[None, :], levels[:, None]) * model.service_rate
    return assemble_level_mode_generator(
        environment.transition_matrix_sparse,
        model.arrival_rate,
        departures,
    )


def chain_structure(model: UnreliableQueueModel, max_queue_length: int) -> LevelModeStructure:
    """The level x mode structure of the model's truncated chain."""
    environment = model.environment
    return LevelModeStructure(
        num_levels=max_queue_length + 1,
        num_modes=environment.num_modes,
        mode_generator=environment.generator_sparse,
    )


def solve_truncated_ctmc(
    model: UnreliableQueueModel,
    max_queue_length: int | None = None,
    *,
    warm_start: TruncatedCTMCSolution | None = None,
) -> TruncatedCTMCSolution:
    """Solve the truncated chain and wrap the result in a :class:`TruncatedCTMCSolution`.

    Parameters
    ----------
    model:
        The queueing model (must be stable; otherwise the truncated solution
        would silently misrepresent an unstable system).
    max_queue_length:
        The truncation level ``J``.  When omitted it is chosen automatically
        from the asymptotic decay rate, and the solve is *adaptive*: if the
        realised boundary mass exceeds the ~1e-10 target the level is doubled
        (up to the hard cap) and the chain re-solved.  An explicit level is
        used as given, with no adaptation.
    warm_start:
        A previously computed solution of a *nearby* model: its truncation
        level seeds the level search and its probabilities seed the iterative
        solver's initial iterate when the chain is large enough to need it.
    """
    model.require_stable()
    if max_queue_length is not None:
        if max_queue_length <= model.num_servers:
            raise SolverError(
                "max_queue_length must exceed the number of servers "
                f"({max_queue_length} <= {model.num_servers})"
            )
        return _solve_at_level(model, max_queue_length, warm_start)

    level = default_truncation_level(model)
    if warm_start is not None:
        level = max(warm_start.truncation_level, model.num_servers + 1)
    solution = _solve_at_level(model, level, warm_start)
    while (
        solution.truncation_mass() > _DEFAULT_TAIL_MASS
        and level - model.num_servers < _MAX_EXTRA_LEVELS
    ):
        extra = min(2 * (level - model.num_servers), _MAX_EXTRA_LEVELS)
        level = model.num_servers + extra
        numerics_registry().counter(
            "repro_ctmc_truncation_growths_total",
            "Adaptive re-solves after the boundary mass exceeded its target.",
        ).inc()
        solution = _solve_at_level(model, level, warm_start)
    return solution


def _solve_at_level(
    model: UnreliableQueueModel,
    max_queue_length: int,
    warm_start: TruncatedCTMCSolution | None = None,
) -> TruncatedCTMCSolution:
    """Solve the truncated chain at one fixed truncation level."""
    generator = build_truncated_generator(model, max_queue_length)
    structure = chain_structure(model, max_queue_length)
    x0: np.ndarray | None = None
    if warm_start is not None:
        previous = warm_start.probabilities_by_level
        if previous.shape[1] == structure.num_modes:
            seed = np.zeros((max_queue_length + 1, structure.num_modes))
            common = min(max_queue_length + 1, previous.shape[0])
            seed[:common] = previous[:common]
            x0 = seed.ravel()
    stationary = steady_state_csr(generator, structure=structure, x0=x0)
    probabilities = stationary.reshape(max_queue_length + 1, model.environment.num_modes)
    return TruncatedCTMCSolution(model=model, probabilities=probabilities)
