"""Common interface shared by all steady-state solutions of the model.

The exact spectral-expansion solution, the geometric approximation, the
truncated-CTMC reference solver and (with estimator caveats) the simulator
all answer the same questions:

* the distribution of the number of jobs present;
* the mean number of jobs ``L`` and, by Little's law, the mean response time
  ``W = L / lambda``;
* tail probabilities and quantiles of the queue length;
* the marginal distribution over operational modes.

This module defines the :class:`QueueSolution` base class that provides the
derived quantities once a subclass implements the two primitives
:meth:`QueueSolution.queue_length_pmf` and
:meth:`QueueSolution.mode_marginals`, plus the small
:class:`PerformanceSummary` record that the experiment harness prints.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative_int, check_probability


@dataclass(frozen=True)
class PerformanceSummary:
    """Headline steady-state performance metrics of a solved model.

    Attributes
    ----------
    mean_jobs:
        The mean number of jobs present, ``L``.
    mean_response_time:
        The mean response time ``W = L / lambda`` (Little's law).
    mean_queueing_jobs:
        The mean number of jobs waiting (not in service).
    probability_empty:
        The probability that no job is present.
    probability_delay:
        The probability that an arriving job cannot start service at once
        (by PASTA, the probability that the number of jobs present is at
        least the number of operative servers).
    """

    mean_jobs: float
    mean_response_time: float
    mean_queueing_jobs: float
    probability_empty: float
    probability_delay: float


class QueueSolution(abc.ABC):
    """Steady-state solution of an unreliable multi-server queue.

    Subclasses implement the primitives; every derived metric defined here is
    computed from those primitives so the different solvers expose identical
    semantics.
    """

    #: Relative tolerance used when summing queue-length tails numerically.
    _TAIL_EPSILON = 1e-12

    # ------------------------------------------------------------------ #
    # Primitives
    # ------------------------------------------------------------------ #

    @property
    @abc.abstractmethod
    def arrival_rate(self) -> float:
        """The arrival rate ``lambda`` of the solved model."""

    @property
    @abc.abstractmethod
    def num_servers(self) -> int:
        """The number of servers ``N`` of the solved model."""

    @abc.abstractmethod
    def queue_length_pmf(self, num_jobs: int) -> float:
        """The steady-state probability of exactly ``num_jobs`` jobs present."""

    @abc.abstractmethod
    def mode_marginals(self) -> np.ndarray:
        """The marginal distribution over operational modes (sums to one)."""

    @property
    @abc.abstractmethod
    def mean_queue_length(self) -> float:
        """The mean number of jobs present ``L`` (paper Section 4)."""

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    @property
    def mean_response_time(self) -> float:
        """The mean response time ``W = L / lambda`` (Little's law)."""
        return self.mean_queue_length / self.arrival_rate

    @property
    def mean_jobs_in_service(self) -> float:
        """The mean number of jobs in service (= throughput / service rate).

        For a stable queue the throughput equals ``lambda``, so by Little's
        law applied to the service stations this is ``lambda / mu``.  It is
        computed here from the queue-length distribution for solvers that
        expose per-mode detail; the base implementation uses the
        distributional identity ``E[min(jobs, operative servers)]`` summed
        over modes when available, and falls back to ``L`` minus the mean
        number waiting.
        """
        return self.mean_queue_length - self.mean_jobs_waiting

    @property
    def mean_jobs_waiting(self) -> float:
        """The mean number of jobs waiting for service (not being served).

        Computed as ``sum_j max(j - N, 0) p(j)`` plus the contribution of
        partially staffed modes; the base implementation uses the
        conservative bound that at most ``N`` jobs are in service, i.e.
        ``E[(jobs - N)^+]``.  Subclasses with per-mode information override
        this with the exact value.
        """
        total = 0.0
        level = self.num_servers + 1
        remaining = 1.0 - self.queue_length_cdf(self.num_servers)
        while remaining > self._TAIL_EPSILON and level < 10_000_000:
            probability = self.queue_length_pmf(level)
            total += (level - self.num_servers) * probability
            remaining -= probability
            level += 1
        return total

    def queue_length_cdf(self, num_jobs: int) -> float:
        """The probability that at most ``num_jobs`` jobs are present."""
        num_jobs = check_non_negative_int(num_jobs, "num_jobs")
        return float(sum(self.queue_length_pmf(j) for j in range(num_jobs + 1)))

    def queue_length_tail(self, num_jobs: int) -> float:
        """The probability that more than ``num_jobs`` jobs are present."""
        return max(0.0, 1.0 - self.queue_length_cdf(num_jobs))

    def queue_length_quantile(self, probability: float) -> int:
        """The smallest ``j`` such that ``P(jobs <= j) >= probability``."""
        probability = check_probability(probability, "probability")
        cumulative = 0.0
        level = 0
        while cumulative < probability:
            cumulative += self.queue_length_pmf(level)
            if cumulative >= probability:
                return level
            level += 1
            if level > 100_000_000:  # pragma: no cover - defensive guard
                break
        return level

    @property
    def probability_empty(self) -> float:
        """The probability that the system is empty."""
        return self.queue_length_pmf(0)

    @property
    def probability_delay(self) -> float:
        """The probability that at least ``N`` jobs are present.

        With all servers operative this is the probability an arriving job
        must wait; with breakdowns it is a lower bound on that probability
        (jobs also wait when fewer servers are operative), so subclasses with
        per-mode detail refine it.
        """
        return self.queue_length_tail(self.num_servers - 1)

    def queue_length_distribution(self, max_jobs: int) -> np.ndarray:
        """The probabilities ``p(0), ..., p(max_jobs)`` as an array."""
        max_jobs = check_non_negative_int(max_jobs, "max_jobs")
        return np.array([self.queue_length_pmf(j) for j in range(max_jobs + 1)])

    def summary(self) -> PerformanceSummary:
        """Collect the headline metrics into a :class:`PerformanceSummary`."""
        return PerformanceSummary(
            mean_jobs=self.mean_queue_length,
            mean_response_time=self.mean_response_time,
            mean_queueing_jobs=self.mean_jobs_waiting,
            probability_empty=self.probability_empty,
            probability_delay=self.probability_delay,
        )

    def total_cost(self, holding_cost: float, server_cost: float) -> float:
        """The steady-state cost ``C = c1 L + c2 N`` of paper Eq. 22."""
        return holding_cost * self.mean_queue_length + server_cost * self.num_servers
