"""Queueing-model front end, baselines and reference solvers.

Public API
----------

* :class:`UnreliableQueueModel`, :func:`sun_fitted_model` — the Palmer–Mitrani
  model (stability condition, environment, solver entry points).
* :class:`QueueSolution`, :class:`PerformanceSummary` — the common solution
  interface shared by the exact, approximate, reference and simulated
  solutions.
* :class:`TruncatedCTMCSolution`, :func:`solve_truncated_ctmc`,
  :func:`build_truncated_generator`, :func:`default_truncation_level` — the
  finite-chain validation solver.
* :func:`erlang_c`, :func:`erlang_b`, :func:`mmc_metrics`,
  :func:`mm1_mean_queue_length`, :func:`mm1_queue_length_pmf`,
  :func:`required_servers_erlang_c`, :class:`MMcMetrics` — reliable-server
  baselines.
"""

from .ctmc_reference import (
    TruncatedCTMCSolution,
    build_truncated_generator,
    default_truncation_level,
    solve_truncated_ctmc,
)
from .erlang import (
    MMcMetrics,
    erlang_b,
    erlang_c,
    mm1_mean_queue_length,
    mm1_queue_length_pmf,
    mmc_metrics,
    required_servers_erlang_c,
)
from .model import UnreliableQueueModel, sun_fitted_model
from .solution_base import PerformanceSummary, QueueSolution

__all__ = [
    "UnreliableQueueModel",
    "sun_fitted_model",
    "QueueSolution",
    "PerformanceSummary",
    "TruncatedCTMCSolution",
    "solve_truncated_ctmc",
    "build_truncated_generator",
    "default_truncation_level",
    "MMcMetrics",
    "erlang_c",
    "erlang_b",
    "mmc_metrics",
    "mm1_mean_queue_length",
    "mm1_queue_length_pmf",
    "required_servers_erlang_c",
]
