"""Uniformization (randomization) of a CTMC: time-dependent distributions.

Uniformization turns the continuous-time problem ``pi(t) = pi(0) e^{Qt}``
into a randomly-stopped discrete-time one.  With a uniformization rate
``Lambda >= max_i |Q_ii|`` the matrix ``P = I + Q / Lambda`` is a proper
stochastic matrix and

.. math::

    \\pi(t) \\;=\\; \\sum_{k \\ge 0} e^{-\\Lambda t}
    \\frac{(\\Lambda t)^k}{k!} \\; v_k,
    \\qquad v_0 = \\pi(0), \\quad v_{k+1} = v_k P,

i.e. the transient distribution is a Poisson mixture of the DTMC iterates
``v_k``.  Three properties make this the work-horse of transient analysis and
are all exploited here:

* **numerical robustness** — every intermediate quantity is a probability
  vector and every weight is non-negative, so there is no catastrophic
  cancellation (unlike a truncated Taylor series of ``e^{Qt}``);
* **adaptive truncation** — the Poisson tail beyond ``k`` is an explicit
  bound on the neglected mass, so the series is cut once the accumulated
  weight reaches ``1 - tol`` *per evaluation time*;
* **checkpointed multi-``t`` evaluation** — the iterates ``v_k`` do not
  depend on ``t``; one sweep of vector-matrix products serves an entire time
  grid, each time point just mixing the same iterates with its own Poisson
  weights.  Evaluating ``m`` grid points costs one pass to the largest
  ``Lambda t``, not ``m`` passes.

On top of the sweep, :func:`transient_distributions` detects stationarity of
the DTMC iterates: once ``||v_{k+1} - v_k||_1`` falls below a threshold the
remaining Poisson mass of every time point is assigned to the current
iterate, which caps the cost of large-``t`` evaluations at the mixing time of
the uniformized chain rather than at ``Lambda t``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
import scipy.sparse
import scipy.stats

from ..exceptions import ParameterError, SolverError
from ..markov.kernels import UniformizedOperator

#: Default bound on the Poisson mass neglected per evaluation time.
DEFAULT_TAIL_TOLERANCE = 1e-12

#: Default L1 threshold under which the DTMC iterates are declared stationary.
DEFAULT_STATIONARY_TOLERANCE = 1e-13

#: Hard cap on the number of uniformization steps (runaway-loop backstop).
MAX_UNIFORMIZATION_STEPS = 20_000_000


@dataclass(frozen=True)
class UniformizationResult:
    """Transient distributions over a time grid, with diagnostics.

    Attributes
    ----------
    times:
        The evaluation times, in the caller's order.
    distributions:
        Array of shape ``(len(times), num_states)``; row ``i`` is ``pi(times[i])``.
    rate:
        The uniformization rate ``Lambda``.
    steps:
        Number of DTMC steps (vector-matrix products) actually performed.
    stationary_step:
        The step at which the iterates were detected stationary, or ``None``
        when the sweep ran to the Poisson truncation point instead.
    """

    times: tuple[float, ...]
    distributions: np.ndarray
    rate: float
    steps: int
    stationary_step: int | None


def uniformization_rate(generator: scipy.sparse.spmatrix | np.ndarray) -> float:
    """The uniformization rate ``Lambda = max_i |Q_ii|`` of a generator."""
    if scipy.sparse.issparse(generator):
        diagonal = generator.diagonal()
    else:
        diagonal = np.diag(np.asarray(generator, dtype=float))
    return float(np.max(-diagonal)) if diagonal.size else 0.0


def uniformized_matrix(
    generator: scipy.sparse.spmatrix | np.ndarray, rate: float | None = None
) -> tuple[scipy.sparse.csr_matrix, float]:
    """The uniformized DTMC matrix ``P = I + Q / Lambda`` and the rate used.

    A ``rate`` below the largest exit rate would produce negative entries, so
    it is rejected; ``None`` selects ``max_i |Q_ii|`` (the tightest valid
    choice, which minimises the number of steps per unit time).

    Delegates to the shared kernel layer
    (:class:`repro.markov.kernels.UniformizedOperator`); callers that run the
    sweep themselves should use the operator directly — it caches the CSR
    transpose, making each step a single matrix-vector product.
    """
    operator = UniformizedOperator.from_generator(generator, rate)
    return operator.matrix, operator.rate


def poisson_truncation_point(mean: float, tol: float) -> int:
    """The smallest ``K`` with Poisson tail ``P(X > K) <= tol`` for mean ``mean``."""
    if mean <= 0.0:
        return 0
    point = int(scipy.stats.poisson.isf(tol, mean))
    # isf returns the smallest k with sf(k) <= tol already, but guard against
    # boundary rounding by nudging upward while the tail is still too heavy.
    while scipy.stats.poisson.sf(point, mean) > tol:  # pragma: no cover - rare
        point += 1
    return point


def transient_distributions(
    generator: scipy.sparse.spmatrix | np.ndarray,
    initial: np.ndarray,
    times: float | Sequence[float] | np.ndarray,
    *,
    tol: float = DEFAULT_TAIL_TOLERANCE,
    stationary_tol: float = DEFAULT_STATIONARY_TOLERANCE,
) -> UniformizationResult:
    """Evaluate ``pi(t) = pi(0) e^{Qt}`` on a whole time grid in one pass.

    Parameters
    ----------
    generator:
        A CTMC generator (dense or sparse).  Rows of absorbing states may be
        zero, so the same routine serves first-passage (absorbing-state)
        analysis.
    initial:
        The initial distribution ``pi(0)`` (non-negative, sums to one).
    times:
        Evaluation times (non-negative, any order; each is evaluated exactly).
    tol:
        Bound on the Poisson mass neglected per time point.  The neglected
        tail is re-assigned to the last computed iterate, so the returned
        rows still sum to one.
    stationary_tol:
        L1 threshold under which the DTMC iterates are declared stationary
        and the remaining Poisson mass of every time point is closed in one
        step.  Set to ``0`` to disable detection.
    """
    requested = tuple(float(t) for t in np.atleast_1d(np.asarray(times, dtype=float)))
    if not requested:
        raise ParameterError("at least one evaluation time is required")
    if any(t < 0.0 for t in requested):
        raise ParameterError(f"evaluation times must be non-negative, got {min(requested)}")
    if not 0.0 < tol < 1.0:
        raise ParameterError(f"tol must lie strictly between 0 and 1, got {tol}")

    start = np.asarray(initial, dtype=float)
    operator = UniformizedOperator.from_generator(generator)
    rate = operator.rate
    if start.shape != (operator.size,):
        raise ParameterError(
            f"initial distribution has shape {start.shape}, expected ({operator.size},)"
        )
    if np.any(start < -1e-12) or not np.isclose(start.sum(), 1.0, atol=1e-9):
        raise ParameterError("initial distribution must be non-negative and sum to one")
    start = np.clip(start, 0.0, None)
    start = start / start.sum()

    result = np.zeros((len(requested), operator.size))
    if rate == 0.0:
        result[:] = start
        return UniformizationResult(requested, result, 0.0, 0, 0)

    means = np.array([rate * t for t in requested])
    horizon = poisson_truncation_point(float(means.max()), tol)
    if horizon > MAX_UNIFORMIZATION_STEPS:
        raise SolverError(
            f"uniformization needs ~{horizon} steps (Lambda*t = {means.max():.3g}); "
            f"the cap is {MAX_UNIFORMIZATION_STEPS} — reduce the horizon or the rate"
        )

    # Per-time Poisson weights via the stable recurrence w_k = w_{k-1} mean/k,
    # seeded at w_0 = e^-mean.  Large means underflow the seed, so each time
    # point is carried in log space (log w_k = log w_{k-1} + log mean - log k)
    # until its weight is comfortably inside the normal floating-point range,
    # then switched to the linear recurrence.  Never seed from a subnormal:
    # subnormals carry only a few significant bits and the recurrence would
    # amplify that error into the percent range as the weights climb.
    with np.errstate(divide="ignore"):
        log_means = np.where(means > 0.0, np.log(means), -np.inf)
    log_weights = -means.astype(float)
    weights = np.exp(log_weights)
    # Subnormal seeds (Lambda*t in roughly (708, 745)) carry only a few
    # significant bits; keep those times in log space until emergence.
    linear = weights >= np.finfo(float).tiny
    weights[~linear] = 0.0
    accumulated = weights.copy()
    active = accumulated < 1.0 - tol

    vector = start.copy()
    for index in np.nonzero(weights)[0]:
        result[index] += weights[index] * vector

    steps = 0
    stationary_step: int | None = None
    # One errstate context around the whole sweep (entering one per step is
    # measurable overhead at thousands of steps); the DTMC step itself goes
    # through the kernel operator, whose cached CSR transpose turns ``v P``
    # into a single matrix-vector product.
    with np.errstate(under="ignore", invalid="ignore"):
        for k in range(1, horizon + 1):
            if not active.any():
                break
            previous = vector
            vector = operator.step(previous)
            steps = k
            log_weights += log_means - np.log(k)
            weights[linear] *= means[linear] / k
            emerging = active & ~linear & (log_weights > -650.0)
            if emerging.any():
                weights[emerging] = np.exp(log_weights[emerging])
                linear |= emerging
            contributing = active & (weights > 0.0)
            for index in np.nonzero(contributing)[0]:
                result[index] += weights[index] * vector
            accumulated += np.where(active, weights, 0.0)
            active &= accumulated < 1.0 - tol

            if stationary_tol > 0.0 and float(np.abs(vector - previous).sum()) < stationary_tol:
                stationary_step = k
                break

    # Close the series: assign each time point's remaining Poisson mass to the
    # last iterate (exact under detected stationarity, a <= tol perturbation
    # otherwise), so every returned row sums to one.
    remaining = 1.0 - accumulated
    for index in np.nonzero(remaining > 0.0)[0]:
        result[index] += remaining[index] * vector

    result = np.clip(result, 0.0, None)
    return UniformizationResult(requested, result, rate, steps, stationary_step)
