"""Transient analysis of the unreliable multi-server queue.

The steady-state pillars of the library (spectral expansion, geometric
approximation, CTMC reference, simulation) answer "what does the system look
like eventually?".  This package answers the *time-dependent* questions —
"what does the queue look like 10 minutes after a rack fails?", "what is the
probability every server is down before ``t``?" — for both the paper's
homogeneous model and any scenario model:

* :func:`solve_transient` / :class:`TransientSolution` — state distributions
  ``pi(t)`` on the truncated chain by uniformization, with adaptive
  Poisson-tail truncation, one-pass evaluation of a whole time grid, and
  steady-state detection; derived trajectories for the expected queue
  length, point availability ``A(t)``, empty/all-down probabilities and
  queue tails, plus CSV/JSON export.
* :func:`first_passage_time` / :class:`FirstPassageSolution` — first-passage
  CDFs and mean hitting times to named target sets (every server down, queue
  exceeds ``L``) via absorbing-state uniformization.
* :func:`simulate_transient` / :class:`TransientEnsembleEstimate` — the
  simulators' transient counterpart: an ensemble of replications sampled on
  the same grid, with across-replication confidence intervals, used to
  cross-validate the analytical engine (and to cover non-phase-type models).
* :func:`transient_distributions` — the generator-level uniformization
  engine, reusable for any CTMC.

The subsystem is wired through the rest of the stack: a ``transient`` entry
in the :mod:`repro.solvers` registry (time grids ride in
:class:`~repro.solvers.SolverPolicy.transient_times`, so cached outcomes are
keyed by grid), a :class:`~repro.sweeps.TimeGridAxis` for sweeping over both
parameters and time, and the ``repro transient`` CLI subcommand.

Example
-------

>>> from repro.queueing import sun_fitted_model
>>> from repro.transient import solve_transient
>>> solution = solve_transient(
...     sun_fitted_model(num_servers=4, arrival_rate=2.0), times=(1.0, 10.0, 100.0)
... )
>>> [round(value, 3) for value in solution.availability]  # doctest: +SKIP
[0.999, 0.998, 0.998]
"""

from .analysis import (
    DEFAULT_TIME_GRID,
    INITIAL_CONDITIONS,
    initial_distribution,
    normalise_times,
    solve_transient,
)
from .ensemble import TransientEnsembleEstimate, simulate_transient
from .first_passage import (
    TARGET_NAMES,
    FirstPassageSolution,
    first_passage_time,
    target_mask,
)
from .solution import TransientSolution
from .uniformization import (
    UniformizationResult,
    poisson_truncation_point,
    transient_distributions,
    uniformization_rate,
    uniformized_matrix,
)

__all__ = [
    "DEFAULT_TIME_GRID",
    "INITIAL_CONDITIONS",
    "TARGET_NAMES",
    "FirstPassageSolution",
    "TransientEnsembleEstimate",
    "TransientSolution",
    "UniformizationResult",
    "first_passage_time",
    "initial_distribution",
    "normalise_times",
    "poisson_truncation_point",
    "simulate_transient",
    "solve_transient",
    "target_mask",
    "transient_distributions",
    "uniformization_rate",
    "uniformized_matrix",
]
