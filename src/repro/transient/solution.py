"""Time-indexed transient solutions and their derived metrics.

A :class:`TransientSolution` holds the state distributions ``pi(t)`` of the
truncated chain over a whole time grid — shape ``(times, levels, modes)`` —
and answers the questions operators actually ask about them: the expected
queue length trajectory, point availability ``A(t)``, the probability that
every server is down, queue-tail probabilities, and per-time distributions.
It also exports the per-time headline metrics as CSV/JSON rows (the format
the ``repro transient`` CLI subcommand writes).
"""

from __future__ import annotations

import csv
import json
import math
from collections.abc import Sequence
from functools import cached_property
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .analysis import TransientModel

#: Metric columns of :meth:`TransientSolution.to_rows`, in export order.
METRIC_COLUMNS = (
    "mean_queue_length",
    "availability",
    "probability_empty",
    "probability_all_inoperative",
    "truncation_mass",
)


class TransientSolution:
    """Transient distributions of a truncated unreliable-queue chain.

    Parameters
    ----------
    model:
        The model that was analysed (an
        :class:`~repro.queueing.model.UnreliableQueueModel` or a
        :class:`~repro.scenarios.ScenarioModel`).
    times:
        The evaluation times, strictly increasing.
    probabilities:
        Array of shape ``(len(times), levels, modes)``; slice ``[i]`` is the
        distribution over ``(queue length, mode)`` at ``times[i]``.
    rate:
        The uniformization rate used by the engine (diagnostic).
    steps:
        Number of uniformization steps performed (diagnostic).
    stationary_step:
        The step at which the engine detected stationarity of the iterates,
        or ``None`` when the full Poisson truncation was swept.
    representation:
        Which chain representation the engine actually swept (``"lumped"``
        or ``"product"``); the stored probabilities are always over the
        lumped modes.
    num_solved_states:
        The state-space size of the swept chain (defaults to
        ``levels * modes`` of the stored array).
    """

    def __init__(
        self,
        model: "TransientModel",
        times: Sequence[float],
        probabilities: np.ndarray,
        *,
        rate: float,
        steps: int,
        stationary_step: int | None = None,
        representation: str = "lumped",
        num_solved_states: int | None = None,
    ) -> None:
        self._model = model
        self._times = tuple(float(t) for t in times)
        self._probabilities = np.asarray(probabilities, dtype=float)
        if self._probabilities.ndim != 3 or self._probabilities.shape[0] != len(self._times):
            raise ParameterError(
                f"probabilities must have shape (times, levels, modes), got "
                f"{self._probabilities.shape} for {len(self._times)} times"
            )
        self._rate = float(rate)
        self._steps = int(steps)
        self._stationary_step = stationary_step
        self._representation = representation
        if num_solved_states is None:
            num_solved_states = int(self._probabilities.shape[1] * self._probabilities.shape[2])
        self._num_solved_states = num_solved_states

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def model(self) -> "TransientModel":
        """The model that was analysed."""
        return self._model

    @property
    def times(self) -> tuple[float, ...]:
        """The evaluation times, strictly increasing."""
        return self._times

    @property
    def truncation_level(self) -> int:
        """The largest queue length represented in the finite chain."""
        return int(self._probabilities.shape[1] - 1)

    @property
    def num_modes(self) -> int:
        """The number of environment modes of the chain."""
        return int(self._probabilities.shape[2])

    @property
    def uniformization_rate(self) -> float:
        """The uniformization rate ``Lambda`` used by the engine."""
        return self._rate

    @property
    def steps(self) -> int:
        """The number of uniformization steps performed."""
        return self._steps

    @property
    def reached_stationarity(self) -> bool:
        """Whether the engine detected stationarity before the truncation point."""
        return self._stationary_step is not None

    @property
    def representation(self) -> str:
        """Which chain representation was swept (``"lumped"`` or ``"product"``)."""
        return self._representation

    @property
    def num_solved_states(self) -> int:
        """The state-space size of the chain that was actually swept."""
        return self._num_solved_states

    def index_of(self, t: float) -> int:
        """The grid index of evaluation time ``t`` (must be on the grid)."""
        for index, value in enumerate(self._times):
            if math.isclose(value, t, rel_tol=1e-12, abs_tol=1e-12):
                return index
        raise ParameterError(f"time {t} is not on the evaluation grid {self._times}")

    def distribution_at(self, t: float) -> np.ndarray:
        """The ``(levels, modes)`` distribution at grid time ``t`` (copy)."""
        return self._probabilities[self.index_of(t)].copy()

    # ------------------------------------------------------------------ #
    # Derived trajectories (arrays aligned with :attr:`times`)
    # ------------------------------------------------------------------ #

    @cached_property
    def _level_totals(self) -> np.ndarray:
        """Queue-length marginals, shape ``(times, levels)``."""
        return self._probabilities.sum(axis=2)

    @cached_property
    def _mode_totals(self) -> np.ndarray:
        """Mode marginals, shape ``(times, modes)``."""
        return self._probabilities.sum(axis=1)

    def queue_length_pmf(self, t: float) -> np.ndarray:
        """The queue-length distribution at grid time ``t`` (copy)."""
        return self._level_totals[self.index_of(t)].copy()

    def mode_marginals(self, t: float) -> np.ndarray:
        """The environment-mode distribution at grid time ``t`` (copy)."""
        return self._mode_totals[self.index_of(t)].copy()

    @cached_property
    def mean_queue_length(self) -> np.ndarray:
        """Expected number of jobs in the system ``E[Q(t)]`` per grid time."""
        levels = np.arange(self._level_totals.shape[1])
        return self._level_totals @ levels

    @cached_property
    def mean_operative_servers(self) -> np.ndarray:
        """Expected number of operative servers per grid time."""
        counts = np.asarray(self._model.environment.operative_counts, dtype=float)
        return self._mode_totals @ counts

    @cached_property
    def availability(self) -> np.ndarray:
        """Point availability ``A(t)``: expected fraction of operative servers."""
        return self.mean_operative_servers / float(self._model.num_servers)

    @cached_property
    def probability_all_inoperative(self) -> np.ndarray:
        """Probability that every server is down, per grid time."""
        counts = np.asarray(self._model.environment.operative_counts, dtype=float)
        return self._mode_totals[:, counts == 0.0].sum(axis=1)

    @cached_property
    def probability_empty(self) -> np.ndarray:
        """Probability of an empty system, per grid time."""
        return self._level_totals[:, 0].copy()

    def queue_tail_probability(self, level: int) -> np.ndarray:
        """Probability ``P(Q(t) >= level)`` per grid time."""
        if level < 0:
            raise ParameterError(f"level must be non-negative, got {level}")
        if level > self.truncation_level:
            return np.zeros(len(self._times))
        return self._level_totals[:, level:].sum(axis=1)

    @cached_property
    def truncation_mass(self) -> np.ndarray:
        """Probability mass at the truncation boundary per grid time (diagnostic)."""
        return self._level_totals[:, -1].copy()

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def to_rows(self) -> list[dict[str, float]]:
        """One flat record per grid time with the headline metric columns."""
        columns = {
            "mean_queue_length": self.mean_queue_length,
            "availability": self.availability,
            "probability_empty": self.probability_empty,
            "probability_all_inoperative": self.probability_all_inoperative,
            "truncation_mass": self.truncation_mass,
        }
        return [
            {
                "time": self._times[index],
                **{name: float(columns[name][index]) for name in METRIC_COLUMNS},
            }
            for index in range(len(self._times))
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write the per-time metric rows to a CSV file and return its path."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=["time", *METRIC_COLUMNS])
            writer.writeheader()
            writer.writerows(self.to_rows())
        return path

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise the per-time metrics to JSON; optionally write to ``path``."""
        payload = {
            "model": repr(self._model),
            "truncation_level": self.truncation_level,
            "uniformization_rate": self._rate,
            "steps": self._steps,
            "representation": self._representation,
            "num_solved_states": self._num_solved_states,
            "rows": self.to_rows(),
        }
        text = json.dumps(payload, indent=2)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransientSolution(times={len(self._times)}, "
            f"levels={self.truncation_level + 1}, modes={self.num_modes}, "
            f"steps={self._steps})"
        )
