"""First-passage times via absorbing-state uniformization.

"How long until every server is down?"  "How long until the backlog exceeds
``L``?"  Both are first-passage questions about the same truncated chain the
steady-state solvers use: pick a *target set* of states, make them absorbing
(zero their generator rows), and run the uniformization sweep — the mass
accumulated in the target by time ``t`` is exactly the first-passage CDF
``F(t) = P(T_target <= t)``.  The mean first-passage time comes from the
classical linear system on the transient states, ``Q_TT m = -1``, solved
with sparse LU.

Truncation note: the chain is the *truncated* one, so target sets involving
queue levels near the truncation boundary inherit the (tiny) truncation
bias; the boundary-mass diagnostics of the steady-state solvers apply
unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from ..exceptions import ParameterError, SolverError
from .analysis import _truncation_builders, initial_distribution, normalise_times
from .uniformization import DEFAULT_TAIL_TOLERANCE, transient_distributions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .analysis import TransientModel

#: Named target sets accepted by :func:`target_mask`.
TARGET_NAMES = ("all-servers-down", "queue-exceeds")


def target_mask(
    model: "TransientModel",
    num_levels: int,
    target: str | Sequence[bool] | np.ndarray,
    *,
    queue_threshold: int | None = None,
) -> np.ndarray:
    """A boolean mask over the flat truncated state space selecting the target.

    Parameters
    ----------
    model:
        The queueing or scenario model (provides the environment).
    num_levels:
        Number of queue-length levels of the truncated chain (``J + 1``).
    target:
        ``"all-servers-down"`` (every server inoperative, any queue length),
        ``"queue-exceeds"`` (queue length strictly above ``queue_threshold``),
        or an explicit boolean mask of shape ``(num_levels * num_modes,)``.
    queue_threshold:
        The level ``L`` of the ``"queue-exceeds"`` target; must leave at
        least one transient level below the truncation boundary.
    """
    num_modes = model.environment.num_modes
    size = num_levels * num_modes
    if isinstance(target, str):
        if target == "all-servers-down":
            counts = np.asarray(model.environment.operative_counts, dtype=float)
            return np.tile(counts == 0.0, num_levels)
        if target == "queue-exceeds":
            if queue_threshold is None:
                raise ParameterError("the 'queue-exceeds' target needs a queue_threshold")
            threshold = int(queue_threshold)
            if threshold < 0:
                raise ParameterError(f"queue_threshold must be non-negative, got {threshold}")
            if threshold >= num_levels - 1:
                raise ParameterError(
                    f"queue_threshold {threshold} reaches the truncation level "
                    f"{num_levels - 1}; raise max_queue_length"
                )
            mask = np.zeros(size, dtype=bool)
            mask[(threshold + 1) * num_modes :] = True
            return mask
        raise ParameterError(
            f"unknown first-passage target {target!r}; expected one of "
            f"{', '.join(TARGET_NAMES)} or an explicit boolean mask"
        )
    mask = np.asarray(target, dtype=bool)
    if mask.shape != (size,):
        raise ParameterError(
            f"target mask has shape {mask.shape}, expected ({size},) for "
            f"{num_levels} levels x {num_modes} modes"
        )
    if not mask.any():
        raise ParameterError("the first-passage target set is empty")
    if mask.all():
        raise ParameterError("the first-passage target set covers every state")
    return mask.copy()


@dataclass(frozen=True)
class FirstPassageSolution:
    """The first-passage law of one target set over a time grid.

    Attributes
    ----------
    times:
        Evaluation times, strictly increasing.
    cdf:
        ``P(T_target <= times[i])`` per grid time (non-decreasing in ``i``).
    mean:
        The expected first-passage time from the initial condition.
    target:
        Human-readable description of the target set.
    num_target_states:
        Size of the target set in the truncated chain.
    """

    times: tuple[float, ...]
    cdf: tuple[float, ...]
    mean: float
    target: str
    num_target_states: int

    def probability_by(self, t: float) -> float:
        """``P(T_target <= t)`` for a grid time ``t``."""
        for index, value in enumerate(self.times):
            if np.isclose(value, t, rtol=1e-12, atol=1e-12):
                return self.cdf[index]
        raise ParameterError(f"time {t} is not on the evaluation grid {self.times}")

    def survival(self) -> tuple[float, ...]:
        """``P(T_target > times[i])`` per grid time."""
        return tuple(1.0 - value for value in self.cdf)


def first_passage_time(
    model: "TransientModel",
    times: float | Sequence[float] | np.ndarray,
    *,
    target: str | Sequence[bool] | np.ndarray = "all-servers-down",
    queue_threshold: int | None = None,
    initial: str | Sequence[float] | np.ndarray = "empty-operative",
    max_queue_length: int | None = None,
    tol: float = DEFAULT_TAIL_TOLERANCE,
) -> FirstPassageSolution:
    """First-passage CDF over a time grid, plus the mean first-passage time.

    Parameters
    ----------
    model:
        A stable Markovian queueing or scenario model.
    times:
        Evaluation times of the CDF (deduplicated, sorted ascending).
    target, queue_threshold:
        The target set (see :func:`target_mask`).
    initial:
        Initial condition (see :func:`repro.transient.initial_distribution`).
        Initial mass already inside the target counts as absorbed at 0.
    max_queue_length:
        Truncation level; defaults to the steady-state solver's level.
    tol:
        Poisson-tail tolerance of the uniformization engine.
    """
    model.require_stable()
    default_level, build_generator = _truncation_builders(model)
    level = default_level(model) if max_queue_length is None else int(max_queue_length)
    if level <= model.num_servers:
        raise ParameterError(
            "max_queue_length must exceed the number of servers "
            f"({level} <= {model.num_servers})"
        )
    generator = scipy.sparse.csr_matrix(build_generator(model, level))
    num_levels = level + 1
    mask = target_mask(model, num_levels, target, queue_threshold=queue_threshold)
    grid = normalise_times(times)
    start = initial_distribution(model, num_levels, initial)

    # Make the target absorbing by zeroing its rows (left-multiply by the
    # transient-state indicator), then sweep the absorbing chain once.
    keep = scipy.sparse.diags((~mask).astype(float))
    absorbing = (keep @ generator).tocsr()
    # Stationarity detection doubles as absorption detection: once all mass
    # is absorbed the iterates stop moving and the sweep terminates early.
    result = transient_distributions(absorbing, start, grid, tol=tol)
    cdf = result.distributions[:, mask].sum(axis=1)
    # Guard against accumulation noise: the CDF is monotone by construction.
    cdf = np.minimum(np.maximum.accumulate(np.clip(cdf, 0.0, 1.0)), 1.0)

    mean = _mean_first_passage(generator, mask, start)
    return FirstPassageSolution(
        times=grid,
        cdf=tuple(float(value) for value in cdf),
        mean=mean,
        target=target if isinstance(target, str) else "custom",
        num_target_states=int(mask.sum()),
    )


def _mean_first_passage(
    generator: scipy.sparse.csr_matrix, mask: np.ndarray, start: np.ndarray
) -> float:
    """Expected hitting time of the target via the linear system ``Q_TT m = -1``."""
    transient = np.nonzero(~mask)[0]
    restricted = generator[transient][:, transient].tocsr()
    rhs = -np.ones(transient.size)
    try:
        hitting = scipy.sparse.linalg.spsolve(restricted, rhs)
    except RuntimeError as exc:  # pragma: no cover - depends on SuperLU behaviour
        raise SolverError(f"mean first-passage solve failed: {exc}") from exc
    hitting = np.asarray(hitting, dtype=float)
    if np.any(~np.isfinite(hitting)) or np.any(hitting < -1e-9):
        raise SolverError(
            "mean first-passage solve produced invalid hitting times; "
            "the target may be unreachable from part of the chain"
        )
    return float(start[transient] @ np.clip(hitting, 0.0, None))
