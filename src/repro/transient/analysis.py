"""Model-level transient analysis: build the chain, pick a start, run the engine.

:func:`solve_transient` is the front door of the package.  It reuses the
truncated-generator builders of the steady-state reference solvers — the
homogeneous one in :mod:`repro.queueing.ctmc_reference` and the scenario one
in :mod:`repro.scenarios.ctmc` — so the transient engine analyses *exactly*
the chain the steady-state CTMC solver validates against, sizes the
truncation the same way, and wraps the uniformization sweep in a
:class:`~repro.transient.solution.TransientSolution`.

Initial conditions
------------------
The interesting transient questions start the chain away from equilibrium.
Three named starts cover the common cases (an explicit vector is accepted
too):

``"empty-operative"`` (default)
    An empty queue with every server operative, phases entered according to
    the operative mixture weights — the state a freshly provisioned cluster
    is in, and exactly how the simulators bootstrap.
``"empty-inoperative"``
    An empty queue with every server down (phases by the inoperative
    weights) — "the rack just failed"; availability ramps from 0.
``"empty-equilibrium"``
    An empty queue with the environment already in its own steady state —
    isolates the queue-filling transient from the environment's.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import ParameterError
from .solution import TransientSolution
from .uniformization import (
    DEFAULT_STATIONARY_TOLERANCE,
    DEFAULT_TAIL_TOLERANCE,
    transient_distributions,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..queueing.model import UnreliableQueueModel
    from ..scenarios import ScenarioModel

    TransientModel = UnreliableQueueModel | ScenarioModel

#: The named initial conditions accepted by :func:`initial_distribution`.
INITIAL_CONDITIONS = ("empty-operative", "empty-inoperative", "empty-equilibrium")

#: Default evaluation grid used when a caller (e.g. the ``transient`` solver
#: backend) asks for a transient solution without naming times.
DEFAULT_TIME_GRID = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


def _occupancy_probability(occupancy: Sequence[int], weights: np.ndarray) -> float:
    """Multinomial probability of one phase-occupancy vector.

    ``occupancy[j]`` servers land in phase ``j``, each independently with
    probability ``weights[j]``; the total is ``sum(occupancy)``.
    """
    total = int(sum(occupancy))
    probability = float(math.factorial(total))
    for count, weight in zip(occupancy, weights):
        probability *= float(weight) ** int(count) / math.factorial(int(count))
    return probability


def _mode_distribution(model: "TransientModel", kind: str) -> np.ndarray:
    """The distribution over environment modes for a named initial condition."""
    environment = model.environment
    if kind == "empty-equilibrium":
        return np.asarray(environment.steady_state, dtype=float)

    operative_start = kind == "empty-operative"
    distribution = np.zeros(environment.num_modes)
    if getattr(model, "is_scenario", False):
        weights_by_group = (
            environment.operative_weights_by_group
            if operative_start
            else environment.inoperative_weights_by_group
        )
        for index, mode in enumerate(environment.modes):
            probability = 1.0
            for group, (operative, inoperative) in enumerate(mode):
                occupancy, other = (
                    (operative, inoperative) if operative_start else (inoperative, operative)
                )
                if sum(other) != 0:
                    probability = 0.0
                    break
                probability *= _occupancy_probability(occupancy, weights_by_group[group])
            distribution[index] = probability
    else:
        weights = (
            environment.operative_weights if operative_start else environment.inoperative_weights
        )
        for index, (operative, inoperative) in enumerate(environment.modes):
            occupancy, other = (
                (operative, inoperative) if operative_start else (inoperative, operative)
            )
            if sum(other) != 0:
                continue
            distribution[index] = _occupancy_probability(occupancy, weights)
    total = distribution.sum()
    if not np.isclose(total, 1.0, atol=1e-9):  # pragma: no cover - defensive
        raise ParameterError(f"initial mode distribution sums to {total}, expected 1")
    return distribution / total


def initial_distribution(
    model: "TransientModel",
    num_levels: int,
    initial: str | Sequence[float] | np.ndarray,
) -> np.ndarray:
    """The flat initial state vector of the truncated chain.

    Parameters
    ----------
    model:
        The queueing or scenario model (provides the environment).
    num_levels:
        Number of queue-length levels of the truncated chain (``J + 1``).
    initial:
        One of :data:`INITIAL_CONDITIONS`, a vector over the environment
        modes (placed at queue length 0), or a full flat state vector.
    """
    num_modes = model.environment.num_modes
    if isinstance(initial, str):
        if initial not in INITIAL_CONDITIONS:
            raise ParameterError(
                f"unknown initial condition {initial!r}; expected one of "
                f"{', '.join(INITIAL_CONDITIONS)} or an explicit vector"
            )
        modes = _mode_distribution(model, initial)
        vector = np.zeros(num_levels * num_modes)
        vector[:num_modes] = modes
        return vector
    vector = np.asarray(initial, dtype=float)
    if vector.shape == (num_modes,):
        flat = np.zeros(num_levels * num_modes)
        flat[:num_modes] = vector
        return flat
    if vector.shape == (num_levels * num_modes,):
        return vector.copy()
    raise ParameterError(
        f"initial vector has shape {vector.shape}; expected ({num_modes},) for a "
        f"mode distribution or ({num_levels * num_modes},) for a full state vector"
    )


def _truncation_builders(
    model: "TransientModel",
) -> tuple[Callable[..., int], Callable[..., np.ndarray]]:
    """The (default level, generator builder) pair for the model's chain."""
    if getattr(model, "is_scenario", False):
        from ..scenarios.ctmc import build_truncated_generator, default_truncation_level
    else:
        from ..queueing.ctmc_reference import build_truncated_generator, default_truncation_level
    return default_truncation_level, build_truncated_generator


def normalise_times(times: float | Sequence[float] | np.ndarray) -> tuple[float, ...]:
    """Coerce, validate and ascending-sort an evaluation time grid."""
    grid = tuple(sorted({float(t) for t in np.atleast_1d(np.asarray(times, dtype=float))}))
    if not grid:
        raise ParameterError("the evaluation time grid is empty")
    if grid[0] < 0.0:
        raise ParameterError(f"evaluation times must be non-negative, got {grid[0]}")
    return grid


def solve_transient(
    model: "TransientModel",
    times: float | Sequence[float] | np.ndarray = DEFAULT_TIME_GRID,
    *,
    initial: str | Sequence[float] | np.ndarray = "empty-operative",
    max_queue_length: int | None = None,
    representation: str = "auto",
    tol: float = DEFAULT_TAIL_TOLERANCE,
    stationary_tol: float = DEFAULT_STATIONARY_TOLERANCE,
) -> TransientSolution:
    """Compute ``pi(t)`` on the truncated chain over a whole time grid.

    Parameters
    ----------
    model:
        A stable :class:`~repro.queueing.model.UnreliableQueueModel` or
        :class:`~repro.scenarios.ScenarioModel` with Markovian period
        distributions (the same restriction as the steady-state CTMC solver).
    times:
        Evaluation times; deduplicated and sorted ascending.  One
        uniformization pass serves the entire grid.
    initial:
        Initial condition (see the module docstring): a name from
        :data:`INITIAL_CONDITIONS` or an explicit vector.
    max_queue_length:
        Truncation level ``J``; defaults to the steady-state solver's
        decay-rate-based level, which bounds the mass a *stable* chain can
        push past the boundary from an empty start.
    representation:
        ``"auto"``/``"lumped"`` sweep the count-based chain; ``"product"``
        sweeps the per-server-labelled chain of a *scenario* model (named
        initial conditions only) and aggregates each ``pi(t)`` through the
        lumping map — a law-equivalence verification tool, not a fast path.
    tol:
        Poisson-tail tolerance of the uniformization engine.
    stationary_tol:
        Stationarity-detection threshold of the engine (0 disables).
    """
    from ..scenarios.ctmc import resolve_representation

    model.require_stable()
    representation = resolve_representation(representation)
    default_level, build_generator = _truncation_builders(model)
    level = default_level(model) if max_queue_length is None else int(max_queue_length)
    if level <= model.num_servers:
        raise ParameterError(
            "max_queue_length must exceed the number of servers "
            f"({level} <= {model.num_servers})"
        )
    grid = normalise_times(times)
    if representation == "product":
        return _solve_transient_product(
            model, grid, initial, level, tol=tol, stationary_tol=stationary_tol
        )
    generator = build_generator(model, level)
    start = initial_distribution(model, level + 1, initial)
    result = transient_distributions(
        generator, start, grid, tol=tol, stationary_tol=stationary_tol
    )
    num_modes = model.environment.num_modes
    probabilities = result.distributions.reshape(len(grid), level + 1, num_modes)
    return TransientSolution(
        model,
        grid,
        probabilities,
        rate=result.rate,
        steps=result.steps,
        stationary_step=result.stationary_step,
        representation="lumped",
        num_solved_states=(level + 1) * num_modes,
    )


def _solve_transient_product(
    model: "TransientModel",
    grid: tuple[float, ...],
    initial: str | Sequence[float] | np.ndarray,
    level: int,
    *,
    tol: float,
    stationary_tol: float,
) -> TransientSolution:
    """Sweep the product-space chain and aggregate ``pi(t)`` onto lumped modes."""
    from ..scenarios.ctmc import build_truncated_generator_product, product_environment
    from ..scenarios.model import ScenarioModel

    if not isinstance(model, ScenarioModel):
        raise ParameterError(
            "the product representation only applies to scenario models; "
            "homogeneous models have a single server group with no lumping to undo"
        )
    if not isinstance(initial, str):
        raise ParameterError(
            "the product representation supports only named initial conditions "
            f"({', '.join(INITIAL_CONDITIONS)}); explicit vectors are over lumped modes"
        )
    if initial not in INITIAL_CONDITIONS:
        raise ParameterError(
            f"unknown initial condition {initial!r}; expected one of "
            f"{', '.join(INITIAL_CONDITIONS)} or an explicit vector"
        )
    environment = product_environment(model)
    generator = build_truncated_generator_product(model, level, environment)
    num_states = environment.num_states
    start = np.zeros((level + 1) * num_states)
    start[:num_states] = environment.initial_distribution(initial)
    result = transient_distributions(
        generator, start, grid, tol=tol, stationary_tol=stationary_tol
    )
    per_state = result.distributions.reshape(len(grid), level + 1, num_states)
    probabilities = environment.lump_distribution(per_state)
    return TransientSolution(
        model,
        grid,
        probabilities,
        rate=result.rate,
        steps=result.steps,
        stationary_step=result.stationary_step,
        representation="product",
        num_solved_states=(level + 1) * num_states,
    )
