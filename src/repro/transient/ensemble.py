"""Ensemble-of-replications transient estimation by discrete-event simulation.

Steady-state simulation averages one long run over time; transient estimation
cannot (the process is not stationary), so it averages *across replications*
instead: ``R`` independent runs from the same initial condition, each sampled
at the same grid of absolute times, with Student-t confidence intervals
formed across the replications at every grid point.

The estimator exists to cross-validate the analytical uniformization engine —
the acceptance tests require the analytical mean-queue-length trajectory to
lie inside these intervals — and to extend transient analysis to models whose
period distributions are not phase-type (where uniformization does not
apply but the simulators do).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .._validation import check_positive_int
from ..exceptions import SimulationError
from ..simulation.estimators import ConfidenceInterval, batch_means_interval
from .analysis import normalise_times

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.queue_sim import UnreliableQueueSimulator
    from ..simulation.scenario_sim import ScenarioSimulator
    from .analysis import TransientModel


@dataclass(frozen=True)
class TransientEnsembleEstimate:
    """Across-replication transient estimates on a time grid.

    Attributes
    ----------
    times:
        The sampling times, strictly increasing.
    mean_queue_length:
        Per-time Student-t intervals for ``E[Q(t)]`` across replications.
    mean_operative_servers:
        Per-time intervals for the expected number of operative servers.
    num_replications:
        Number of independent replications behind every interval.
    num_servers:
        The model's server count ``N`` (denominator of :meth:`availability`).
    queue_length_samples:
        Raw samples, shape ``(num_replications, len(times))`` (for
        goodness-of-fit tests and custom functionals).
    """

    times: tuple[float, ...]
    mean_queue_length: tuple[ConfidenceInterval, ...]
    mean_operative_servers: tuple[ConfidenceInterval, ...]
    num_replications: int
    num_servers: int
    queue_length_samples: np.ndarray

    def availability(self) -> tuple[float, ...]:
        """Estimated point availability ``A(t)`` (operative fraction) per time."""
        return tuple(
            interval.estimate / float(self.num_servers)
            for interval in self.mean_operative_servers
        )


def _build_simulator(
    model: "TransientModel", seed: int
) -> "UnreliableQueueSimulator | ScenarioSimulator":
    """One fresh simulator for ``model`` (scenario-aware dispatch)."""
    if getattr(model, "is_scenario", False):
        from ..simulation.scenario_sim import ScenarioSimulator

        return ScenarioSimulator(model, seed=seed)
    from ..simulation.queue_sim import UnreliableQueueSimulator
    from ..distributions import Exponential

    return UnreliableQueueSimulator(
        num_servers=model.num_servers,
        arrival_rate=model.arrival_rate,
        service_distribution=Exponential(rate=model.service_rate),
        operative_distribution=model.operative,
        inoperative_distribution=model.inoperative,
        seed=seed,
    )


def simulate_transient(
    model: "TransientModel",
    times: float | Sequence[float] | np.ndarray,
    *,
    num_replications: int = 200,
    seed: int = 0,
    confidence: float = 0.95,
) -> TransientEnsembleEstimate:
    """Estimate transient trajectories by an ensemble of replications.

    Parameters
    ----------
    model:
        An :class:`~repro.queueing.model.UnreliableQueueModel` or
        :class:`~repro.scenarios.ScenarioModel`; period distributions may be
        arbitrary (no phase-type restriction).
    times:
        Sampling times (deduplicated, sorted ascending).  Every replication
        starts empty with all servers operative — the simulators' bootstrap
        state, matching the analytical engine's default initial condition.
    num_replications:
        Number of independent replications (at least 2, for intervals).
    seed:
        Master seed; per-replication seeds are drawn from it, so the whole
        ensemble is reproducible.
    confidence:
        Confidence level of the per-time intervals.
    """
    num_replications = check_positive_int(num_replications, "num_replications")
    if num_replications < 2:
        raise SimulationError("at least two replications are required for intervals")
    grid = normalise_times(times)
    if grid[-1] <= 0.0:
        raise SimulationError("the sampling grid needs at least one positive time")

    master = np.random.default_rng(seed)
    seeds = master.integers(0, np.iinfo(np.int64).max, size=num_replications)

    queue_samples = np.zeros((num_replications, len(grid)))
    operative_samples = np.zeros((num_replications, len(grid)))
    for replication in range(num_replications):
        simulator = _build_simulator(model, int(seeds[replication]))
        for index, t in enumerate(grid):
            if t > 0.0:
                simulator.run(t)
            queue_samples[replication, index] = simulator.num_jobs_in_system
            operative_samples[replication, index] = simulator.num_operative_servers

    queue_intervals = tuple(
        batch_means_interval(queue_samples[:, index], confidence=confidence)
        for index in range(len(grid))
    )
    operative_intervals = tuple(
        batch_means_interval(operative_samples[:, index], confidence=confidence)
        for index in range(len(grid))
    )
    return TransientEnsembleEstimate(
        times=grid,
        mean_queue_length=queue_intervals,
        mean_operative_servers=operative_intervals,
        num_replications=num_replications,
        num_servers=int(model.num_servers),
        queue_length_samples=queue_samples,
    )
