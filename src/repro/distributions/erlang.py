"""The Erlang distribution (sum of independent exponentials with a common rate).

Erlang distributions have squared coefficient of variation ``1 / k < 1`` and
therefore sit on the *opposite* side of the exponential from the
hyperexponential family.  The library includes them for two reasons: they are
the natural low-variability counterpart when studying the effect of
operative-period variability (paper Figure 6 sweeps ``C^2`` from 0 upwards),
and they approximate the deterministic (``C^2 = 0``) case as ``k`` grows.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING
from collections.abc import Sequence

import numpy as np
import scipy.stats

from .._validation import check_positive, check_positive_int
from .base import Distribution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .phase_type import PhaseType


class Erlang(Distribution):
    """Erlang distribution with ``shape`` stages of rate ``rate`` each.

    The mean is ``shape / rate`` and the squared coefficient of variation is
    ``1 / shape``.

    Parameters
    ----------
    shape:
        Number of exponential stages ``k >= 1``.
    rate:
        Rate of each stage (strictly positive).
    """

    def __init__(self, shape: int, rate: float) -> None:
        self._shape = check_positive_int(shape, "shape")
        self._rate = check_positive(rate, "rate")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_mean_and_shape(cls, mean: float, shape: int) -> "Erlang":
        """Construct an Erlang with the given mean and number of stages."""
        mean = check_positive(mean, "mean")
        shape = check_positive_int(shape, "shape")
        return cls(shape=shape, rate=shape / mean)

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> int:
        """The number of exponential stages."""
        return self._shape

    @property
    def stage_rate(self) -> float:
        """The rate of each individual stage."""
        return self._rate

    # ------------------------------------------------------------------ #
    # Distribution interface
    # ------------------------------------------------------------------ #

    def pdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=float)
        result = scipy.stats.gamma.pdf(x_arr, a=self._shape, scale=1.0 / self._rate)
        return result if np.ndim(x) else float(result)

    def cdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=float)
        result = scipy.stats.gamma.cdf(x_arr, a=self._shape, scale=1.0 / self._rate)
        return result if np.ndim(x) else float(result)

    def moment(self, k: int) -> float:
        if k < 1:
            raise ValueError(f"moment order must be >= 1, got {k}")
        # E[X^k] = (shape)(shape+1)...(shape+k-1) / rate^k
        value = 1.0
        for i in range(k):
            value *= self._shape + i
        return value / self._rate**k

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        draws = rng.gamma(shape=self._shape, scale=1.0 / self._rate, size=size)
        return draws if size is not None else float(draws)

    def laplace_transform(self, s: float | complex) -> complex:
        return complex((self._rate / (self._rate + s)) ** self._shape)

    def to_phase_type(self) -> "PhaseType":
        from .phase_type import PhaseType

        k = self._shape
        generator = np.zeros((k, k))
        for i in range(k):
            generator[i, i] = -self._rate
            if i + 1 < k:
                generator[i, i + 1] = self._rate
        initial = np.zeros(k)
        initial[0] = 1.0
        return PhaseType(initial=initial, generator=generator)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def parameter_key(self) -> tuple:
        """The defining parameters, for solution-cache keys."""
        return (self._shape, self._rate)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Erlang):
            return NotImplemented
        return self._shape == other._shape and self._rate == other._rate

    def __hash__(self) -> int:
        return hash(("Erlang", self._shape, self._rate))

    def __repr__(self) -> str:
        return f"Erlang(shape={self._shape}, rate={self._rate:.6g})"


def erlang_scv(shape: int) -> float:
    """Return the squared coefficient of variation ``1 / shape`` of an Erlang-``shape``."""
    shape = check_positive_int(shape, "shape")
    return 1.0 / shape


def stages_for_scv(scv: float) -> int:
    """Return the smallest Erlang stage count whose SCV does not exceed ``scv``.

    Useful when approximating a low-variability (``C^2 < 1``) operative-period
    distribution by an Erlang, e.g. for the ``C^2 -> 0`` end of Figure 6.
    """
    scv = float(scv)
    if scv <= 0.0:
        raise ValueError("scv must be positive; use a deterministic distribution for scv == 0")
    return max(1, math.ceil(1.0 / scv))
