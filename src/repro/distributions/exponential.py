"""The exponential distribution.

The exponential distribution is the baseline assumption that the paper sets
out to test: prior work on multi-server queues with breakdowns assumes both
operative and inoperative periods are exponential.  Section 2 of the paper
shows that the assumption fails badly for operative periods.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING
from collections.abc import Sequence

import numpy as np

from .._validation import check_positive
from .base import Distribution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .phase_type import PhaseType


class Exponential(Distribution):
    """Exponential distribution with rate ``rate`` (mean ``1 / rate``).

    Parameters
    ----------
    rate:
        The rate parameter ``xi > 0``; the density is
        ``f(x) = rate * exp(-rate * x)`` for ``x >= 0``.

    Examples
    --------
    >>> d = Exponential(rate=0.5)
    >>> d.mean
    2.0
    >>> round(d.scv, 12)
    1.0
    """

    def __init__(self, rate: float) -> None:
        self._rate = check_positive(rate, "rate")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Construct the exponential distribution with the given mean."""
        mean = check_positive(mean, "mean")
        return cls(rate=1.0 / mean)

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #

    @property
    def rate(self) -> float:
        """The rate parameter ``xi``."""
        return self._rate

    # ------------------------------------------------------------------ #
    # Distribution interface
    # ------------------------------------------------------------------ #

    def pdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=float)
        result = np.where(x_arr < 0.0, 0.0, self._rate * np.exp(-self._rate * x_arr))
        return result if result.ndim else float(result)

    def cdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=float)
        result = np.where(x_arr < 0.0, 0.0, 1.0 - np.exp(-self._rate * x_arr))
        return result if result.ndim else float(result)

    def moment(self, k: int) -> float:
        if k < 1:
            raise ValueError(f"moment order must be >= 1, got {k}")
        return math.factorial(k) / self._rate**k

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        draws = rng.exponential(scale=1.0 / self._rate, size=size)
        return draws if size is not None else float(draws)

    def laplace_transform(self, s: float | complex) -> complex:
        return complex(self._rate / (self._rate + s))

    def to_phase_type(self) -> "PhaseType":
        from .phase_type import PhaseType

        return PhaseType(initial=[1.0], generator=[[-self._rate]])

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def parameter_key(self) -> tuple:
        """The defining parameters, for solution-cache keys."""
        return (self._rate,)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Exponential):
            return NotImplemented
        return self._rate == other._rate

    def __hash__(self) -> int:
        return hash(("Exponential", self._rate))

    def __repr__(self) -> str:
        return f"Exponential(rate={self._rate:.6g})"
