"""General continuous phase-type distributions.

A phase-type (PH) distribution is the distribution of the time to absorption
of a finite continuous-time Markov chain with one absorbing state.  It is
parameterised by an initial probability vector ``initial`` over the transient
states and the sub-generator matrix ``generator`` restricted to the transient
states.  Hyperexponential, Erlang and Coxian distributions are all special
cases, and converting them to their PH representation gives the analytical
and simulation layers a single uniform mechanism.

The Palmer–Mitrani model only needs hyperexponential periods, but the general
PH machinery lets the library express the paper's "future work" direction
(arbitrary phase-type periods) and is used by the test-suite to cross-check
moments and transforms of the specialised classes.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np
import scipy.linalg

from .._validation import check_probability_vector
from ..exceptions import ParameterError
from .base import Distribution


class PhaseType(Distribution):
    """A continuous phase-type distribution ``PH(initial, generator)``.

    Parameters
    ----------
    initial:
        Row vector of initial probabilities over the transient phases.  Its
        entries must be non-negative and sum to one (the library does not
        support an atom at zero).
    generator:
        Square sub-generator matrix ``T`` over the transient phases.  Its
        off-diagonal entries must be non-negative, its diagonal entries
        negative, and every row sum must be <= 0; the exit-rate vector is
        ``t = -T 1``.
    """

    def __init__(self, initial: Sequence[float], generator: Sequence[Sequence[float]]) -> None:
        initial_arr = check_probability_vector(initial, "initial")
        generator_arr = np.asarray(generator, dtype=float)
        if generator_arr.ndim != 2 or generator_arr.shape[0] != generator_arr.shape[1]:
            raise ParameterError(
                f"generator must be a square matrix, got shape {generator_arr.shape}"
            )
        if generator_arr.shape[0] != initial_arr.size:
            raise ParameterError(
                "generator size must match the length of the initial vector, "
                f"got {generator_arr.shape[0]} and {initial_arr.size}"
            )
        self._validate_subgenerator(generator_arr)
        self._initial = initial_arr
        self._generator = generator_arr
        self._exit_rates = -generator_arr.sum(axis=1)

    @staticmethod
    def _validate_subgenerator(generator: np.ndarray) -> None:
        if not np.all(np.isfinite(generator)):
            raise ParameterError("generator entries must be finite")
        off_diagonal = generator - np.diag(np.diag(generator))
        if np.any(off_diagonal < 0.0):
            raise ParameterError("off-diagonal entries of the generator must be non-negative")
        if np.any(np.diag(generator) >= 0.0):
            raise ParameterError("diagonal entries of the generator must be strictly negative")
        row_sums = generator.sum(axis=1)
        if np.any(row_sums > 1e-12):
            raise ParameterError("generator row sums must be <= 0 (it is a sub-generator)")
        if np.all(np.abs(row_sums) <= 1e-12):
            raise ParameterError(
                "generator has zero exit rates everywhere; absorption would never occur"
            )

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #

    @property
    def initial(self) -> np.ndarray:
        """The initial probability vector over transient phases (copy)."""
        return self._initial.copy()

    @property
    def generator(self) -> np.ndarray:
        """The transient sub-generator matrix ``T`` (copy)."""
        return self._generator.copy()

    @property
    def exit_rates(self) -> np.ndarray:
        """The absorption-rate vector ``t = -T 1`` (copy)."""
        return self._exit_rates.copy()

    @property
    def num_phases(self) -> int:
        """The number of transient phases."""
        return int(self._initial.size)

    # ------------------------------------------------------------------ #
    # Distribution interface
    # ------------------------------------------------------------------ #

    def pdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        values = np.empty_like(x_arr)
        for i, xi in enumerate(x_arr):
            if xi < 0.0:
                values[i] = 0.0
            else:
                values[i] = float(
                    self._initial @ scipy.linalg.expm(self._generator * xi) @ self._exit_rates
                )
        return values if np.ndim(x) else float(values[0])

    def cdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        ones = np.ones(self.num_phases)
        values = np.empty_like(x_arr)
        for i, xi in enumerate(x_arr):
            if xi < 0.0:
                values[i] = 0.0
            else:
                values[i] = 1.0 - float(
                    self._initial @ scipy.linalg.expm(self._generator * xi) @ ones
                )
        return values if np.ndim(x) else float(values[0])

    def moment(self, k: int) -> float:
        if k < 1:
            raise ValueError(f"moment order must be >= 1, got {k}")
        # E[X^k] = k! * initial * (-T)^{-k} * 1
        inverse = np.linalg.inv(-self._generator)
        power = np.linalg.matrix_power(inverse, k)
        return float(math.factorial(k) * self._initial @ power @ np.ones(self.num_phases))

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        n = 1 if size is None else int(size)
        draws = np.empty(n)
        total_rates = -np.diag(self._generator)
        # Jump probabilities out of each phase: to other transient phases or absorption.
        jump_probs = np.zeros((self.num_phases, self.num_phases + 1))
        for i in range(self.num_phases):
            jump_probs[i, : self.num_phases] = self._generator[i] / total_rates[i]
            jump_probs[i, i] = 0.0
            jump_probs[i, self.num_phases] = self._exit_rates[i] / total_rates[i]
        for sample_index in range(n):
            time = 0.0
            phase = int(rng.choice(self.num_phases, p=self._initial))
            while True:
                time += rng.exponential(scale=1.0 / total_rates[phase])
                next_state = int(rng.choice(self.num_phases + 1, p=jump_probs[phase]))
                if next_state == self.num_phases:
                    break
                phase = next_state
            draws[sample_index] = time
        return draws if size is not None else float(draws[0])

    def laplace_transform(self, s: float | complex) -> complex:
        identity = np.eye(self.num_phases)
        resolvent = np.linalg.inv(s * identity - self._generator)
        return complex(self._initial @ resolvent @ self._exit_rates)

    def parameter_key(self) -> tuple:
        """The defining parameters, for solution-cache keys."""
        return (tuple(self._initial), tuple(map(tuple, self._generator)))

    def to_phase_type(self) -> "PhaseType":
        return self

    def __repr__(self) -> str:
        return f"PhaseType(num_phases={self.num_phases}, mean={self.mean:.6g})"
