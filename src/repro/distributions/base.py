"""Abstract base class for the positive continuous distributions used by the library.

The queueing model of Palmer & Mitrani describes operative and inoperative
server periods, job inter-arrival times and service times.  All of these are
non-negative continuous random variables.  The :class:`Distribution` base
class defines the small, uniform interface the rest of the library relies on:

* densities and cumulative distributions (``pdf``, ``cdf``, ``sf``),
* raw moments, mean, variance and squared coefficient of variation,
* random sampling through a NumPy :class:`~numpy.random.Generator`,
* the Laplace–Stieltjes transform, used in analytical sanity checks.

Analytical solvers additionally require a *phase-type* view of the
distribution (see :mod:`repro.distributions.phase_type`); distributions that
admit one implement :meth:`Distribution.to_phase_type`.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .phase_type import PhaseType


class Distribution(abc.ABC):
    """A non-negative continuous probability distribution.

    Subclasses must implement the primitive methods :meth:`pdf`, :meth:`cdf`,
    :meth:`moment` and :meth:`sample`; the derived quantities (mean, variance,
    squared coefficient of variation, survival function) are provided here.
    """

    # ------------------------------------------------------------------ #
    # Primitive interface
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def pdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        """Probability density function evaluated at ``x`` (vectorised)."""

    @abc.abstractmethod
    def cdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        """Cumulative distribution function evaluated at ``x`` (vectorised)."""

    @abc.abstractmethod
    def moment(self, k: int) -> float:
        """Return the ``k``-th raw moment ``E[X^k]`` (``k >= 1``)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        """Draw samples using the supplied random generator.

        Parameters
        ----------
        rng:
            A NumPy random generator; the caller owns seeding so experiments
            are reproducible.
        size:
            Number of variates to draw.  ``None`` returns a scalar.
        """

    @abc.abstractmethod
    def laplace_transform(self, s: float | complex) -> complex:
        """Laplace–Stieltjes transform ``E[exp(-s X)]`` evaluated at ``s``."""

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def mean(self) -> float:
        """The first raw moment ``E[X]``."""
        return self.moment(1)

    @property
    def variance(self) -> float:
        """The variance ``E[X^2] - E[X]^2``."""
        first = self.moment(1)
        return self.moment(2) - first * first

    @property
    def std(self) -> float:
        """The standard deviation."""
        return float(np.sqrt(max(self.variance, 0.0)))

    @property
    def scv(self) -> float:
        """The squared coefficient of variation ``Var[X] / E[X]^2``.

        This is the quantity the paper calls ``C^2`` (Eq. 2); it equals 1 for
        the exponential distribution and exceeds 1 for every non-degenerate
        hyperexponential distribution.
        """
        first = self.moment(1)
        if first == 0.0:
            raise ParameterError("squared coefficient of variation undefined for zero mean")
        return self.moment(2) / (first * first) - 1.0

    @property
    def rate(self) -> float:
        """The reciprocal of the mean, ``1 / E[X]``.

        For the operative/inoperative periods of the paper this is the
        aggregate breakdown rate ``xi`` or repair rate ``eta`` of Eq. 10.
        """
        mean = self.mean
        if mean <= 0.0:
            raise ParameterError("rate undefined for non-positive mean")
        return 1.0 / mean

    def sf(self, x: float | Sequence[float]) -> np.ndarray | float:
        """Survival function ``P(X > x) = 1 - cdf(x)``."""
        return 1.0 - np.asarray(self.cdf(x))

    def moments(self, count: int) -> np.ndarray:
        """Return the first ``count`` raw moments as an array ``[M1, ..., Mcount]``."""
        if count < 1:
            raise ParameterError(f"count must be >= 1, got {count}")
        return np.array([self.moment(k) for k in range(1, count + 1)], dtype=float)

    # ------------------------------------------------------------------ #
    # Optional phase-type view
    # ------------------------------------------------------------------ #

    def to_phase_type(self) -> "PhaseType":
        """Return an equivalent phase-type representation.

        Subclasses that admit an exact finite phase-type representation
        (exponential, hyperexponential, Erlang, Coxian) override this; the
        base implementation raises :class:`NotImplementedError` because not
        every distribution (e.g. the deterministic one) is phase-type.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not have an exact phase-type representation"
        )

    # ------------------------------------------------------------------ #
    # Cache identity
    # ------------------------------------------------------------------ #

    def parameter_key(self) -> tuple:
        """A hashable tuple of the distribution's defining parameters.

        Together with the type name this identifies the parameterisation
        exactly; :func:`repro.solvers.distribution_key` uses it to build
        solution-cache keys, so two distributions must share a key if and
        only if they are the same distribution.  Every library distribution
        implements it; third-party subclasses should too (the fallback key is
        repr- and moment-based, which is weaker).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define parameter_key()"
        )

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(mean={self.mean:.6g}, scv={self.scv:.6g})"
