"""The hyperexponential distribution (probabilistic mixture of exponentials).

The central empirical finding of the paper is that server operative periods
are well modelled by a 2-phase hyperexponential distribution (paper Eq. 5):

.. math::

    f(x) = \\sum_{j=1}^{n} \\alpha_j \\xi_j e^{-\\xi_j x},
    \\qquad \\alpha_j, \\xi_j > 0, \\quad \\sum_j \\alpha_j = 1 .

An ``n``-phase hyperexponential is determined by its first ``2n - 1`` moments
(paper Eq. 6); the fitting procedures in :mod:`repro.fitting` exploit this.
The module also provides the fitted parameter sets reported in Section 2 of
the paper as ready-made constants.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING
from collections.abc import Sequence

import numpy as np

from .._validation import (
    check_positive,
    check_positive_vector,
    check_probability,
    check_probability_vector,
    check_same_length,
)
from ..exceptions import ParameterError
from .base import Distribution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .phase_type import PhaseType


class HyperExponential(Distribution):
    """An ``n``-phase hyperexponential distribution.

    With probability ``weights[j]`` the variate is exponential with rate
    ``rates[j]``.  The squared coefficient of variation of any non-degenerate
    hyperexponential distribution is strictly greater than one, which is what
    makes the family a natural fit for the heavy-tailed operative periods
    observed in the Sun data set.

    Parameters
    ----------
    weights:
        Mixing probabilities ``alpha_j`` (non-negative, summing to one).
    rates:
        Phase rates ``xi_j`` (strictly positive), same length as ``weights``.

    Examples
    --------
    The operative-period fit reported in the paper:

    >>> fit = HyperExponential(weights=[0.7246, 0.2754], rates=[0.1663, 0.0091])
    >>> round(fit.mean, 2)
    34.62
    >>> fit.scv > 1
    True
    """

    def __init__(self, weights: Sequence[float], rates: Sequence[float]) -> None:
        weights_arr = check_probability_vector(weights, "weights")
        rates_arr = check_positive_vector(rates, "rates")
        check_same_length(weights_arr, rates_arr, "weights and rates")
        self._weights = weights_arr
        self._rates = rates_arr

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def two_phase(cls, alpha1: float, rate1: float, rate2: float) -> "HyperExponential":
        """Construct a 2-phase hyperexponential from ``(alpha1, xi1, xi2)``.

        The second weight is ``1 - alpha1`` (the normalising condition of
        paper Eq. 5).
        """
        alpha1 = check_probability(alpha1, "alpha1")
        rate1 = check_positive(rate1, "rate1")
        rate2 = check_positive(rate2, "rate2")
        return cls(weights=[alpha1, 1.0 - alpha1], rates=[rate1, rate2])

    @classmethod
    def from_mean_and_scv(
        cls, mean: float, scv: float, *, balanced_means: bool = True
    ) -> "HyperExponential":
        """Construct a 2-phase hyperexponential with a given mean and SCV.

        Uses the classical *balanced means* parameterisation in which each
        phase contributes half of the mean (``alpha_1 / xi_1 = alpha_2 / xi_2``).
        This is the standard way of realising a target coefficient of
        variation with two phases, and it is how the Figure-6 experiment of
        the paper varies ``C^2`` while keeping the mean operative period
        fixed.

        Parameters
        ----------
        mean:
            Target mean (must be positive).
        scv:
            Target squared coefficient of variation; must be >= 1.  A value
            of exactly 1 returns a degenerate mixture equivalent to an
            exponential distribution.
        balanced_means:
            Only the balanced-means parameterisation is currently provided;
            the flag is kept for interface clarity and must be left ``True``.
        """
        mean = check_positive(mean, "mean")
        scv = float(scv)
        if scv < 1.0:
            raise ParameterError(
                f"a hyperexponential distribution requires scv >= 1, got {scv}"
            )
        if not balanced_means:
            raise ParameterError("only the balanced-means parameterisation is supported")
        if scv == 1.0:
            return cls(weights=[0.5, 0.5], rates=[1.0 / mean, 1.0 / mean])
        # Balanced means: alpha1/xi1 = alpha2/xi2 = mean / 2.
        alpha1 = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
        alpha2 = 1.0 - alpha1
        rate1 = 2.0 * alpha1 / mean
        rate2 = 2.0 * alpha2 / mean
        return cls(weights=[alpha1, alpha2], rates=[rate1, rate2])

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #

    @property
    def weights(self) -> np.ndarray:
        """The mixing probabilities ``alpha_j`` (copy)."""
        return self._weights.copy()

    @property
    def rates(self) -> np.ndarray:
        """The phase rates ``xi_j`` (copy)."""
        return self._rates.copy()

    @property
    def num_phases(self) -> int:
        """The number of exponential phases ``n``."""
        return int(self._weights.size)

    @property
    def phase_means(self) -> np.ndarray:
        """The conditional means of each phase, ``1 / xi_j``."""
        return 1.0 / self._rates

    @property
    def aggregate_rate(self) -> float:
        """The reciprocal of the mean period (paper Eq. 10).

        For operative periods this is the quantity the paper denotes ``xi``:
        ``1 / xi = sum_j alpha_j / xi_j``.
        """
        return 1.0 / self.mean

    # ------------------------------------------------------------------ #
    # Distribution interface
    # ------------------------------------------------------------------ #

    def pdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=float)
        expanded = x_arr[..., np.newaxis]
        terms = self._weights * self._rates * np.exp(-self._rates * expanded)
        result = np.where(x_arr < 0.0, 0.0, terms.sum(axis=-1))
        return result if result.ndim else float(result)

    def cdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=float)
        expanded = x_arr[..., np.newaxis]
        terms = self._weights * (1.0 - np.exp(-self._rates * expanded))
        result = np.where(x_arr < 0.0, 0.0, terms.sum(axis=-1))
        return result if result.ndim else float(result)

    def moment(self, k: int) -> float:
        if k < 1:
            raise ValueError(f"moment order must be >= 1, got {k}")
        # Paper Eq. 6: M_k = sum_j k! * alpha_j / xi_j^k.
        return float(math.factorial(k) * np.sum(self._weights / self._rates**k))

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        n = 1 if size is None else int(size)
        phases = rng.choice(self.num_phases, size=n, p=self._weights)
        draws = rng.exponential(scale=1.0 / self._rates[phases])
        return draws if size is not None else float(draws[0])

    def laplace_transform(self, s: float | complex) -> complex:
        return complex(np.sum(self._weights * self._rates / (self._rates + s)))

    def to_phase_type(self) -> "PhaseType":
        from .phase_type import PhaseType

        generator = np.diag(-self._rates)
        return PhaseType(initial=self._weights, generator=generator)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def phase_sampling_probabilities(self) -> np.ndarray:
        """Return the probabilities with which a fresh period starts in each phase.

        These are simply the mixing weights ``alpha_j``; the method exists so
        that the Markovian-environment builder can treat the distribution
        opaquely.
        """
        return self.weights

    def parameter_key(self) -> tuple:
        """The defining parameters, for solution-cache keys."""
        return (tuple(self._weights), tuple(self._rates))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperExponential):
            return NotImplemented
        return bool(
            np.array_equal(self._weights, other._weights)
            and np.array_equal(self._rates, other._rates)
        )

    def __hash__(self) -> int:
        return hash(("HyperExponential", tuple(self._weights), tuple(self._rates)))

    def __repr__(self) -> str:
        weights = ", ".join(f"{w:.6g}" for w in self._weights)
        rates = ", ".join(f"{r:.6g}" for r in self._rates)
        return f"HyperExponential(weights=[{weights}], rates=[{rates}])"


#: The 2-phase hyperexponential fit to the Sun operative periods reported in
#: Section 2 of the paper: alpha = (0.7246, 0.2754), xi = (0.1663, 0.0091).
#: About 72% of operative periods have mean 6 and 28% have mean 110.
SUN_OPERATIVE_FIT = HyperExponential(weights=[0.7246, 0.2754], rates=[0.1663, 0.0091])

#: The 2-phase hyperexponential fit to the Sun inoperative periods reported in
#: Section 2 of the paper: beta = (0.9303, 0.0697), eta = (25.0043, 1.6346).
#: About 93% of outages have mean 0.04 and 7% have mean 0.61.
SUN_INOPERATIVE_FIT = HyperExponential(weights=[0.9303, 0.0697], rates=[25.0043, 1.6346])

#: The single-exponential simplification of the inoperative periods that the
#: paper notes also passes the Kolmogorov-Smirnov test at the 5% level:
#: exponential with mean 0.04 (rate 25).
SUN_INOPERATIVE_EXPONENTIAL_RATE = 25.0
