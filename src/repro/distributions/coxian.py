"""Coxian distributions (sequential phases with early absorption).

A Coxian distribution passes through up to ``k`` exponential stages in
sequence; after stage ``i`` the process continues to stage ``i + 1`` with
probability ``continue_probs[i]`` and is absorbed otherwise.  Coxian
distributions are dense in the class of all positive distributions and can
represent any squared coefficient of variation, so they complement the
hyperexponential (``C^2 > 1``) and Erlang (``C^2 < 1``) families.  They are
provided as an extension point: the paper's model uses hyperexponential
periods, but the general Markov-modulated machinery in :mod:`repro.markov`
also accepts phase-type periods built from Coxians.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._validation import check_positive_vector
from ..exceptions import ParameterError
from .base import Distribution
from .phase_type import PhaseType


class Coxian(Distribution):
    """A Coxian distribution with ``k`` stages.

    Parameters
    ----------
    rates:
        The stage rates ``mu_1, ..., mu_k`` (strictly positive).
    continue_probs:
        The probabilities ``p_1, ..., p_{k-1}`` of continuing from stage ``i``
        to stage ``i + 1`` (each in ``[0, 1]``).  Continuation after the last
        stage is impossible.
    """

    def __init__(self, rates: Sequence[float], continue_probs: Sequence[float]) -> None:
        rates_arr = check_positive_vector(rates, "rates")
        probs_arr = np.asarray(continue_probs, dtype=float)
        if probs_arr.ndim != 1:
            raise ParameterError("continue_probs must be one-dimensional")
        if probs_arr.size != rates_arr.size - 1:
            raise ParameterError(
                "continue_probs must have exactly len(rates) - 1 entries, "
                f"got {probs_arr.size} for {rates_arr.size} rates"
            )
        if np.any(probs_arr < 0.0) or np.any(probs_arr > 1.0):
            raise ParameterError("continue_probs entries must lie in [0, 1]")
        self._rates = rates_arr
        self._continue_probs = probs_arr
        self._phase_type = self._build_phase_type()

    def _build_phase_type(self) -> PhaseType:
        k = self._rates.size
        generator = np.zeros((k, k))
        for i in range(k):
            generator[i, i] = -self._rates[i]
            if i + 1 < k:
                generator[i, i + 1] = self._rates[i] * self._continue_probs[i]
        initial = np.zeros(k)
        initial[0] = 1.0
        return PhaseType(initial=initial, generator=generator)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def two_phase_from_moments(cls, mean: float, scv: float) -> "Coxian":
        """Fit a 2-phase Coxian to a mean and squared coefficient of variation.

        Uses the classical Marie / Altiok construction, valid for
        ``scv >= 0.5``.  For ``scv >= 1`` the result is an acyclic equivalent
        of a 2-phase hyperexponential.
        """
        mean = float(mean)
        scv = float(scv)
        if mean <= 0.0:
            raise ParameterError(f"mean must be positive, got {mean}")
        if scv < 0.5:
            raise ParameterError(
                f"a 2-phase Coxian requires scv >= 0.5, got {scv}; use an Erlang instead"
            )
        rate1 = 2.0 / mean
        continue_prob = 0.5 / scv
        rate2 = rate1 * continue_prob
        return cls(rates=[rate1, rate2], continue_probs=[continue_prob])

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #

    @property
    def rates(self) -> np.ndarray:
        """The stage rates (copy)."""
        return self._rates.copy()

    @property
    def continue_probs(self) -> np.ndarray:
        """The continuation probabilities between consecutive stages (copy)."""
        return self._continue_probs.copy()

    @property
    def num_phases(self) -> int:
        """The number of stages ``k``."""
        return int(self._rates.size)

    # ------------------------------------------------------------------ #
    # Distribution interface (delegated to the phase-type representation)
    # ------------------------------------------------------------------ #

    def pdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        return self._phase_type.pdf(x)

    def cdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        return self._phase_type.cdf(x)

    def moment(self, k: int) -> float:
        return self._phase_type.moment(k)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        n = 1 if size is None else int(size)
        draws = np.zeros(n)
        for index in range(n):
            total = 0.0
            for stage in range(self.num_phases):
                total += rng.exponential(scale=1.0 / self._rates[stage])
                if stage < self.num_phases - 1:
                    if rng.random() >= self._continue_probs[stage]:
                        break
                else:
                    break
            draws[index] = total
        return draws if size is not None else float(draws[0])

    def laplace_transform(self, s: float | complex) -> complex:
        return self._phase_type.laplace_transform(s)

    def parameter_key(self) -> tuple:
        """The defining parameters, for solution-cache keys."""
        return (tuple(self._rates), tuple(self._continue_probs))

    def to_phase_type(self) -> PhaseType:
        return self._phase_type

    def __repr__(self) -> str:
        return (
            f"Coxian(rates={np.array2string(self._rates, precision=6)}, "
            f"continue_probs={np.array2string(self._continue_probs, precision=6)})"
        )
