"""Probability distributions for periods, services and inter-arrival times.

The Palmer–Mitrani model needs exponential service times and hyperexponential
operative/inoperative periods; the simulator and the extension hooks accept
any distribution implementing the :class:`Distribution` interface.

Public API
----------

* :class:`Distribution` — abstract base class (moments, pdf/cdf, sampling,
  Laplace transform, optional phase-type view).
* :class:`Exponential` — the single-rate exponential distribution.
* :class:`HyperExponential` — mixture of exponentials (paper Eq. 5), including
  the fitted Sun-trace parameter sets
  :data:`SUN_OPERATIVE_FIT` and :data:`SUN_INOPERATIVE_FIT`.
* :class:`Erlang`, :class:`Coxian`, :class:`Deterministic`,
  :class:`PhaseType` — supporting families used for variability sweeps,
  extensions and cross-validation.
"""

from .base import Distribution
from .coxian import Coxian
from .deterministic import Deterministic
from .erlang import Erlang, erlang_scv, stages_for_scv
from .exponential import Exponential
from .hyperexponential import (
    SUN_INOPERATIVE_EXPONENTIAL_RATE,
    SUN_INOPERATIVE_FIT,
    SUN_OPERATIVE_FIT,
    HyperExponential,
)
from .phase_type import PhaseType

__all__ = [
    "Distribution",
    "Exponential",
    "HyperExponential",
    "Erlang",
    "Coxian",
    "Deterministic",
    "PhaseType",
    "erlang_scv",
    "stages_for_scv",
    "SUN_OPERATIVE_FIT",
    "SUN_INOPERATIVE_FIT",
    "SUN_INOPERATIVE_EXPONENTIAL_RATE",
]
