"""The deterministic (degenerate) distribution.

The deterministic distribution concentrates all mass at a single value, so
its squared coefficient of variation is exactly zero.  The paper uses it for
the first point of Figure 6 (``C^2 = 0``), which cannot be represented by a
Markovian environment and is therefore evaluated by simulation.  The
simulator in :mod:`repro.simulation` accepts any :class:`Distribution`, so
this class slots in directly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._validation import check_positive
from .base import Distribution


class Deterministic(Distribution):
    """A distribution that always takes the value ``value``.

    Parameters
    ----------
    value:
        The constant (strictly positive) value of the random variable.
    """

    def __init__(self, value: float) -> None:
        self._value = check_positive(value, "value")

    @property
    def value(self) -> float:
        """The constant value taken by the random variable."""
        return self._value

    # ------------------------------------------------------------------ #
    # Distribution interface
    # ------------------------------------------------------------------ #

    def pdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        """Return the density, which is zero everywhere except the atom.

        The density of a degenerate distribution is a Dirac delta; for
        numerical purposes the method returns 0 everywhere (the delta cannot
        be represented pointwise).  Use :meth:`cdf` for meaningful values.
        """
        x_arr = np.asarray(x, dtype=float)
        result = np.zeros_like(x_arr)
        return result if result.ndim else float(result)

    def cdf(self, x: float | Sequence[float]) -> np.ndarray | float:
        x_arr = np.asarray(x, dtype=float)
        result = np.where(x_arr >= self._value, 1.0, 0.0)
        return result if result.ndim else float(result)

    def moment(self, k: int) -> float:
        if k < 1:
            raise ValueError(f"moment order must be >= 1, got {k}")
        return self._value**k

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        if size is None:
            return self._value
        return np.full(int(size), self._value)

    def laplace_transform(self, s: float | complex) -> complex:
        return complex(np.exp(-s * self._value))

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def parameter_key(self) -> tuple:
        """The defining parameters, for solution-cache keys."""
        return (self._value,)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Deterministic):
            return NotImplemented
        return self._value == other._value

    def __hash__(self) -> int:
        return hash(("Deterministic", self._value))

    def __repr__(self) -> str:
        return f"Deterministic(value={self._value:.6g})"
