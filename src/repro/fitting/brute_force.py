"""Brute-force rate search for ``n``-phase hyperexponential fits.

Solving the full moment-matching system (paper Eq. 7) is numerically hard for
``n >= 3`` because the equations are highly non-linear; the paper reports
that Newton and Gauss–Seidel iterations failed to converge.  The authors
instead eliminated the weights from the leading moment equations and ran a
brute-force search over the rates that minimises

.. math::

    \\min_{\\xi_1, ..., \\xi_n} \\sum_{k=n+1}^{2n-1} | M_k - \\tilde M_k |

(Eq. 8 uses ``k = 3..5`` for ``n = 3``).  This module reproduces that
procedure: a coarse logarithmic grid search over candidate rates followed by
local refinement, with the weights determined by the linear elimination of
:func:`repro.fitting.moment_matching.solve_weights_for_rates`.

One practical refinement over the literal Eq. 8: by default the objective
normalises each term by the target moment (``|M_k - M~_k| / M~_k``), because
the raw fifth moment of a heavy-tailed sample is several orders of magnitude
larger than the third and would otherwise dominate the search completely.
Pass ``relative_errors=False`` for the paper's absolute objective.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..distributions import HyperExponential
from ..exceptions import FittingError
from .moment_matching import (
    hyperexponential_moments,
    solve_weights_for_rates,
    weights_are_feasible,
)


@dataclass(frozen=True)
class BruteForceFitResult:
    """Result of a brute-force hyperexponential fit.

    Attributes
    ----------
    distribution:
        The best-fitting hyperexponential distribution found.
    objective:
        The achieved value of the search objective over the higher-order
        moments (relative errors by default, the paper's absolute Eq.-8 sum
        when ``relative_errors=False``).
    evaluations:
        The number of candidate rate combinations examined.
    rates_nearly_equal:
        True when two of the fitted rates differ by less than 25%, which is
        the paper's signal that a smaller number of phases suffices (their
        3-phase search collapsed onto a 2-phase fit).
    """

    distribution: HyperExponential
    objective: float
    evaluations: int
    rates_nearly_equal: bool


def _objective(
    rates: np.ndarray,
    weights: np.ndarray,
    target_moments: np.ndarray,
    num_phases: int,
    relative_errors: bool,
) -> float:
    """The Eq.-8 error over the higher-order moments (optionally normalised)."""
    order = target_moments.size
    fitted = hyperexponential_moments(weights, rates, order)
    # The weights absorb the normalisation plus the first n-1 moment
    # equations, so the search objective covers orders n .. 2n-1 (paper
    # Eq. 8 uses k = 3..5 for n = 3); order k lives at index k-1.
    higher = slice(num_phases - 1, order)
    errors = np.abs(fitted[higher] - target_moments[higher])
    if relative_errors:
        errors = errors / target_moments[higher]
    return float(np.sum(errors))


def _evaluate_candidate(
    rates: np.ndarray,
    target_moments: np.ndarray,
    num_phases: int,
    relative_errors: bool,
) -> tuple[float, np.ndarray] | None:
    """Return (objective, weights) for a candidate rate vector, or None if infeasible."""
    if np.any(rates <= 0.0):
        return None
    if np.unique(np.round(rates, 12)).size != rates.size:
        return None
    try:
        weights = solve_weights_for_rates(rates, target_moments)
    except FittingError:
        return None
    if not weights_are_feasible(weights):
        return None
    weights = np.clip(weights, 0.0, 1.0)
    total = weights.sum()
    if total <= 0.0:
        return None
    weights = weights / total
    return _objective(rates, weights, target_moments, num_phases, relative_errors), weights


def fit_hyperexponential_brute_force(
    target_moments: Sequence[float],
    num_phases: int = 3,
    *,
    grid_points: int = 24,
    refinement_rounds: int = 3,
    rate_bounds: tuple[float, float] | None = None,
    relative_errors: bool = True,
) -> BruteForceFitResult:
    """Fit an ``n``-phase hyperexponential by brute-force search over rates.

    Parameters
    ----------
    target_moments:
        Estimated raw moments ``M~_1 .. M~_{2n-1}`` (at least ``2n - 1``
        values are required).
    num_phases:
        Number of hyperexponential phases ``n`` (the paper uses 3).
    grid_points:
        Number of logarithmically spaced candidate rates per phase in the
        initial sweep.
    refinement_rounds:
        Number of local refinement passes around the incumbent solution.
    rate_bounds:
        Optional ``(low, high)`` bounds on the candidate rates.  When omitted
        they are derived from the first moment: rates between
        ``0.01 / M~_1`` and ``100 / M~_1`` cover phase means from one
        hundredth of the overall mean to one hundred times it.
    relative_errors:
        Normalise each moment error by the target moment (default).  Set to
        False for the paper's literal absolute-error objective of Eq. 8.

    Raises
    ------
    FittingError
        If no feasible rate combination is found.
    """
    num_phases = check_positive_int(num_phases, "num_phases")
    moments_arr = np.asarray(target_moments, dtype=float)
    required = 2 * num_phases - 1
    if moments_arr.size < required:
        raise FittingError(
            f"an {num_phases}-phase fit needs {required} target moments, got {moments_arr.size}"
        )
    moments_arr = moments_arr[:required]
    if np.any(moments_arr <= 0.0):
        raise FittingError("target moments must be strictly positive")
    mean = float(moments_arr[0])
    if rate_bounds is None:
        low, high = 0.01 / mean, 100.0 / mean
    else:
        low, high = float(rate_bounds[0]), float(rate_bounds[1])
        if low <= 0.0 or high <= low:
            raise FittingError(f"invalid rate bounds ({low}, {high})")

    grid = np.geomspace(low, high, int(grid_points))
    best_objective = np.inf
    best_rates: np.ndarray | None = None
    best_weights: np.ndarray | None = None
    evaluations = 0

    # Initial coarse sweep over sorted rate combinations (ordering removes the
    # permutation symmetry of the phases).
    for combo in itertools.combinations(grid, num_phases):
        rates = np.asarray(combo, dtype=float)
        evaluations += 1
        candidate = _evaluate_candidate(rates, moments_arr, num_phases, relative_errors)
        if candidate is None:
            continue
        objective, weights = candidate
        if objective < best_objective:
            best_objective, best_rates, best_weights = objective, rates, weights

    if best_rates is None:
        raise FittingError(
            "brute-force search found no feasible rate combination; "
            "check that the target moments have C^2 > 1"
        )

    # Local refinement: shrink a multiplicative neighbourhood around the incumbent.
    span = 2.0
    for _ in range(int(refinement_rounds)):
        local_axes = [
            np.geomspace(rate / span, rate * span, max(5, grid_points // 3))
            for rate in best_rates
        ]
        for combo in itertools.product(*local_axes):
            rates = np.sort(np.asarray(combo, dtype=float))
            evaluations += 1
            candidate = _evaluate_candidate(rates, moments_arr, num_phases, relative_errors)
            if candidate is None:
                continue
            objective, weights = candidate
            if objective < best_objective:
                best_objective, best_rates, best_weights = objective, rates, weights
        span = max(span**0.5, 1.05)

    assert best_weights is not None
    sorted_rates = np.sort(best_rates)[::-1]
    ratio = sorted_rates[:-1] / sorted_rates[1:]
    nearly_equal = bool(np.any(ratio < 1.25))
    distribution = HyperExponential(weights=best_weights, rates=best_rates)
    return BruteForceFitResult(
        distribution=distribution,
        objective=best_objective,
        evaluations=evaluations,
        rates_nearly_equal=nearly_equal,
    )
