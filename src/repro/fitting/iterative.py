"""Iterative (Newton and Gauss–Seidel) solvers for the moment equations.

Paper Eq. 7 defines the moment-matching system ``M_k(alpha, xi) = M~_k`` for
``k = 1..2n-1``.  The paper reports that classical iterative methods (Newton,
Gauss–Seidel, citing Ortega & Rheinboldt) *failed to converge* for the
3-phase fit but succeeded when re-run with ``n = 2``.  This module implements
both methods faithfully so that behaviour can be reproduced and studied:

* :func:`fit_newton` — damped Newton iteration on the full non-linear system
  in the variables ``(alpha_1..alpha_{n-1}, xi_1..xi_n)``;
* :func:`fit_gauss_seidel` — a nonlinear Gauss–Seidel sweep that alternates
  between solving for the weights (linear, given rates) and updating one rate
  at a time by a one-dimensional Newton step.

Both raise :class:`repro.exceptions.FittingError` on non-convergence, which
is the expected outcome for badly conditioned higher-phase fits.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..distributions import HyperExponential
from ..exceptions import FittingError
from .moment_matching import (
    hyperexponential_moments,
    weights_are_feasible,
)


@dataclass(frozen=True)
class IterativeFitResult:
    """Result of an iterative moment-matching fit.

    Attributes
    ----------
    distribution:
        The fitted hyperexponential distribution.
    iterations:
        Number of iterations performed.
    residual_norm:
        Final infinity-norm of the relative moment residuals.
    converged:
        Whether the iteration met the tolerance (always True for returned
        results; kept for symmetry with logged diagnostics).
    """

    distribution: HyperExponential
    iterations: int
    residual_norm: float
    converged: bool


def _pack(weights: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Pack free parameters (first n-1 weights and all n rates) into one vector."""
    return np.concatenate([weights[:-1], rates])


def _unpack(vector: np.ndarray, num_phases: int) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`_pack`."""
    free_weights = vector[: num_phases - 1]
    last_weight = 1.0 - float(np.sum(free_weights))
    weights = np.concatenate([free_weights, [last_weight]])
    rates = vector[num_phases - 1 :]
    return weights, rates


def _relative_residuals(
    weights: np.ndarray, rates: np.ndarray, target_moments: np.ndarray
) -> np.ndarray:
    """Relative residuals of the moment equations (Eq. 7)."""
    fitted = hyperexponential_moments(weights, rates, target_moments.size)
    return (fitted - target_moments) / target_moments


def _numerical_jacobian(
    vector: np.ndarray, target_moments: np.ndarray, num_phases: int
) -> np.ndarray:
    """Forward-difference Jacobian of the relative residuals."""
    weights, rates = _unpack(vector, num_phases)
    base = _relative_residuals(weights, rates, target_moments)
    jacobian = np.zeros((base.size, vector.size))
    for column in range(vector.size):
        step = max(1e-7, 1e-7 * abs(vector[column]))
        perturbed = vector.copy()
        perturbed[column] += step
        weights_p, rates_p = _unpack(perturbed, num_phases)
        if np.any(rates_p <= 0.0):
            step = -step
            perturbed = vector.copy()
            perturbed[column] += step
            weights_p, rates_p = _unpack(perturbed, num_phases)
        jacobian[:, column] = (
            _relative_residuals(weights_p, rates_p, target_moments) - base
        ) / step
    return jacobian


def _initial_guess(target_moments: np.ndarray, num_phases: int) -> tuple[np.ndarray, np.ndarray]:
    """A starting point informed by the first two target moments.

    When the target squared coefficient of variation exceeds one, the
    balanced-means 2-phase hyperexponential matching the first two moments
    provides rates already in the right region; additional phases (for
    ``n > 2``) are interpolated geometrically between them.  Otherwise the
    rates are simply spread geometrically around the aggregate rate.
    """
    mean = float(target_moments[0])
    base_rate = 1.0 / mean
    scv = float(target_moments[1] / mean**2 - 1.0) if target_moments.size > 1 else 1.0
    if scv > 1.05:
        from ..distributions import HyperExponential

        seed = HyperExponential.from_mean_and_scv(mean, scv)
        fast, slow = float(np.max(seed.rates)), float(np.min(seed.rates))
        rates = np.geomspace(slow, fast, num_phases) if num_phases > 1 else np.array([base_rate])
    else:
        rates = base_rate * np.geomspace(0.2, 5.0, num_phases)
    weights = np.full(num_phases, 1.0 / num_phases)
    return weights, rates


def fit_newton(
    target_moments: Sequence[float],
    num_phases: int = 2,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-9,
    initial: tuple[Sequence[float], Sequence[float]] | None = None,
) -> IterativeFitResult:
    """Damped Newton iteration on the moment-matching system (paper Eq. 7).

    Parameters
    ----------
    target_moments:
        Estimated raw moments ``M~_1 .. M~_{2n-1}``.
    num_phases:
        Number of phases ``n``.
    max_iterations:
        Iteration budget before declaring non-convergence.
    tolerance:
        Convergence threshold on the infinity norm of the relative residuals.
    initial:
        Optional ``(weights, rates)`` starting point.

    Raises
    ------
    FittingError
        On non-convergence or when the iteration leaves the feasible region
        and cannot recover — the outcome the paper reports for ``n = 3``.
    """
    num_phases = check_positive_int(num_phases, "num_phases")
    moments_arr = np.asarray(target_moments, dtype=float)
    required = 2 * num_phases - 1
    if moments_arr.size < required:
        raise FittingError(
            f"an {num_phases}-phase fit needs {required} target moments, got {moments_arr.size}"
        )
    moments_arr = moments_arr[:required]
    if np.any(moments_arr <= 0.0):
        raise FittingError("target moments must be strictly positive")

    if initial is None:
        weights, rates = _initial_guess(moments_arr, num_phases)
    else:
        weights = np.asarray(initial[0], dtype=float)
        rates = np.asarray(initial[1], dtype=float)
        if weights.size != num_phases or rates.size != num_phases:
            raise FittingError("initial weights and rates must each have num_phases entries")
    vector = _pack(weights, rates)

    residual_norm = math.inf
    for iteration in range(1, max_iterations + 1):
        weights, rates = _unpack(vector, num_phases)
        if np.any(rates <= 0.0) or not weights_are_feasible(weights, tolerance=1e-6):
            raise FittingError(
                f"Newton iteration left the feasible region at iteration {iteration}"
            )
        residuals = _relative_residuals(weights, rates, moments_arr)
        residual_norm = float(np.max(np.abs(residuals)))
        if residual_norm < tolerance:
            weights = np.clip(weights, 0.0, 1.0)
            weights = weights / weights.sum()
            return IterativeFitResult(
                distribution=HyperExponential(weights=weights, rates=rates),
                iterations=iteration,
                residual_norm=residual_norm,
                converged=True,
            )
        jacobian = _numerical_jacobian(vector, moments_arr, num_phases)
        try:
            step = np.linalg.solve(jacobian, -residuals)
        except np.linalg.LinAlgError as exc:
            raise FittingError(
                f"Newton iteration hit a singular Jacobian at iteration {iteration}"
            ) from exc
        # Damped update: halve the step until the candidate stays feasible.
        damping = 1.0
        for _ in range(30):
            candidate = vector + damping * step
            _, candidate_rates = _unpack(candidate, num_phases)
            if np.all(candidate_rates > 0.0):
                break
            damping *= 0.5
        else:
            raise FittingError("Newton step could not be damped into the feasible region")
        vector = vector + damping * step

    raise FittingError(
        f"Newton iteration did not converge in {max_iterations} iterations "
        f"(final residual {residual_norm:.3g})"
    )


def fit_gauss_seidel(
    target_moments: Sequence[float],
    num_phases: int = 2,
    *,
    max_iterations: int = 3000,
    tolerance: float = 1e-8,
) -> IterativeFitResult:
    """Gauss–Seidel (coordinate relaxation) iteration on the moment equations.

    One "iteration" is a sweep over the free parameters
    ``(alpha_1 .. alpha_{n-1}, xi_1 .. xi_n)``; each parameter in turn takes a
    damped one-dimensional Newton step that reduces the sum of squared
    relative moment errors, with the remaining parameters held at their most
    recent values — the classical nonlinear Gauss–Seidel relaxation of Ortega
    & Rheinboldt that the paper applied to Eq. 7.  The sweep converges for
    the 2-phase fit of the Sun operative periods (as the paper reports) and
    raises :class:`FittingError` when it stalls, which is the typical outcome
    for higher-phase fits or infeasible target moments.
    """
    num_phases = check_positive_int(num_phases, "num_phases")
    moments_arr = np.asarray(target_moments, dtype=float)
    required = 2 * num_phases - 1
    if moments_arr.size < required:
        raise FittingError(
            f"an {num_phases}-phase fit needs {required} target moments, got {moments_arr.size}"
        )
    moments_arr = moments_arr[:required]
    if np.any(moments_arr <= 0.0):
        raise FittingError("target moments must be strictly positive")

    weights, rates = _initial_guess(moments_arr, num_phases)
    parameters = _pack(weights, rates)
    num_parameters = parameters.size

    def residual_vector(vector: np.ndarray) -> np.ndarray:
        candidate_weights, candidate_rates = _unpack(vector, num_phases)
        return _relative_residuals(candidate_weights, candidate_rates, moments_arr)

    def objective(vector: np.ndarray) -> float:
        candidate_weights, candidate_rates = _unpack(vector, num_phases)
        if np.any(candidate_rates <= 0.0) or not weights_are_feasible(
            candidate_weights, tolerance=1e-9
        ):
            return math.inf
        return float(np.sum(residual_vector(vector) ** 2))

    residual_norm = float(np.max(np.abs(residual_vector(parameters))))
    for iteration in range(1, max_iterations + 1):
        improved = False
        for index in range(num_parameters):
            current_value = objective(parameters)
            step = max(1e-7, 1e-6 * abs(parameters[index]))
            plus = parameters.copy()
            plus[index] += step
            minus = parameters.copy()
            minus[index] -= step
            value_plus, value_minus = objective(plus), objective(minus)
            if not np.isfinite(value_plus) or not np.isfinite(value_minus):
                continue
            gradient = (value_plus - value_minus) / (2.0 * step)
            curvature = (value_plus - 2.0 * current_value + value_minus) / (step * step)
            if curvature > 0.0:
                delta = -gradient / curvature
            else:
                delta = -gradient * max(abs(parameters[index]), step)
            if delta == 0.0 or not np.isfinite(delta):
                continue
            damping = 1.0
            for _ in range(40):
                candidate = parameters.copy()
                candidate[index] = parameters[index] + damping * delta
                if objective(candidate) < current_value:
                    parameters = candidate
                    improved = True
                    break
                damping *= 0.5

        residual_norm = float(np.max(np.abs(residual_vector(parameters))))
        if residual_norm < tolerance:
            final_weights, final_rates = _unpack(parameters, num_phases)
            final_weights = np.clip(final_weights, 0.0, 1.0)
            final_weights = final_weights / final_weights.sum()
            return IterativeFitResult(
                distribution=HyperExponential(weights=final_weights, rates=final_rates),
                iterations=iteration,
                residual_norm=residual_norm,
                converged=True,
            )
        if not improved:
            raise FittingError(
                f"Gauss-Seidel relaxation stalled at iteration {iteration} "
                f"(residual {residual_norm:.3g}); the target moments may not be "
                "attainable by a hyperexponential distribution with "
                f"{num_phases} phases"
            )

    raise FittingError(
        f"Gauss-Seidel iteration did not converge in {max_iterations} iterations "
        f"(final residual {residual_norm:.3g})"
    )
