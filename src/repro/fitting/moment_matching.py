"""Moment-matching fits of hyperexponential distributions.

An ``n``-phase hyperexponential distribution is completely determined by its
first ``2n - 1`` raw moments (paper Eq. 6–7).  This module provides:

* :func:`fit_two_phase_from_moments` — the closed-form three-moment fit of a
  2-phase hyperexponential (the fit eventually adopted by the paper, after
  observing that the 3-phase brute-force search returned two nearly equal
  rates);
* :func:`fit_exponential` — the one-moment exponential fit used as the null
  hypothesis of the Kolmogorov–Smirnov tests;
* :func:`hyperexponential_moments` / :func:`solve_weights_for_rates` — the
  algebraic building blocks shared with the brute-force and iterative
  fitting procedures.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..distributions import Exponential, HyperExponential
from ..exceptions import FittingError


@dataclass(frozen=True)
class MomentFitReport:
    """Diagnostics attached to a moment-matching fit.

    Attributes
    ----------
    distribution:
        The fitted hyperexponential distribution.
    target_moments:
        The empirical moments the fit was asked to match.
    fitted_moments:
        The corresponding moments of the fitted distribution.
    absolute_errors:
        ``|fitted - target|`` per moment order.
    """

    distribution: HyperExponential
    target_moments: np.ndarray
    fitted_moments: np.ndarray
    absolute_errors: np.ndarray

    @property
    def max_relative_error(self) -> float:
        """The largest relative error across the matched moments."""
        scale = np.where(self.target_moments == 0.0, 1.0, np.abs(self.target_moments))
        return float(np.max(self.absolute_errors / scale))


def hyperexponential_moments(
    weights: Sequence[float], rates: Sequence[float], count: int
) -> np.ndarray:
    """Raw moments ``M_k = k! sum_j alpha_j / xi_j^k`` for ``k = 1..count`` (Eq. 6)."""
    weights_arr = np.asarray(weights, dtype=float)
    rates_arr = np.asarray(rates, dtype=float)
    return np.array(
        [
            math.factorial(k) * float(np.sum(weights_arr / rates_arr**k))
            for k in range(1, count + 1)
        ]
    )


def solve_weights_for_rates(rates: Sequence[float], target_moments: Sequence[float]) -> np.ndarray:
    """Solve for mixing weights given candidate rates and leading moments.

    For ``n`` candidate rates the weights are obtained from the normalising
    condition plus the first ``n - 1`` moment equations, which are *linear* in
    the weights.  This is the elimination step the paper applies before its
    brute-force search over rates (Section 2).

    Parameters
    ----------
    rates:
        Candidate rates ``xi_1 .. xi_n`` (strictly positive).
    target_moments:
        Estimated moments ``M~_1, M~_2, ...``; at least ``n - 1`` values are
        required.

    Returns
    -------
    numpy.ndarray
        The weight vector ``alpha``.  The entries sum to one but may be
        negative or exceed one for infeasible rate combinations; callers must
        check feasibility (see :func:`weights_are_feasible`).
    """
    rates_arr = np.asarray(rates, dtype=float)
    moments_arr = np.asarray(target_moments, dtype=float)
    n = rates_arr.size
    if np.any(rates_arr <= 0.0):
        raise FittingError("candidate rates must be strictly positive")
    if moments_arr.size < n - 1:
        raise FittingError(
            f"need at least {n - 1} target moments to determine {n} weights, "
            f"got {moments_arr.size}"
        )
    # Row 0: normalisation sum alpha_j = 1.
    # Row k (1-based): sum_j alpha_j * k! / xi_j^k = M~_k  for k = 1 .. n-1.
    system = np.ones((n, n))
    rhs = np.ones(n)
    for k in range(1, n):
        system[k, :] = math.factorial(k) / rates_arr**k
        rhs[k] = moments_arr[k - 1]
    try:
        weights = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise FittingError(f"weight system is singular for rates {rates_arr!r}") from exc
    return weights


def weights_are_feasible(weights: Sequence[float], tolerance: float = 1e-9) -> bool:
    """Return True when all weights lie in ``[0, 1]`` up to ``tolerance``."""
    weights_arr = np.asarray(weights, dtype=float)
    return bool(np.all(weights_arr >= -tolerance) and np.all(weights_arr <= 1.0 + tolerance))


def fit_exponential(target_moments: Sequence[float]) -> Exponential:
    """Fit an exponential distribution by matching the first moment.

    This is the null-hypothesis distribution whose Kolmogorov–Smirnov test
    the paper reports as strongly rejected for operative periods.
    """
    moments_arr = np.asarray(target_moments, dtype=float)
    if moments_arr.size < 1 or moments_arr[0] <= 0.0:
        raise FittingError("the first target moment must be positive")
    return Exponential(rate=1.0 / float(moments_arr[0]))


def fit_two_phase_from_moments(target_moments: Sequence[float]) -> MomentFitReport:
    """Closed-form fit of a 2-phase hyperexponential to three raw moments.

    Writing ``m_k = M_k / k! = sum_j alpha_j / xi_j^k`` and ``x_j = 1 / xi_j``,
    the pair ``(x_1, x_2)`` solves the quadratic ``x^2 - c_1 x - c_0 = 0``
    whose coefficients are obtained from the linear system

    .. math::

        c_1 m_1 + c_0 m_0 = m_2, \\qquad c_1 m_2 + c_0 m_1 = m_3,

    with ``m_0 = 1``; the weight on the first phase is then
    ``alpha_1 = (m_1 - x_2) / (x_1 - x_2)``.

    Parameters
    ----------
    target_moments:
        The estimated raw moments ``(M~_1, M~_2, M~_3)``.  Only the first
        three entries are used.

    Raises
    ------
    FittingError
        If fewer than three moments are supplied, the squared coefficient of
        variation implied by the first two moments is not greater than one,
        or the three moments are not jointly attainable by a 2-phase
        hyperexponential distribution.
    """
    moments_arr = np.asarray(target_moments, dtype=float)
    if moments_arr.size < 3:
        raise FittingError("three target moments are required for a 2-phase fit")
    m1_raw, m2_raw, m3_raw = (float(moments_arr[k]) for k in range(3))
    if m1_raw <= 0.0 or m2_raw <= 0.0 or m3_raw <= 0.0:
        raise FittingError("target moments must be strictly positive")
    scv = m2_raw / (m1_raw * m1_raw) - 1.0
    if scv <= 0.0:
        raise FittingError(
            "the empirical squared coefficient of variation must exceed 1 for a "
            f"hyperexponential fit, got C^2 = {1.0 + scv:.6g} - 1"
        )
    # Normalised power sums m_k = M_k / k!.
    m0, m1, m2, m3 = 1.0, m1_raw, m2_raw / 2.0, m3_raw / 6.0
    determinant = m1 * m1 - m2 * m0
    if abs(determinant) < 1e-300:
        raise FittingError("moment system is degenerate (Hankel determinant is zero)")
    system = np.array([[m1, m0], [m2, m1]])
    rhs = np.array([m2, m3])
    try:
        c1, c0 = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise FittingError("moment system is singular") from exc
    discriminant = c1 * c1 + 4.0 * c0
    if discriminant < 0.0:
        raise FittingError(
            "the supplied moments are not attainable by a 2-phase hyperexponential "
            f"(negative discriminant {discriminant:.6g})"
        )
    sqrt_disc = math.sqrt(discriminant)
    x1 = 0.5 * (c1 + sqrt_disc)
    x2 = 0.5 * (c1 - sqrt_disc)
    if x1 <= 0.0 or x2 <= 0.0 or math.isclose(x1, x2, rel_tol=1e-12):
        raise FittingError(
            "the supplied moments do not yield two distinct positive phase means "
            f"(got {x1:.6g} and {x2:.6g})"
        )
    alpha1 = (m1 - x2) / (x1 - x2)
    alpha2 = 1.0 - alpha1
    if not weights_are_feasible([alpha1, alpha2]):
        raise FittingError(
            f"the implied mixing weights ({alpha1:.6g}, {alpha2:.6g}) are outside [0, 1]"
        )
    alpha1 = min(max(alpha1, 0.0), 1.0)
    # Present the phases in decreasing-rate order (shorter-period phase
    # first), matching the convention of the paper's Section-2 tables.
    weights = np.array([alpha1, 1.0 - alpha1])
    rates = np.array([1.0 / x1, 1.0 / x2])
    order = np.argsort(rates)[::-1]
    distribution = HyperExponential(weights=weights[order], rates=rates[order])
    fitted = distribution.moments(3)
    targets = moments_arr[:3].astype(float)
    return MomentFitReport(
        distribution=distribution,
        target_moments=targets,
        fitted_moments=fitted,
        absolute_errors=np.abs(fitted - targets),
    )


def fit_two_phase_from_mean_and_scv(mean: float, scv: float) -> HyperExponential:
    """Fit a balanced-means 2-phase hyperexponential to a mean and SCV.

    Thin wrapper over :meth:`HyperExponential.from_mean_and_scv`, provided so
    that all fitting entry points live in :mod:`repro.fitting`.
    """
    return HyperExponential.from_mean_and_scv(mean, scv)
