"""Distribution-fitting procedures for breakdown/repair period data.

The Section-2 analysis of the paper fits hyperexponential distributions to
the operative and inoperative periods of the Sun trace.  This package
provides every procedure the paper mentions plus a likelihood-based
alternative:

* closed-form 2-phase moment matching (:func:`fit_two_phase_from_moments`);
* brute-force rate search minimising the Eq.-8 objective
  (:func:`fit_hyperexponential_brute_force`);
* Newton and Gauss–Seidel iterations on the full moment system
  (:func:`fit_newton`, :func:`fit_gauss_seidel`) — these reproduce the
  convergence failures the paper reports for 3-phase fits;
* EM maximum-likelihood fitting (:func:`fit_hyperexponential_em`).
"""

from .brute_force import BruteForceFitResult, fit_hyperexponential_brute_force
from .em import EMFitResult, fit_hyperexponential_em
from .iterative import IterativeFitResult, fit_gauss_seidel, fit_newton
from .moment_matching import (
    MomentFitReport,
    fit_exponential,
    fit_two_phase_from_mean_and_scv,
    fit_two_phase_from_moments,
    hyperexponential_moments,
    solve_weights_for_rates,
    weights_are_feasible,
)

__all__ = [
    "MomentFitReport",
    "fit_exponential",
    "fit_two_phase_from_moments",
    "fit_two_phase_from_mean_and_scv",
    "hyperexponential_moments",
    "solve_weights_for_rates",
    "weights_are_feasible",
    "BruteForceFitResult",
    "fit_hyperexponential_brute_force",
    "IterativeFitResult",
    "fit_newton",
    "fit_gauss_seidel",
    "EMFitResult",
    "fit_hyperexponential_em",
]
