"""Expectation-maximisation fitting of hyperexponential mixtures.

The paper fits hyperexponential distributions by moment matching.  Moment
matching is simple but sensitive to heavy tails (the fifth moment of a noisy
sample is a fragile quantity), so a production library should also offer a
likelihood-based alternative.  EM for a mixture of exponentials is the
classical choice: each observation is softly assigned to a phase in the
E-step and the phase weights/rates are re-estimated in closed form in the
M-step.  The library uses it as a cross-check on the moment-matching fit in
the Section-2 experiment and exposes it as part of the public fitting API.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int
from ..distributions import HyperExponential
from ..exceptions import FittingError


@dataclass(frozen=True)
class EMFitResult:
    """Result of an EM fit of a hyperexponential mixture.

    Attributes
    ----------
    distribution:
        The fitted hyperexponential distribution.
    log_likelihood:
        The final log-likelihood of the data under the fitted mixture.
    iterations:
        Number of EM iterations performed.
    converged:
        True when the relative log-likelihood improvement fell below the
        tolerance within the iteration budget.
    """

    distribution: HyperExponential
    log_likelihood: float
    iterations: int
    converged: bool


def _log_likelihood(data: np.ndarray, weights: np.ndarray, rates: np.ndarray) -> float:
    densities = weights * rates * np.exp(-np.outer(data, rates))
    mixture = densities.sum(axis=1)
    mixture = np.maximum(mixture, 1e-300)
    return float(np.sum(np.log(mixture)))


def fit_hyperexponential_em(
    observations: Sequence[float],
    num_phases: int = 2,
    *,
    max_iterations: int = 500,
    tolerance: float = 1e-9,
    rng: np.random.Generator | None = None,
) -> EMFitResult:
    """Fit an ``n``-phase hyperexponential to raw observations by EM.

    Parameters
    ----------
    observations:
        Strictly positive observed period lengths.
    num_phases:
        Number of exponential phases in the mixture.
    max_iterations:
        EM iteration budget.
    tolerance:
        Convergence threshold on the relative improvement of the
        log-likelihood between successive iterations.
    rng:
        Generator used to randomise the initial rate spread; a fixed default
        seed is used when omitted so fits are reproducible.

    Raises
    ------
    FittingError
        If the observations are empty or non-positive, or if a phase
        collapses (zero responsibility mass) during the iteration.
    """
    num_phases = check_positive_int(num_phases, "num_phases")
    data = np.asarray(observations, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise FittingError("observations must be a non-empty one-dimensional sequence")
    if np.any(data <= 0.0) or np.any(~np.isfinite(data)):
        raise FittingError("observations must be finite and strictly positive")
    generator = rng if rng is not None else np.random.default_rng(19681215)

    mean = float(np.mean(data))
    spread = np.geomspace(0.2, 5.0, num_phases) * generator.uniform(0.9, 1.1, size=num_phases)
    rates = spread / mean
    weights = np.full(num_phases, 1.0 / num_phases)

    previous = _log_likelihood(data, weights, rates)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # E-step: responsibilities r_{ij} proportional to alpha_j f_j(x_i).
        densities = weights * rates * np.exp(-np.outer(data, rates))
        totals = densities.sum(axis=1, keepdims=True)
        totals = np.maximum(totals, 1e-300)
        responsibilities = densities / totals

        # M-step: closed-form updates for exponential mixtures.
        mass = responsibilities.sum(axis=0)
        if np.any(mass <= 0.0):
            raise FittingError("a mixture phase collapsed during EM (zero responsibility mass)")
        weights = mass / data.size
        weighted_sums = responsibilities.T @ data
        rates = mass / weighted_sums

        current = _log_likelihood(data, weights, rates)
        if abs(current - previous) <= tolerance * (abs(previous) + 1e-12):
            previous = current
            converged = True
            break
        previous = current

    order = np.argsort(rates)[::-1]
    distribution = HyperExponential(weights=weights[order] / weights.sum(), rates=rates[order])
    return EMFitResult(
        distribution=distribution,
        log_likelihood=previous,
        iterations=iterations,
        converged=converged,
    )
