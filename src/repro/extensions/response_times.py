"""Response-time distributions — the paper's stated open problem.

Section 5 of the paper notes that the spectral-expansion solution gives the
distribution of the *queue size* (and hence the mean response time via
Little's law) but not the distribution of the *response time* itself, e.g.
its 90th percentile, and leaves that as future work.  This module provides
two practical answers a downstream user can rely on today:

* :func:`simulated_response_time_distribution` — an empirical response-time
  distribution from the discrete-event simulator, valid for any period
  distributions (this is the ground truth the open problem asks for);
* :func:`fcfs_exponential_capacity_bound` — a closed-form *approximation*
  obtained by treating the cluster as a single fast server of capacity equal
  to the mean number of operative servers (an M/M/1-style bound that is
  asymptotically correct in heavy traffic, where the queue — not the service
  — dominates the response time).

Both are exercised by the test-suite against each other and against the exact
mean response time from the spectral solution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative, check_positive, check_probability
from ..exceptions import SimulationError, SolverError
from ..queueing.model import UnreliableQueueModel
from ..simulation.queue_sim import UnreliableQueueSimulator
from ..solvers import SolutionCache, SolverPolicy, solve
from ..distributions import Exponential


@dataclass(frozen=True)
class ResponseTimeDistribution:
    """An empirical response-time distribution estimated by simulation.

    Attributes
    ----------
    samples:
        The post-warm-up response-time samples, sorted ascending.
    mean:
        The sample mean response time.
    """

    samples: np.ndarray
    mean: float

    def quantile(self, probability: float) -> float:
        """The empirical quantile of the response time (e.g. 0.9 for the 90th)."""
        probability = check_probability(probability, "probability")
        return float(np.quantile(self.samples, probability))

    def tail_probability(self, threshold: float) -> float:
        """``P(response time > threshold)`` under the empirical distribution.

        ``threshold = 0.0`` is a legitimate query (response times are strictly
        positive, so it returns 1), hence only negative thresholds are rejected.
        """
        threshold = check_non_negative(threshold, "threshold")
        return float(np.mean(self.samples > threshold))

    @property
    def percentile_90(self) -> float:
        """The 90th percentile the paper singles out as the open question."""
        return self.quantile(0.9)

    @property
    def num_samples(self) -> int:
        """The number of completed jobs behind the estimate."""
        return int(self.samples.size)


def mean_response_time(
    model: UnreliableQueueModel,
    policy: SolverPolicy | str | None = None,
    *,
    cache: SolutionCache | bool | None = None,
) -> float:
    """The mean response time ``W`` through the :mod:`repro.solvers` facade.

    This is the analytic companion to the empirical distribution below: it
    dispatches through the solver registry with the usual fallback chain
    (spectral → geometric by default) and the shared solution cache, so the
    exact mean used to sanity-check the simulated distribution is obtained
    the same way every other consumer obtains it.

    Raises
    ------
    SolverError
        When the model is unstable or every solver in the policy fails.
    """
    outcome = solve(model, policy, cache=cache)
    if not outcome.stable:
        raise SolverError("the queue is unstable; the mean response time is infinite")
    if outcome.solver is None:
        raise SolverError(outcome.error or "no solver succeeded")
    return float(outcome.metrics["mean_response_time"])


def simulated_response_time_distribution(
    model: UnreliableQueueModel,
    *,
    horizon: float | None = None,
    warmup_fraction: float | None = None,
    seed: int | None = None,
    policy: SolverPolicy | None = None,
) -> ResponseTimeDistribution:
    """Estimate the response-time distribution of a model by simulation.

    Parameters
    ----------
    model:
        The queueing model (any period distributions are accepted).
    horizon:
        Total simulated time including warm-up.
    warmup_fraction:
        Fraction of the horizon discarded before collecting response times.
    seed:
        Random seed of the simulation run.
    policy:
        Optional :class:`~repro.solvers.SolverPolicy` supplying defaults for
        the three options above from its ``simulate_*`` fields, so a sweep
        and a response-time study can share one simulation configuration.

    Raises
    ------
    SimulationError
        If the horizon is too short to produce a usable number of completed
        jobs after the warm-up period.
    """
    defaults = policy if policy is not None else SolverPolicy()
    horizon = horizon if horizon is not None else defaults.simulate_horizon
    warmup_fraction = (
        warmup_fraction if warmup_fraction is not None else defaults.simulate_warmup_fraction
    )
    seed = seed if seed is not None else defaults.simulate_seed
    horizon = check_positive(horizon, "horizon")
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError("warmup_fraction must lie in [0, 1)")
    simulator = UnreliableQueueSimulator(
        num_servers=model.num_servers,
        arrival_rate=model.arrival_rate,
        service_distribution=Exponential(rate=model.service_rate),
        operative_distribution=model.operative,
        inoperative_distribution=model.inoperative,
        seed=seed,
    )
    simulator.run(horizon)
    warmup_time = warmup_fraction * horizon
    samples = np.array(
        sorted(
            response
            for completion_time, response in simulator.completed_jobs()
            if completion_time >= warmup_time
        )
    )
    if samples.size < 100:
        raise SimulationError(
            f"only {samples.size} completed jobs after warm-up; increase the horizon"
        )
    return ResponseTimeDistribution(samples=samples, mean=float(np.mean(samples)))


def fcfs_exponential_capacity_bound(
    model: UnreliableQueueModel, probability: float
) -> float:
    """A closed-form heavy-traffic approximation of a response-time quantile.

    The cluster is replaced by a single exponential server whose rate equals
    the average operative service capacity ``c = mu * N * eta / (xi + eta)``;
    the response time of the resulting M/M/1 queue is exponential with rate
    ``c - lambda``, whose ``p``-quantile is ``-ln(1 - p) / (c - lambda)``.
    The estimate is meaningful only in heavy traffic, where the waiting time
    (which the aggregated server captures) dominates the service time (which
    it distorts); at light load it understates response times and the
    simulation-based estimator should be used instead.
    """
    probability = check_probability(probability, "probability")
    if not 0.0 < probability < 1.0:
        raise SimulationError("probability must lie strictly between 0 and 1")
    model.require_stable()
    capacity = model.service_rate * model.mean_operative_servers
    gap = capacity - model.arrival_rate
    return float(-np.log(1.0 - probability) / gap)
