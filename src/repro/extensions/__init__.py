"""Extensions beyond the paper's published results.

Currently this package addresses the open problem stated in the paper's
conclusions — the distribution (rather than just the mean) of the response
time:

* :func:`simulated_response_time_distribution`,
  :class:`ResponseTimeDistribution` — empirical response-time quantiles from
  the discrete-event simulator;
* :func:`mean_response_time` — the analytic mean through the
  :mod:`repro.solvers` registry/facade (fallback chain + shared cache);
* :func:`fcfs_exponential_capacity_bound` — a closed-form heavy-traffic
  estimate of response-time quantiles.
"""

from .response_times import (
    ResponseTimeDistribution,
    fcfs_exponential_capacity_bound,
    mean_response_time,
    simulated_response_time_distribution,
)

__all__ = [
    "ResponseTimeDistribution",
    "simulated_response_time_distribution",
    "mean_response_time",
    "fcfs_exponential_capacity_bound",
]
