"""A small deterministic discrete-event simulation engine.

The engine is deliberately minimal: a simulation clock, a priority queue of
time-stamped events with stable FIFO tie-breaking, and support for cancelling
events that have become obsolete (for example the service completion of a job
whose server just broke down).  The queueing simulator in
:mod:`repro.simulation.queue_sim` is built on top of it; keeping the engine
generic also makes it reusable for the extension studies in the examples.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from ..exceptions import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry: (time, sequence) ordering with payload attached."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """The scheduled firing time of the event."""
        return self._event.time

    @property
    def is_cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled


class EventScheduler:
    """A simulation clock with a cancellable future-event list."""

    def __init__(self) -> None:
        self._clock = 0.0
        self._heap: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._clock

    @property
    def num_processed_events(self) -> int:
        """The number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def num_pending_events(self) -> int:
        """The number of events still in the future-event list (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` time units from now.

        Raises
        ------
        SimulationError
            If ``delay`` is negative or not finite.
        """
        if not delay >= 0.0:
            raise SimulationError(f"event delay must be non-negative and finite, got {delay!r}")
        event = _ScheduledEvent(time=self._clock + delay, sequence=next(self._sequence), action=action)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at an absolute simulation time (>= now)."""
        if time < self._clock:
            raise SimulationError(
                f"cannot schedule an event in the past (time {time} < now {self._clock})"
            )
        return self.schedule(time - self._clock, action)

    def run_until(self, horizon: float) -> None:
        """Execute events in time order until the clock reaches ``horizon``.

        Events scheduled exactly at the horizon are executed; the clock never
        exceeds the horizon even if later events remain pending.
        """
        if horizon < self._clock:
            raise SimulationError(
                f"horizon {horizon} lies in the past (current time {self._clock})"
            )
        while self._heap and self._heap[0].time <= horizon:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._clock = event.time
            self._processed += 1
            event.action()
        self._clock = horizon

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns True if an event was executed, False if the event list is
        empty (cancelled events are discarded silently).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._clock = event.time
            self._processed += 1
            event.action()
            return True
        return False
