"""Discrete-event simulation of scenario models (groups + limited repair crew).

The scenario simulator generalises :mod:`repro.simulation.queue_sim` to the
:class:`~repro.scenarios.ScenarioModel` assumptions while remaining exactly
equivalent in law to the scenario CTMC for phase-type periods:

* **per-group service rates** — a job carries its remaining service *work*
  (a unit-mean exponential requirement) and a server of group ``g`` consumes
  work at speed ``mu_g``, so its completion hazard on that server is
  ``mu_g`` — exactly the CTMC's per-server rate;
* **fastest-server-first dispatch** — a waiting job always starts on the
  fastest idle operative server, and whenever a faster server becomes
  available while the queue is empty the job on the slowest busy server
  migrates to it.  This maintains the analytical model's invariant that the
  ``j`` jobs present occupy the ``j`` fastest operative servers (migration is
  statistically free because the service requirement is memoryless);
* **repair-slot contention** — at most ``R`` servers make repair progress
  concurrently.  The crew is shared equally: every broken server's remaining
  repair work is consumed at speed ``min(broken, R) / broken``, so for
  phase-type repair distributions the completion rates are scaled exactly as
  in the CTMC generator.  When the broken count changes, pending repair
  completions are rescheduled to the new speed.

With one group and an unlimited crew the dynamics reduce to the homogeneous
simulator's (no migrations, unit repair speed).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .._validation import check_positive, check_positive_int
from ..exceptions import SimulationError
from .engine import EventHandle, EventScheduler
from .estimators import TimeWeightedAccumulator, batch_means_interval
from .queue_sim import SimulationEstimate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios import ScenarioModel


@dataclass
class _ScenarioJob:
    """A job in the simulated system (mutable: remaining work decreases)."""

    identifier: int
    arrival_time: float
    remaining_work: float  # unit-mean exponential service requirement


@dataclass
class _ScenarioServer:
    """A simulated server: group membership, speed and current activity."""

    identifier: int
    group: int
    rate: float
    operative: bool = True
    job: _ScenarioJob | None = None
    completion_handle: EventHandle | None = None
    repair_handle: EventHandle | None = None


class ScenarioSimulator:
    """Event-driven simulator of a scenario model.

    Parameters
    ----------
    scenario:
        The :class:`~repro.scenarios.ScenarioModel` to simulate.  Period
        distributions may be arbitrary :class:`~repro.distributions.Distribution`
        instances (phase-type restrictions apply only to the analytical
        solvers).
    seed:
        Seed for the NumPy random generator.

    Notes
    -----
    Dispatch and migration scan the server list, which is ``O(N)`` per event;
    scenario systems are small (tens of servers), so simplicity wins over the
    homogeneous simulator's heap bookkeeping here.
    """

    def __init__(self, scenario: "ScenarioModel", *, seed: int = 0) -> None:
        self._scenario = scenario
        self._rng = np.random.default_rng(seed)
        self._scheduler = EventScheduler()
        self._queue: deque[_ScenarioJob] = deque()
        self._servers: list[_ScenarioServer] = []
        for position, group in enumerate(scenario.groups):
            for _ in range(group.size):
                self._servers.append(
                    _ScenarioServer(
                        identifier=len(self._servers), group=position, rate=group.service_rate
                    )
                )
        self._repair_capacity = scenario.effective_repair_capacity
        self._limited_crew = self._repair_capacity < len(self._servers)
        self._broken_ids: set[int] = set()
        self._repair_share = 1.0
        self._next_job_id = 0
        self._jobs_in_system = 0
        self._num_busy = 0
        self._jobs_accumulator = TimeWeightedAccumulator()
        self._busy_accumulator = TimeWeightedAccumulator()
        self._completed_jobs: list[tuple[float, float]] = []
        self._started = False

    # ------------------------------------------------------------------ #
    # Public interface
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._scheduler.now

    @property
    def num_jobs_in_system(self) -> int:
        """The current number of jobs present (waiting or in service)."""
        return self._jobs_in_system

    @property
    def num_operative_servers(self) -> int:
        """The current number of operative servers."""
        return len(self._servers) - len(self._broken_ids)

    @property
    def num_busy_servers(self) -> int:
        """The current number of servers actively serving a job."""
        return self._num_busy

    @property
    def num_broken_servers(self) -> int:
        """The current number of servers under (or waiting for) repair."""
        return len(self._broken_ids)

    @property
    def repair_share(self) -> float:
        """The current crew-sharing factor ``min(broken, R) / broken``."""
        return self._repair_share

    def busy_rates(self) -> list[float]:
        """The service rates of the currently busy servers (test hook)."""
        return sorted(server.rate for server in self._servers if server.job is not None)

    def idle_operative_rates(self) -> list[float]:
        """The service rates of the idle operative servers (test hook)."""
        return sorted(
            server.rate
            for server in self._servers
            if server.operative and server.job is None
        )

    def run(self, horizon: float) -> None:
        """Run (or continue) the simulation until the given absolute time."""
        if horizon <= 0.0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        if not self._started:
            self._bootstrap()
            self._started = True
        self._scheduler.run_until(horizon)

    def completed_jobs(self) -> list[tuple[float, float]]:
        """Return ``(completion_time, response_time)`` pairs for finished jobs."""
        return list(self._completed_jobs)

    def time_average_jobs(self, start: float, end: float) -> float:
        """Time-average number of jobs in the system over ``[start, end]``."""
        return self._jobs_accumulator.time_average(start, end)

    def time_average_busy_servers(self, start: float, end: float) -> float:
        """Time-average number of busy servers over ``[start, end]``."""
        return self._busy_accumulator.time_average(start, end)

    # ------------------------------------------------------------------ #
    # Event logic
    # ------------------------------------------------------------------ #

    def _bootstrap(self) -> None:
        self._schedule_next_arrival()
        for server in self._servers:
            self._schedule_breakdown(server)

    def _schedule_next_arrival(self) -> None:
        delay = self._rng.exponential(scale=1.0 / self._scenario.arrival_rate)
        self._scheduler.schedule(delay, self._handle_arrival)

    def _schedule_breakdown(self, server: _ScenarioServer) -> None:
        distribution = self._scenario.groups[server.group].operative
        duration = float(distribution.sample(self._rng))
        self._scheduler.schedule(duration, lambda: self._handle_breakdown(server))

    def _handle_arrival(self) -> None:
        self._schedule_next_arrival()
        job = _ScenarioJob(
            identifier=self._next_job_id,
            arrival_time=self.now,
            remaining_work=float(self._rng.exponential(scale=1.0)),
        )
        self._next_job_id += 1
        self._record_jobs_change(+1)
        self._queue.append(job)
        self._dispatch_jobs()

    def _handle_breakdown(self, server: _ScenarioServer) -> None:
        if not server.operative:  # pragma: no cover - defensive; should not happen
            return
        server.operative = False
        if server.job is not None:
            self._preempt(server)
        self._enter_repair(server)
        self._dispatch_jobs()

    def _handle_repair(self, server: _ScenarioServer) -> None:
        if server.operative:  # pragma: no cover - defensive; should not happen
            return
        server.repair_handle = None
        self._leave_repair(server)
        server.operative = True
        self._schedule_breakdown(server)
        self._dispatch_jobs()
        self._rebalance()

    def _handle_completion(self, server: _ScenarioServer) -> None:
        job = server.job
        if job is None:  # pragma: no cover - defensive; cancelled handles prevent this
            return
        server.job = None
        server.completion_handle = None
        self._record_busy_change(-1)
        self._record_jobs_change(-1)
        self._completed_jobs.append((self.now, self.now - job.arrival_time))
        self._dispatch_jobs()
        self._rebalance()

    def _preempt(self, server: _ScenarioServer) -> None:
        """Interrupt the job in service and return it to the front of the queue."""
        job = server.job
        assert job is not None
        if server.completion_handle is not None:
            server.completion_handle.cancel()
            job.remaining_work = max(
                (server.completion_handle.time - self.now) * server.rate, 0.0
            )
        server.job = None
        server.completion_handle = None
        self._record_busy_change(-1)
        self._queue.appendleft(job)

    # ------------------------------------------------------------------ #
    # Repair-crew contention
    # ------------------------------------------------------------------ #

    def _crew_share(self, broken: int) -> float:
        if broken <= 0:
            return 1.0
        return min(float(broken), float(self._repair_capacity)) / float(broken)

    def _enter_repair(self, server: _ScenarioServer) -> None:
        """Start a repair for ``server``, rescaling the crew share."""
        old_share = self._repair_share
        self._broken_ids.add(server.identifier)
        new_share = self._crew_share(len(self._broken_ids))
        if self._limited_crew and new_share != old_share:
            self._rescale_repairs(old_share, new_share)
        self._repair_share = new_share
        distribution = self._scenario.groups[server.group].inoperative
        work = float(distribution.sample(self._rng))
        server.repair_handle = self._scheduler.schedule(
            work / new_share, lambda: self._handle_repair(server)
        )

    def _leave_repair(self, server: _ScenarioServer) -> None:
        """Finish ``server``'s repair, rescaling the remaining broken servers."""
        old_share = self._repair_share
        self._broken_ids.discard(server.identifier)
        new_share = self._crew_share(len(self._broken_ids))
        if self._limited_crew and new_share != old_share:
            self._rescale_repairs(old_share, new_share)
        self._repair_share = new_share

    def _rescale_repairs(self, old_share: float, new_share: float) -> None:
        """Reschedule pending repair completions to the new crew speed."""
        for identifier in self._broken_ids:
            broken = self._servers[identifier]
            handle = broken.repair_handle
            if handle is None:  # pragma: no cover - defensive
                continue
            remaining_work = max((handle.time - self.now) * old_share, 0.0)
            handle.cancel()
            broken.repair_handle = self._scheduler.schedule(
                remaining_work / new_share,
                lambda srv=broken: self._handle_repair(srv),
            )

    # ------------------------------------------------------------------ #
    # Dispatch and migration (fastest-server-first invariant)
    # ------------------------------------------------------------------ #

    def _fastest_idle_operative(self) -> _ScenarioServer | None:
        best: _ScenarioServer | None = None
        for server in self._servers:
            if not server.operative or server.job is not None:
                continue
            if best is None or server.rate > best.rate:
                best = server
        return best

    def _slowest_busy(self) -> _ScenarioServer | None:
        worst: _ScenarioServer | None = None
        for server in self._servers:
            if server.job is None:
                continue
            if worst is None or server.rate < worst.rate:
                worst = server
        return worst

    def _start_service(self, server: _ScenarioServer, job: _ScenarioJob) -> None:
        server.job = job
        server.completion_handle = self._scheduler.schedule(
            job.remaining_work / server.rate, lambda srv=server: self._handle_completion(srv)
        )

    def _dispatch_jobs(self) -> None:
        """Assign waiting jobs to the fastest idle operative servers."""
        while self._queue:
            server = self._fastest_idle_operative()
            if server is None:
                break
            job = self._queue.popleft()
            self._start_service(server, job)
            self._record_busy_change(+1)

    def _rebalance(self) -> None:
        """Migrate jobs so they occupy the fastest operative servers.

        Only relevant when the queue is empty (work conservation otherwise
        keeps every operative server busy).  Migration preserves the job's
        remaining work; the exponential requirement makes it statistically
        invisible, and it is what aligns the simulator with the CTMC's
        fastest-server-first service capacity.
        """
        if self._queue:
            return
        while True:
            idle = self._fastest_idle_operative()
            busy = self._slowest_busy()
            if idle is None or busy is None or idle.rate <= busy.rate:
                return
            job = busy.job
            assert job is not None
            if busy.completion_handle is not None:
                busy.completion_handle.cancel()
                job.remaining_work = max(
                    (busy.completion_handle.time - self.now) * busy.rate, 0.0
                )
            busy.job = None
            busy.completion_handle = None
            self._start_service(idle, job)

    # ------------------------------------------------------------------ #
    # Statistics plumbing
    # ------------------------------------------------------------------ #

    def _record_jobs_change(self, delta: int) -> None:
        self._jobs_in_system += delta
        self._jobs_accumulator.record(self.now, float(self._jobs_in_system))

    def _record_busy_change(self, delta: int) -> None:
        self._num_busy += delta
        self._busy_accumulator.record(self.now, float(self._num_busy))


def simulate_scenario(
    scenario: "ScenarioModel",
    *,
    horizon: float,
    warmup_fraction: float = 0.1,
    num_batches: int = 10,
    seed: int = 0,
    confidence: float = 0.95,
) -> SimulationEstimate:
    """Simulate a :class:`~repro.scenarios.ScenarioModel`.

    Parameters mirror :func:`repro.simulation.queue_sim.simulate_queue`; the
    returned :class:`SimulationEstimate` uses the same batch-means output
    analysis, so scenario estimates are directly comparable to homogeneous
    ones.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError("warmup_fraction must lie in [0, 1)")
    num_batches = check_positive_int(num_batches, "num_batches")
    if num_batches < 2:
        raise SimulationError("at least two batches are required for confidence intervals")
    horizon = check_positive(horizon, "horizon")

    simulator = ScenarioSimulator(scenario, seed=seed)
    simulator.run(horizon)

    warmup_time = warmup_fraction * horizon
    measurement_time = horizon - warmup_time
    batch_length = measurement_time / num_batches

    queue_batches = np.array(
        [
            simulator.time_average_jobs(
                warmup_time + index * batch_length, warmup_time + (index + 1) * batch_length
            )
            for index in range(num_batches)
        ]
    )
    queue_interval = batch_means_interval(queue_batches, confidence=confidence)

    completions = [
        (when, response) for when, response in simulator.completed_jobs() if when >= warmup_time
    ]
    if len(completions) < num_batches:
        raise SimulationError(
            "too few completed jobs after warm-up to form response-time batches; "
            "increase the horizon"
        )
    response_times = np.array([response for _, response in completions])
    response_batches = np.array(
        [float(np.mean(chunk)) for chunk in np.array_split(response_times, num_batches)]
    )
    response_interval = batch_means_interval(response_batches, confidence=confidence)

    busy_average = simulator.time_average_busy_servers(warmup_time, horizon)
    return SimulationEstimate(
        mean_queue_length=queue_interval,
        mean_response_time=response_interval,
        utilisation=busy_average / scenario.num_servers,
        num_completed_jobs=len(completions),
        horizon=horizon,
        warmup_time=warmup_time,
    )
