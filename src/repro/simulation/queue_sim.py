"""Discrete-event simulation of the unreliable multi-server queue.

The simulator reproduces the modelling assumptions of Section 3 of the paper
without the Markovian restriction on the period distributions:

* jobs arrive in a Poisson stream and wait in one unbounded FIFO queue;
* each of the ``N`` servers alternates between operative and inoperative
  periods drawn independently from arbitrary distributions;
* service requirements are exponential (general distributions are supported
  as well, for extension studies);
* an operative server is never idle while jobs wait;
* a job whose service is interrupted by a breakdown returns to the *front* of
  the queue and later resumes from the point of interruption, with no
  switching overhead (preemptive resume).

The paper uses simulation for the deterministic (``C^2 = 0``) operative-period
point of Figure 6; the test-suite additionally uses it to validate the
analytical solvers on hyperexponential configurations.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .._validation import check_positive, check_positive_int
from ..distributions import Distribution, Exponential
from ..exceptions import SimulationError
from .engine import EventHandle, EventScheduler
from .estimators import ConfidenceInterval, TimeWeightedAccumulator, batch_means_interval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..queueing.model import UnreliableQueueModel


@dataclass(frozen=True)
class SimulationEstimate:
    """Point estimates (with confidence intervals) from one simulation run.

    Attributes
    ----------
    mean_queue_length:
        Time-average number of jobs in the system with a batch-means
        confidence interval.
    mean_response_time:
        Average response time of jobs completed after the warm-up period.
    utilisation:
        Time-average number of busy servers divided by ``N``.
    num_completed_jobs:
        Number of jobs that completed service after the warm-up period.
    horizon:
        Total simulated time (including warm-up).
    warmup_time:
        Length of the discarded warm-up period.
    """

    mean_queue_length: ConfidenceInterval
    mean_response_time: ConfidenceInterval
    utilisation: float
    num_completed_jobs: int
    horizon: float
    warmup_time: float


@dataclass
class _Job:
    """A job in the simulated system (mutable: remaining service decreases)."""

    identifier: int
    arrival_time: float
    remaining_service: float


@dataclass
class _Server:
    """A simulated server and its current activity."""

    identifier: int
    operative: bool = True
    job: _Job | None = None
    service_start: float = 0.0
    completion_handle: EventHandle | None = None


class UnreliableQueueSimulator:
    """Event-driven simulator of the multi-server queue with breakdowns.

    Parameters
    ----------
    num_servers:
        Number of servers ``N``.
    arrival_rate:
        Poisson arrival rate ``lambda``.
    service_distribution:
        Distribution of the service requirement of a job (the analytical
        model requires :class:`~repro.distributions.Exponential`).
    operative_distribution, inoperative_distribution:
        Distributions of the alternating server periods (any
        :class:`~repro.distributions.Distribution`).
    seed:
        Seed for the NumPy random generator.
    start_operative:
        Whether servers start in an operative period (default) or inoperative.
    """

    def __init__(
        self,
        num_servers: int,
        arrival_rate: float,
        service_distribution: Distribution,
        operative_distribution: Distribution,
        inoperative_distribution: Distribution,
        *,
        seed: int = 0,
        start_operative: bool = True,
    ) -> None:
        self._num_servers = check_positive_int(num_servers, "num_servers")
        self._arrival_rate = check_positive(arrival_rate, "arrival_rate")
        self._service_distribution = service_distribution
        self._operative_distribution = operative_distribution
        self._inoperative_distribution = inoperative_distribution
        self._rng = np.random.default_rng(seed)
        self._scheduler = EventScheduler()
        self._queue: deque[_Job] = deque()
        self._servers = [_Server(identifier=i, operative=start_operative) for i in range(num_servers)]
        self._next_job_id = 0
        self._jobs_in_system = 0
        self._jobs_accumulator = TimeWeightedAccumulator()
        self._busy_accumulator = TimeWeightedAccumulator()
        self._completed_jobs: list[tuple[float, float]] = []  # (completion time, response time)
        self._started = False
        # Incremental bookkeeping so event handling is O(log N), not O(N):
        # counters for busy/operative servers, and a min-heap of the ids of
        # idle operative servers (with a membership set for lazy deletion).
        # The heap hands out the lowest idle id first, which reproduces the
        # dispatch order of a linear scan over ``self._servers`` exactly.
        self._num_busy = 0
        self._num_operative = num_servers if start_operative else 0
        self._idle_ids: set[int] = set(range(num_servers)) if start_operative else set()
        self._idle_heap: list[int] = sorted(self._idle_ids)

    # ------------------------------------------------------------------ #
    # Public interface
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._scheduler.now

    @property
    def num_jobs_in_system(self) -> int:
        """The current number of jobs present (waiting or in service)."""
        return self._jobs_in_system

    @property
    def num_operative_servers(self) -> int:
        """The current number of operative servers."""
        return self._num_operative

    @property
    def num_busy_servers(self) -> int:
        """The current number of servers actively serving a job."""
        return self._num_busy

    def run(self, horizon: float) -> None:
        """Run (or continue) the simulation until the given absolute time."""
        if horizon <= 0.0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        if not self._started:
            self._bootstrap()
            self._started = True
        self._scheduler.run_until(horizon)

    def completed_jobs(self) -> list[tuple[float, float]]:
        """Return ``(completion_time, response_time)`` pairs for finished jobs."""
        return list(self._completed_jobs)

    def time_average_jobs(self, start: float, end: float) -> float:
        """Time-average number of jobs in the system over ``[start, end]``."""
        return self._jobs_accumulator.time_average(start, end)

    def time_average_busy_servers(self, start: float, end: float) -> float:
        """Time-average number of busy servers over ``[start, end]``."""
        return self._busy_accumulator.time_average(start, end)

    # ------------------------------------------------------------------ #
    # Event logic
    # ------------------------------------------------------------------ #

    def _bootstrap(self) -> None:
        self._schedule_next_arrival()
        for server in self._servers:
            if server.operative:
                self._schedule_breakdown(server)
            else:
                self._schedule_repair(server)

    def _schedule_next_arrival(self) -> None:
        delay = self._rng.exponential(scale=1.0 / self._arrival_rate)
        self._scheduler.schedule(delay, self._handle_arrival)

    def _schedule_breakdown(self, server: _Server) -> None:
        duration = float(self._operative_distribution.sample(self._rng))
        self._scheduler.schedule(duration, lambda: self._handle_breakdown(server))

    def _schedule_repair(self, server: _Server) -> None:
        duration = float(self._inoperative_distribution.sample(self._rng))
        self._scheduler.schedule(duration, lambda: self._handle_repair(server))

    def _handle_arrival(self) -> None:
        self._schedule_next_arrival()
        job = _Job(
            identifier=self._next_job_id,
            arrival_time=self.now,
            remaining_service=float(self._service_distribution.sample(self._rng)),
        )
        self._next_job_id += 1
        self._record_jobs_change(+1)
        self._queue.append(job)
        self._dispatch_jobs()

    def _handle_breakdown(self, server: _Server) -> None:
        if not server.operative:  # pragma: no cover - defensive; should not happen
            return
        server.operative = False
        self._num_operative -= 1
        if server.job is not None:
            self._preempt(server)
        else:
            self._mark_not_idle(server)
        self._schedule_repair(server)

    def _handle_repair(self, server: _Server) -> None:
        if server.operative:  # pragma: no cover - defensive; should not happen
            return
        server.operative = True
        self._num_operative += 1
        self._mark_idle(server)
        self._schedule_breakdown(server)
        self._dispatch_jobs()

    def _handle_completion(self, server: _Server) -> None:
        job = server.job
        if job is None:  # pragma: no cover - defensive; cancelled handles prevent this
            return
        server.job = None
        server.completion_handle = None
        self._mark_idle(server)
        self._record_busy_change(-1)
        self._record_jobs_change(-1)
        self._completed_jobs.append((self.now, self.now - job.arrival_time))
        self._dispatch_jobs()

    def _preempt(self, server: _Server) -> None:
        """Interrupt the job in service and return it to the front of the queue."""
        job = server.job
        assert job is not None
        if server.completion_handle is not None:
            server.completion_handle.cancel()
            remaining = server.completion_handle.time - self.now
        else:  # pragma: no cover - defensive
            remaining = job.remaining_service
        job.remaining_service = max(remaining, 0.0)
        server.job = None
        server.completion_handle = None
        self._record_busy_change(-1)
        self._queue.appendleft(job)

    def _dispatch_jobs(self) -> None:
        """Assign waiting jobs to idle operative servers (work conservation)."""
        while self._queue:
            server = self._pop_idle_server()
            if server is None:
                break
            job = self._queue.popleft()
            server.job = job
            server.service_start = self.now
            server.completion_handle = self._scheduler.schedule(
                job.remaining_service, lambda srv=server: self._handle_completion(srv)
            )
            self._record_busy_change(+1)

    # ------------------------------------------------------------------ #
    # Idle-operative-server bookkeeping
    # ------------------------------------------------------------------ #

    def _mark_idle(self, server: _Server) -> None:
        """Add a server to the idle-operative pool (stale heap entries allowed)."""
        if server.identifier not in self._idle_ids:
            self._idle_ids.add(server.identifier)
            heapq.heappush(self._idle_heap, server.identifier)

    def _mark_not_idle(self, server: _Server) -> None:
        """Remove a server from the idle pool; its heap entry is dropped lazily."""
        self._idle_ids.discard(server.identifier)

    def _pop_idle_server(self) -> _Server | None:
        """Pop the lowest-id idle operative server, skipping stale heap entries."""
        while self._idle_heap:
            identifier = heapq.heappop(self._idle_heap)
            if identifier in self._idle_ids:
                self._idle_ids.discard(identifier)
                return self._servers[identifier]
        return None

    # ------------------------------------------------------------------ #
    # Statistics plumbing
    # ------------------------------------------------------------------ #

    def _record_jobs_change(self, delta: int) -> None:
        self._jobs_in_system += delta
        self._jobs_accumulator.record(self.now, float(self._jobs_in_system))

    def _record_busy_change(self, delta: int) -> None:
        self._num_busy += delta
        self._busy_accumulator.record(self.now, float(self._num_busy))


def simulate_queue(
    model: "UnreliableQueueModel",
    *,
    horizon: float,
    warmup_fraction: float = 0.1,
    num_batches: int = 10,
    seed: int = 0,
    confidence: float = 0.95,
) -> SimulationEstimate:
    """Simulate an :class:`~repro.queueing.model.UnreliableQueueModel`.

    Parameters
    ----------
    model:
        The queueing model to simulate (period distributions may be any
        :class:`~repro.distributions.Distribution`).
    horizon:
        Total simulated time, including warm-up.
    warmup_fraction:
        Fraction of the horizon discarded before statistics are collected.
    num_batches:
        Number of batches for the batch-means confidence intervals.
    seed:
        Random seed.
    confidence:
        Confidence level for the intervals.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError("warmup_fraction must lie in [0, 1)")
    num_batches = check_positive_int(num_batches, "num_batches")
    if num_batches < 2:
        raise SimulationError("at least two batches are required for confidence intervals")
    horizon = check_positive(horizon, "horizon")

    simulator = UnreliableQueueSimulator(
        num_servers=model.num_servers,
        arrival_rate=model.arrival_rate,
        service_distribution=Exponential(rate=model.service_rate),
        operative_distribution=model.operative,
        inoperative_distribution=model.inoperative,
        seed=seed,
    )
    simulator.run(horizon)

    warmup_time = warmup_fraction * horizon
    measurement_time = horizon - warmup_time
    batch_length = measurement_time / num_batches

    queue_batches = np.array(
        [
            simulator.time_average_jobs(
                warmup_time + index * batch_length, warmup_time + (index + 1) * batch_length
            )
            for index in range(num_batches)
        ]
    )
    queue_interval = batch_means_interval(queue_batches, confidence=confidence)

    completions = [
        (when, response) for when, response in simulator.completed_jobs() if when >= warmup_time
    ]
    if len(completions) < num_batches:
        raise SimulationError(
            "too few completed jobs after warm-up to form response-time batches; "
            "increase the horizon"
        )
    response_times = np.array([response for _, response in completions])
    response_batches = np.array(
        [float(np.mean(chunk)) for chunk in np.array_split(response_times, num_batches)]
    )
    response_interval = batch_means_interval(response_batches, confidence=confidence)

    busy_average = simulator.time_average_busy_servers(warmup_time, horizon)
    return SimulationEstimate(
        mean_queue_length=queue_interval,
        mean_response_time=response_interval,
        utilisation=busy_average / model.num_servers,
        num_completed_jobs=len(completions),
        horizon=horizon,
        warmup_time=warmup_time,
    )
