"""Output analysis for the discrete-event simulator.

The simulator produces a time-weighted trajectory of the number of jobs in
the system and a stream of per-job response times.  This module turns those
raw outputs into point estimates with confidence intervals using the batch
means method: the post-warmup horizon is split into equal-length batches, the
time-average of each batch is treated as an (approximately independent)
observation, and a Student-t interval is formed across batches.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np
import scipy.stats

from ..exceptions import SimulationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a symmetric confidence interval.

    Attributes
    ----------
    estimate:
        The point estimate (mean over batches).
    half_width:
        Half the width of the confidence interval.
    confidence:
        The confidence level (e.g. 0.95).
    num_batches:
        Number of batch observations behind the estimate.
    """

    estimate: float
    half_width: float
    confidence: float
    num_batches: int

    @property
    def lower(self) -> float:
        """The lower end of the interval."""
        return self.estimate - self.half_width

    @property
    def upper(self) -> float:
        """The upper end of the interval."""
        return self.estimate + self.half_width

    def contains(self, value: float) -> bool:
        """Return True if ``value`` lies within the interval."""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.estimate:.4f} ± {self.half_width:.4f} ({int(self.confidence * 100)}%)"


def batch_means_interval(
    batch_values: np.ndarray, *, confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval across batch observations."""
    values = np.asarray(batch_values, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise SimulationError("batch means require at least two batch observations")
    if not 0.0 < confidence < 1.0:
        raise SimulationError("confidence must lie strictly between 0 and 1")
    mean = float(np.mean(values))
    std_error = float(np.std(values, ddof=1) / np.sqrt(values.size))
    quantile = float(scipy.stats.t.ppf(0.5 + confidence / 2.0, df=values.size - 1))
    return ConfidenceInterval(
        estimate=mean,
        half_width=quantile * std_error,
        confidence=confidence,
        num_batches=int(values.size),
    )


class TimeWeightedAccumulator:
    """Accumulates the time integral of a piecewise-constant trajectory.

    Used for the number-of-jobs process: every time the job count changes the
    simulator calls :meth:`record` with the new value; the accumulator keeps
    the running integral so time averages over arbitrary windows (warm-up,
    batches) can be extracted afterwards.
    """

    def __init__(self, initial_value: float = 0.0, initial_time: float = 0.0) -> None:
        self._current_value = float(initial_value)
        self._last_time = float(initial_time)
        self._area = 0.0
        self._breakpoints: list[tuple[float, float, float]] = []  # (time, area so far, value)
        self._breakpoint_times: list[float] = []  # kept parallel for O(log n) lookups

    @property
    def current_value(self) -> float:
        """The current value of the trajectory."""
        return self._current_value

    def record(self, time: float, new_value: float) -> None:
        """Advance the trajectory: it had ``current_value`` until ``time``."""
        if time < self._last_time:
            raise SimulationError(
                f"time must be non-decreasing (got {time} after {self._last_time})"
            )
        self._area += self._current_value * (time - self._last_time)
        self._breakpoints.append((time, self._area, self._current_value))
        self._breakpoint_times.append(time)
        self._last_time = time
        self._current_value = float(new_value)

    def area_up_to(self, time: float) -> float:
        """The integral of the trajectory from time 0 up to ``time``."""
        if time < 0.0:
            raise SimulationError("time must be non-negative")
        if time >= self._last_time:
            return self._area + self._current_value * (time - self._last_time)
        # Binary search over breakpoints for the last record before `time`.
        position = bisect.bisect_right(self._breakpoint_times, time)
        if position == 0:
            # Before the first recorded change: the initial value applied throughout.
            initial_value = self._breakpoints[0][2] if self._breakpoints else self._current_value
            return initial_value * time
        change_time, area_before, _ = self._breakpoints[position - 1]
        value_after = (
            self._breakpoints[position][2]
            if position < len(self._breakpoints)
            else self._current_value
        )
        return area_before + value_after * (time - change_time)

    def time_average(self, start: float, end: float) -> float:
        """The time average of the trajectory over the window ``[start, end]``."""
        if end <= start:
            raise SimulationError(f"window must have positive length, got [{start}, {end}]")
        return (self.area_up_to(end) - self.area_up_to(start)) / (end - start)
