"""Discrete-event simulation of the unreliable multi-server queue.

Public API
----------

* :class:`UnreliableQueueSimulator` — the event-driven simulator (arbitrary
  period/service distributions, preemptive-resume breakdowns).
* :func:`simulate_queue`, :class:`SimulationEstimate` — one-call estimation of
  the headline metrics with batch-means confidence intervals.
* :class:`ScenarioSimulator`, :func:`simulate_scenario` — the scenario-model
  simulator: per-group service rates (fastest-server-first dispatch with
  migration) and repair-slot contention for limited repair crews.
* :class:`EventScheduler`, :class:`EventHandle` — the underlying simulation
  engine (reusable for extension studies).
* :class:`TimeWeightedAccumulator`, :func:`batch_means_interval`,
  :class:`ConfidenceInterval` — output-analysis utilities.
"""

from .engine import EventHandle, EventScheduler
from .estimators import ConfidenceInterval, TimeWeightedAccumulator, batch_means_interval
from .queue_sim import SimulationEstimate, UnreliableQueueSimulator, simulate_queue
from .scenario_sim import ScenarioSimulator, simulate_scenario

__all__ = [
    "EventScheduler",
    "EventHandle",
    "TimeWeightedAccumulator",
    "batch_means_interval",
    "ConfidenceInterval",
    "UnreliableQueueSimulator",
    "simulate_queue",
    "SimulationEstimate",
    "ScenarioSimulator",
    "simulate_scenario",
]
