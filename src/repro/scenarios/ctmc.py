"""Truncated-CTMC reference solution for scenario models.

This is the scenario counterpart of :mod:`repro.queueing.ctmc_reference`: the
queue is truncated at a large level ``J`` and the global balance equations of
the finite chain over ``(queue length, global mode)`` pairs are solved with
sparse linear algebra.  Two things differ from the homogeneous solver:

* the service-completion rate of a state is *level- and mode-dependent*: with
  ``j`` jobs present the fastest-server-first discipline puts them on the
  ``j`` fastest operative servers, so the departure rate is the sum of those
  servers' rates (:attr:`~repro.scenarios.model.ScenarioModel.service_capacity_by_level`);
* no spectral decay rate is available to size the truncation, so the level is
  seeded from the effective load and refined by the same adaptive
  boundary-mass loop the homogeneous solver uses (the heuristic may
  underestimate the true decay rate, the loop is what guarantees the target
  tail mass).

For a degenerate scenario (``K = 1``, ``R = N``) the generator coincides with
the homogeneous one, so this solver agrees with the spectral expansion to
solver precision — the pinned equivalence tests rely on it.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse

from .._validation import check_positive_int
from ..exceptions import SolverError
from ..markov import steady_state_sparse
from ..queueing.solution_base import QueueSolution
from .model import ScenarioModel

#: Target truncation tail mass used when choosing the truncation level.
_DEFAULT_TAIL_MASS = 1e-10

#: Hard bounds on the automatically chosen truncation level (above ``N``).
_MIN_EXTRA_LEVELS = 100
_MAX_EXTRA_LEVELS = 40_000


def default_truncation_level(scenario: ScenarioModel) -> int:
    """A starting truncation level seeded from the effective load.

    The effective load is a heuristic for the queue-length decay rate, not a
    bound; :func:`solve_scenario_ctmc` doubles the level until the realised
    boundary mass meets the ~1e-10 target.
    """
    decay = min(scenario.effective_load, 0.999999)
    if decay <= 0.0:
        extra = _MIN_EXTRA_LEVELS
    else:
        extra = int(math.ceil(math.log(_DEFAULT_TAIL_MASS) / math.log(decay)))
        extra = min(max(extra, _MIN_EXTRA_LEVELS), _MAX_EXTRA_LEVELS)
    return scenario.num_servers + extra


class ScenarioCTMCSolution(QueueSolution):
    """Steady-state solution of the truncated scenario chain."""

    def __init__(self, scenario: ScenarioModel, probabilities: np.ndarray) -> None:
        self._scenario = scenario
        self._probabilities = probabilities  # shape (levels, modes)
        self._level_totals = probabilities.sum(axis=1)

    @property
    def scenario(self) -> ScenarioModel:
        """The scenario that was solved."""
        return self._scenario

    @property
    def model(self) -> ScenarioModel:
        """Alias of :attr:`scenario` (mirrors the homogeneous solution API)."""
        return self._scenario

    @property
    def arrival_rate(self) -> float:
        return self._scenario.arrival_rate

    @property
    def num_servers(self) -> int:
        return self._scenario.num_servers

    @property
    def truncation_level(self) -> int:
        """The largest queue length represented in the finite chain."""
        return int(self._probabilities.shape[0] - 1)

    def truncation_mass(self) -> float:
        """The probability mass at the truncation boundary (diagnostic)."""
        return float(self._level_totals[-1])

    def level_vector(self, num_jobs: int) -> np.ndarray:
        """The probability vector over modes at level ``num_jobs``."""
        if num_jobs < 0 or num_jobs > self.truncation_level:
            return np.zeros(self._probabilities.shape[1])
        return self._probabilities[num_jobs].copy()

    def queue_length_pmf(self, num_jobs: int) -> float:
        if num_jobs < 0 or num_jobs > self.truncation_level:
            return 0.0
        return float(self._level_totals[num_jobs])

    def mode_marginals(self) -> np.ndarray:
        totals = self._probabilities.sum(axis=0)
        return totals / totals.sum()

    @property
    def mean_queue_length(self) -> float:
        levels = np.arange(self._level_totals.size)
        return float(np.dot(levels, self._level_totals))

    @property
    def mean_busy_servers(self) -> float:
        """Exact mean number of busy servers under the truncated chain."""
        counts = self._scenario.environment.operative_counts
        total = 0.0
        for level in range(self._probabilities.shape[0]):
            busy = np.minimum(counts, float(level))
            total += float(self._probabilities[level] @ busy)
        return total

    @property
    def mean_jobs_in_service(self) -> float:
        return self.mean_busy_servers

    @property
    def mean_jobs_waiting(self) -> float:
        return self.mean_queue_length - self.mean_jobs_in_service

    @property
    def utilisation(self) -> float:
        """Time-average fraction of busy servers (comparable to the simulator's)."""
        return self.mean_busy_servers / self.num_servers

    @property
    def throughput(self) -> float:
        """Mean service-completion rate ``E[c(j, m)]`` (equals ``lambda`` up to truncation)."""
        capacities = self._scenario.service_capacity_by_level
        total = 0.0
        for level in range(self._probabilities.shape[0]):
            rates = capacities[min(level, self._scenario.num_servers)]
            total += float(self._probabilities[level] @ rates)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScenarioCTMCSolution(N={self.num_servers}, "
            f"levels={self.truncation_level + 1}, L={self.mean_queue_length:.4f})"
        )


def build_truncated_generator(
    scenario: ScenarioModel, max_queue_length: int
) -> scipy.sparse.csr_matrix:
    """Build the sparse generator of the truncated scenario chain.

    States are ordered level-major: state ``(mode i, level j)`` has index
    ``j * s + i``.  Arrivals at the truncation boundary are dropped (the usual
    finite-buffer truncation).
    """
    max_queue_length = check_positive_int(max_queue_length, "max_queue_length")
    environment = scenario.environment
    num_modes = environment.num_modes
    mode_matrix = environment.transition_matrix
    capacities = scenario.service_capacity_by_level
    arrival_rate = scenario.arrival_rate
    num_servers = scenario.num_servers

    num_levels = max_queue_length + 1
    size = num_levels * num_modes
    rows: list[int] = []
    cols: list[int] = []
    rates: list[float] = []

    mode_sources, mode_targets = np.nonzero(mode_matrix)
    for level in range(num_levels):
        base = level * num_modes
        # Mode-changing transitions (breakdowns and crew-limited repairs).
        for source, target in zip(mode_sources, mode_targets):
            rows.append(base + source)
            cols.append(base + target)
            rates.append(float(mode_matrix[source, target]))
        # Arrivals.
        if level < max_queue_length:
            for mode in range(num_modes):
                rows.append(base + mode)
                cols.append(base + num_modes + mode)
                rates.append(arrival_rate)
        # Departures at the level- and mode-dependent capacity.
        if level > 0:
            level_rates = capacities[min(level, num_servers)]
            for mode in range(num_modes):
                rate = float(level_rates[mode])
                if rate > 0.0:
                    rows.append(base + mode)
                    cols.append(base - num_modes + mode)
                    rates.append(rate)

    off_diagonal = scipy.sparse.coo_matrix((rates, (rows, cols)), shape=(size, size)).tocsr()
    diagonal = np.asarray(off_diagonal.sum(axis=1)).ravel()
    generator = off_diagonal - scipy.sparse.diags(diagonal)
    return generator.tocsr()


def solve_scenario_ctmc(
    scenario: ScenarioModel, max_queue_length: int | None = None
) -> ScenarioCTMCSolution:
    """Solve the truncated scenario chain adaptively.

    Parameters
    ----------
    scenario:
        The scenario to evaluate (must be stable).
    max_queue_length:
        The truncation level ``J``.  When omitted it is seeded from the
        effective load and doubled until the realised boundary mass meets the
        ~1e-10 target (up to a hard cap).  An explicit level is used as
        given, with no adaptation.
    """
    scenario.require_stable()
    if max_queue_length is not None:
        if max_queue_length <= scenario.num_servers:
            raise SolverError(
                "max_queue_length must exceed the number of servers "
                f"({max_queue_length} <= {scenario.num_servers})"
            )
        return _solve_at_level(scenario, max_queue_length)

    level = default_truncation_level(scenario)
    solution = _solve_at_level(scenario, level)
    while (
        solution.truncation_mass() > _DEFAULT_TAIL_MASS
        and level - scenario.num_servers < _MAX_EXTRA_LEVELS
    ):
        extra = min(2 * (level - scenario.num_servers), _MAX_EXTRA_LEVELS)
        level = scenario.num_servers + extra
        solution = _solve_at_level(scenario, level)
    return solution


def _solve_at_level(scenario: ScenarioModel, max_queue_length: int) -> ScenarioCTMCSolution:
    """Solve the truncated chain at one fixed truncation level."""
    generator = build_truncated_generator(scenario, max_queue_length)
    stationary = steady_state_sparse(generator)
    probabilities = stationary.reshape(max_queue_length + 1, scenario.environment.num_modes)
    return ScenarioCTMCSolution(scenario=scenario, probabilities=probabilities)
