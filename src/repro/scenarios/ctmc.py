"""Truncated-CTMC reference solution for scenario models.

This is the scenario counterpart of :mod:`repro.queueing.ctmc_reference`: the
queue is truncated at a large level ``J`` and the global balance equations of
the finite chain over ``(queue length, global mode)`` pairs are solved with
sparse linear algebra.  Two things differ from the homogeneous solver:

* the service-completion rate of a state is *level- and mode-dependent*: with
  ``j`` jobs present the fastest-server-first discipline puts them on the
  ``j`` fastest operative servers, so the departure rate is the sum of those
  servers' rates (:attr:`~repro.scenarios.model.ScenarioModel.service_capacity_by_level`);
* no spectral decay rate is available to size the truncation, so the level is
  seeded from the effective load and refined by the same adaptive
  boundary-mass loop the homogeneous solver uses (the heuristic may
  underestimate the true decay rate, the loop is what guarantees the target
  tail mass).

For a degenerate scenario (``K = 1``, ``R = N``) the generator coincides with
the homogeneous one, so this solver agrees with the spectral expansion to
solver precision — the pinned equivalence tests rely on it.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse

from .._validation import check_positive_int
from ..exceptions import ParameterError, SolverError
from ..markov import (
    LevelModeStructure,
    ProductScenarioEnvironment,
    assemble_level_mode_generator,
    steady_state_csr,
)
from ..queueing.solution_base import QueueSolution
from .model import ScenarioModel

#: Target truncation tail mass used when choosing the truncation level.
_DEFAULT_TAIL_MASS = 1e-10

#: Hard bounds on the automatically chosen truncation level (above ``N``).
_MIN_EXTRA_LEVELS = 100
_MAX_EXTRA_LEVELS = 40_000

#: The chain representations a scenario solve accepts.
REPRESENTATIONS = ("auto", "lumped", "product")


def resolve_representation(representation: str) -> str:
    """Validate a representation name and resolve ``"auto"``.

    ``"auto"`` always selects the lumped (count-based) representation: it is
    law-equivalent to the product chain and combinatorially smaller, so there
    is never a correctness reason to prefer product space — it exists for
    verification and debugging.
    """
    if representation not in REPRESENTATIONS:
        raise ParameterError(
            f"unknown representation {representation!r}; "
            f"expected one of {', '.join(REPRESENTATIONS)}"
        )
    return "lumped" if representation == "auto" else representation


def default_truncation_level(scenario: ScenarioModel) -> int:
    """A starting truncation level seeded from the effective load.

    The effective load is a heuristic for the queue-length decay rate, not a
    bound; :func:`solve_scenario_ctmc` doubles the level until the realised
    boundary mass meets the ~1e-10 target.
    """
    decay = min(scenario.effective_load, 0.999999)
    if decay <= 0.0:
        extra = _MIN_EXTRA_LEVELS
    else:
        extra = int(math.ceil(math.log(_DEFAULT_TAIL_MASS) / math.log(decay)))
        extra = min(max(extra, _MIN_EXTRA_LEVELS), _MAX_EXTRA_LEVELS)
    return scenario.num_servers + extra


class ScenarioCTMCSolution(QueueSolution):
    """Steady-state solution of the truncated scenario chain.

    ``probabilities`` is always over the **lumped** modes (product-space
    solves are aggregated through the lumping map before wrapping), so every
    downstream consumer sees one representation; :attr:`representation` and
    :attr:`num_solved_states` record how the chain was actually solved.
    """

    def __init__(
        self,
        scenario: ScenarioModel,
        probabilities: np.ndarray,
        *,
        representation: str = "lumped",
        num_solved_states: int | None = None,
    ) -> None:
        self._scenario = scenario
        self._probabilities = probabilities  # shape (levels, modes)
        self._level_totals = probabilities.sum(axis=1)
        self._representation = representation
        if num_solved_states is None:
            num_solved_states = int(probabilities.size)
        self._num_solved_states = num_solved_states

    @property
    def representation(self) -> str:
        """Which chain representation was solved (``"lumped"`` or ``"product"``)."""
        return self._representation

    @property
    def num_solved_states(self) -> int:
        """The state-space size of the chain that was actually solved."""
        return self._num_solved_states

    @property
    def probabilities_by_level(self) -> np.ndarray:
        """The full ``(levels, modes)`` probability array (a copy)."""
        return self._probabilities.copy()

    @property
    def scenario(self) -> ScenarioModel:
        """The scenario that was solved."""
        return self._scenario

    @property
    def model(self) -> ScenarioModel:
        """Alias of :attr:`scenario` (mirrors the homogeneous solution API)."""
        return self._scenario

    @property
    def arrival_rate(self) -> float:
        return self._scenario.arrival_rate

    @property
    def num_servers(self) -> int:
        return self._scenario.num_servers

    @property
    def truncation_level(self) -> int:
        """The largest queue length represented in the finite chain."""
        return int(self._probabilities.shape[0] - 1)

    def truncation_mass(self) -> float:
        """The probability mass at the truncation boundary (diagnostic)."""
        return float(self._level_totals[-1])

    def level_vector(self, num_jobs: int) -> np.ndarray:
        """The probability vector over modes at level ``num_jobs``."""
        if num_jobs < 0 or num_jobs > self.truncation_level:
            return np.zeros(self._probabilities.shape[1])
        return self._probabilities[num_jobs].copy()

    def queue_length_pmf(self, num_jobs: int) -> float:
        if num_jobs < 0 or num_jobs > self.truncation_level:
            return 0.0
        return float(self._level_totals[num_jobs])

    def mode_marginals(self) -> np.ndarray:
        totals = self._probabilities.sum(axis=0)
        return totals / totals.sum()

    @property
    def mean_queue_length(self) -> float:
        levels = np.arange(self._level_totals.size)
        return float(np.dot(levels, self._level_totals))

    @property
    def mean_busy_servers(self) -> float:
        """Exact mean number of busy servers under the truncated chain."""
        counts = self._scenario.environment.operative_counts
        total = 0.0
        for level in range(self._probabilities.shape[0]):
            busy = np.minimum(counts, float(level))
            total += float(self._probabilities[level] @ busy)
        return total

    @property
    def mean_jobs_in_service(self) -> float:
        return self.mean_busy_servers

    @property
    def mean_jobs_waiting(self) -> float:
        return self.mean_queue_length - self.mean_jobs_in_service

    @property
    def utilisation(self) -> float:
        """Time-average fraction of busy servers (comparable to the simulator's)."""
        return self.mean_busy_servers / self.num_servers

    @property
    def throughput(self) -> float:
        """Mean service-completion rate ``E[c(j, m)]`` (equals ``lambda`` up to truncation)."""
        capacities = self._scenario.service_capacity_by_level
        total = 0.0
        for level in range(self._probabilities.shape[0]):
            rates = capacities[min(level, self._scenario.num_servers)]
            total += float(self._probabilities[level] @ rates)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScenarioCTMCSolution(N={self.num_servers}, "
            f"levels={self.truncation_level + 1}, L={self.mean_queue_length:.4f})"
        )


def _departure_rates(scenario: ScenarioModel, num_levels: int) -> np.ndarray:
    """Array ``(num_levels, modes)``: level- and mode-dependent departure rates."""
    capacities = scenario.service_capacity_by_level
    level_index = np.minimum(np.arange(num_levels), scenario.num_servers)
    return np.asarray(capacities[level_index], dtype=float)


def build_truncated_generator(
    scenario: ScenarioModel, max_queue_length: int
) -> scipy.sparse.csr_matrix:
    """Build the sparse generator of the truncated scenario chain.

    States are ordered level-major: state ``(mode i, level j)`` has index
    ``j * s + i``.  Arrivals at the truncation boundary are dropped (the usual
    finite-buffer truncation).  Assembly is fully vectorised through the
    shared kernel layer (:mod:`repro.markov.kernels`).
    """
    max_queue_length = check_positive_int(max_queue_length, "max_queue_length")
    environment = scenario.environment
    return assemble_level_mode_generator(
        environment.transition_matrix_sparse,
        scenario.arrival_rate,
        _departure_rates(scenario, max_queue_length + 1),
    )


def chain_structure(scenario: ScenarioModel, max_queue_length: int) -> LevelModeStructure:
    """The level x mode structure of the scenario's truncated chain."""
    environment = scenario.environment
    return LevelModeStructure(
        num_levels=max_queue_length + 1,
        num_modes=environment.num_modes,
        mode_generator=environment.generator_sparse,
    )


def solve_scenario_ctmc(
    scenario: ScenarioModel,
    max_queue_length: int | None = None,
    *,
    representation: str = "auto",
    warm_start: ScenarioCTMCSolution | None = None,
) -> ScenarioCTMCSolution:
    """Solve the truncated scenario chain adaptively.

    Parameters
    ----------
    scenario:
        The scenario to evaluate (must be stable).
    max_queue_length:
        The truncation level ``J``.  When omitted it is seeded from the
        effective load and doubled until the realised boundary mass meets the
        ~1e-10 target (up to a hard cap).  An explicit level is used as
        given, with no adaptation.
    representation:
        ``"auto"``/``"lumped"`` solve the count-based chain; ``"product"``
        solves the per-server-labelled chain (small scenarios only) and
        aggregates the answer through the lumping map — the two are
        law-equivalent, so this is a verification/debugging tool.
    warm_start:
        A previously computed solution of a *nearby* scenario.  Its
        truncation level seeds the level search and its probabilities seed
        the iterative solver's initial iterate (sweep engines pass the
        nearest solved grid neighbour here).
    """
    scenario.require_stable()
    representation = resolve_representation(representation)
    if max_queue_length is not None:
        if max_queue_length <= scenario.num_servers:
            raise SolverError(
                "max_queue_length must exceed the number of servers "
                f"({max_queue_length} <= {scenario.num_servers})"
            )
        return _solve_at_level(scenario, max_queue_length, representation, warm_start)

    level = default_truncation_level(scenario)
    if warm_start is not None:
        level = max(warm_start.truncation_level, scenario.num_servers + 1)
    solution = _solve_at_level(scenario, level, representation, warm_start)
    while (
        solution.truncation_mass() > _DEFAULT_TAIL_MASS
        and level - scenario.num_servers < _MAX_EXTRA_LEVELS
    ):
        extra = min(2 * (level - scenario.num_servers), _MAX_EXTRA_LEVELS)
        level = scenario.num_servers + extra
        solution = _solve_at_level(scenario, level, representation, warm_start)
    return solution


def _warm_start_vector(
    warm_start: ScenarioCTMCSolution | None, num_levels: int, num_modes: int
) -> np.ndarray | None:
    """Pad or truncate a neighbouring solution into an initial iterate."""
    if warm_start is None:
        return None
    probabilities = warm_start.probabilities_by_level
    if probabilities.shape[1] != num_modes:
        return None
    seed = np.zeros((num_levels, num_modes))
    common = min(num_levels, probabilities.shape[0])
    seed[:common] = probabilities[:common]
    return seed.ravel()


def _solve_at_level(
    scenario: ScenarioModel,
    max_queue_length: int,
    representation: str,
    warm_start: ScenarioCTMCSolution | None = None,
) -> ScenarioCTMCSolution:
    """Solve the truncated chain at one fixed truncation level."""
    if representation == "product":
        return _solve_product_at_level(scenario, max_queue_length)
    generator = build_truncated_generator(scenario, max_queue_length)
    structure = chain_structure(scenario, max_queue_length)
    x0 = _warm_start_vector(warm_start, max_queue_length + 1, structure.num_modes)
    stationary = steady_state_csr(generator, structure=structure, x0=x0)
    probabilities = stationary.reshape(max_queue_length + 1, scenario.environment.num_modes)
    return ScenarioCTMCSolution(
        scenario=scenario,
        probabilities=probabilities,
        representation="lumped",
        num_solved_states=generator.shape[0],
    )


def product_environment(scenario: ScenarioModel) -> ProductScenarioEnvironment:
    """The per-server-labelled environment of a scenario (size-guarded)."""
    return ProductScenarioEnvironment(
        groups=[(group.size, group.operative, group.inoperative) for group in scenario.groups],
        repair_capacity=scenario.effective_repair_capacity,
    )


def build_truncated_generator_product(
    scenario: ScenarioModel,
    max_queue_length: int,
    environment: ProductScenarioEnvironment | None = None,
) -> scipy.sparse.csr_matrix:
    """The truncated generator over ``(level, per-server state)`` pairs.

    The departure rate of a product state is that of its lumped mode (service
    capacity depends only on the operative counts), so the lumped capacity
    table is indexed through the lumping map rather than recomputed.
    """
    max_queue_length = check_positive_int(max_queue_length, "max_queue_length")
    if environment is None:
        environment = product_environment(scenario)
    departures = _departure_rates(scenario, max_queue_length + 1)[:, environment.lumping_map]
    return assemble_level_mode_generator(
        environment.transition_matrix_sparse,
        scenario.arrival_rate,
        departures,
    )


def _solve_product_at_level(
    scenario: ScenarioModel, max_queue_length: int
) -> ScenarioCTMCSolution:
    """Solve the product-space chain and aggregate onto the lumped modes."""
    environment = product_environment(scenario)
    generator = build_truncated_generator_product(scenario, max_queue_length, environment)
    structure = LevelModeStructure(
        num_levels=max_queue_length + 1,
        num_modes=environment.num_states,
        mode_generator=environment.generator_sparse,
    )
    stationary = steady_state_csr(generator, structure=structure)
    per_state = stationary.reshape(max_queue_length + 1, environment.num_states)
    probabilities = environment.lump_distribution(per_state)
    return ScenarioCTMCSolution(
        scenario=scenario,
        probabilities=probabilities,
        representation="product",
        num_solved_states=generator.shape[0],
    )
