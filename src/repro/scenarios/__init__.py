"""Scenario library: beyond the paper's homogeneous server pool.

The paper models one homogeneous pool of ``N`` unreliable servers.  This
package opens the model up to the workloads real clusters run:

* :class:`ServerGroup` / :class:`ScenarioModel` — ``K`` heterogeneous server
  groups (each with its own size, service rate and operative/inoperative
  period distributions) and a repair crew of ``R`` concurrent repair slots.
  ``K = 1, R = N`` recovers the paper's model exactly.
* :func:`solve_scenario_ctmc` / :class:`ScenarioCTMCSolution` — the
  truncated-CTMC reference solver over the product mode space with
  level-dependent (fastest-server-first) service capacities.
* :data:`SCENARIO_PRESETS`, :func:`scenario_preset`, :func:`preset_names` —
  named, documented presets (``two-speed-cluster``, ``single-repairman``,
  ``legacy-homogeneous``, ...) shared by the CLI, the examples, the
  benchmarks and the cross-validation tests.

Scenarios participate in the :mod:`repro.solvers` registry: the ``ctmc`` and
``simulate`` backends accept them directly, while ``spectral`` and
``geometric`` raise :class:`~repro.exceptions.UnsupportedScenarioError` (so
fallback chains skip past them), and sweeps can grid over group parameters
and the crew size (see :mod:`repro.sweeps`).
"""

from .ctmc import (
    REPRESENTATIONS,
    ScenarioCTMCSolution,
    resolve_representation,
    solve_scenario_ctmc,
)
from .model import ScenarioModel, ServerGroup
from .presets import (
    SCENARIO_PRESETS,
    ScenarioPreset,
    preset_description,
    preset_names,
    scenario_preset,
)

__all__ = [
    "REPRESENTATIONS",
    "SCENARIO_PRESETS",
    "ScenarioCTMCSolution",
    "ScenarioModel",
    "ScenarioPreset",
    "ServerGroup",
    "preset_description",
    "preset_names",
    "resolve_representation",
    "scenario_preset",
    "solve_scenario_ctmc",
]
