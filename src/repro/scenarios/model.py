"""Scenario front-end: heterogeneous server groups with a limited repair crew.

A :class:`ScenarioModel` generalises the paper's
:class:`~repro.queueing.model.UnreliableQueueModel` along two axes while
staying a Markov-modulated M/M/N-type system:

* **heterogeneous server groups** — ``K`` named groups, each with its own
  size, exponential service rate and operative/inoperative period
  distributions.  The environment mode space becomes the product of the
  per-group partitions and the scalar operative count of the paper is
  replaced by a per-group service-capacity vector;
* **limited repair crew** — at most ``R`` servers are repaired concurrently
  (inoperative completion rates scale with ``min(broken, R)``); ``R = N``
  recovers the paper's unlimited-crew model exactly.

Jobs still arrive in one Poisson stream to one unbounded FIFO queue, service
is exponential, and an interrupted job resumes from the point of interruption
(preemptive resume).  With several service speeds the dispatch discipline
matters: the scenario model assumes the ``j`` jobs in the system always
occupy the ``j`` *fastest* operative servers ("fastest-server-first"), which
keeps the system Markovian and is matched exactly by the scenario simulator.

Solvable by the scenario-aware backends: :meth:`ScenarioModel.solve_ctmc`
(truncated-CTMC, the reference) and :meth:`ScenarioModel.simulate`
(discrete-event).  The spectral and geometric solvers of the homogeneous
model raise :class:`~repro.exceptions.UnsupportedScenarioError` for
scenarios; degenerate single-group scenarios can be converted with
:meth:`ScenarioModel.as_homogeneous` when the exact spectral solution is
wanted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from .._validation import check_positive, check_positive_int
from ..distributions import Distribution, Exponential, HyperExponential
from ..exceptions import ParameterError, UnstableQueueError
from ..markov import ScenarioEnvironment, expected_num_scenario_modes
from ..queueing.model import UnreliableQueueModel
from ..solvers.cache import distribution_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.queue_sim import SimulationEstimate
    from .ctmc import ScenarioCTMCSolution


@dataclass(frozen=True)
class ServerGroup:
    """One homogeneous group of servers inside a scenario.

    Parameters
    ----------
    name:
        Label used by sweep axes (``"<name>.size"``), presets and reports.
    size:
        The number of servers in the group.
    service_rate:
        The exponential service rate ``mu_g`` of each operative server.
    operative, inoperative:
        Period distributions of the group's servers.  Exponential and
        hyperexponential distributions admit the exact Markov model; other
        distributions restrict the scenario to simulation.
    """

    name: str
    size: int
    service_rate: float
    operative: Distribution
    inoperative: Distribution

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("a server group needs a non-empty name")
        check_positive_int(self.size, "size")
        check_positive(self.service_rate, "service_rate")

    @property
    def is_markovian(self) -> bool:
        """Whether the group's period distributions admit the exact Markov model."""
        return isinstance(self.operative, (Exponential, HyperExponential)) and isinstance(
            self.inoperative, (Exponential, HyperExponential)
        )

    def parameter_key(self) -> tuple:
        """A hashable, value-based stand-in for caching and deduplication.

        The group *name* is a label, not a dynamical parameter, so it is
        excluded: scenarios that differ only in labels share cached solutions.
        """
        return (
            self.size,
            self.service_rate,
            distribution_key(self.operative),
            distribution_key(self.inoperative),
        )


@dataclass(frozen=True)
class ScenarioModel:
    """A multi-server queue with heterogeneous groups and a limited repair crew.

    Parameters
    ----------
    groups:
        The server groups (at least one; names must be unique).
    arrival_rate:
        The Poisson arrival rate ``lambda`` of the single job stream.
    repair_capacity:
        The repair-crew size ``R`` (``None`` = unlimited, i.e. ``R = N``).
    name:
        Label used in reports and the CLI.

    Examples
    --------
    A two-speed cluster with one shared repairman:

    >>> from repro.distributions import Exponential
    >>> scenario = ScenarioModel(
    ...     groups=(
    ...         ServerGroup("fast", 2, 1.5, Exponential(rate=0.05), Exponential(rate=10.0)),
    ...         ServerGroup("slow", 2, 0.75, Exponential(rate=0.02), Exponential(rate=5.0)),
    ...     ),
    ...     arrival_rate=2.0,
    ...     repair_capacity=1,
    ... )
    >>> scenario.num_servers
    4
    """

    groups: tuple[ServerGroup, ...]
    arrival_rate: float
    repair_capacity: int | None = None
    name: str = "scenario"
    _validated: bool = field(default=False, repr=False, compare=False)

    #: Marker consulted by solver backends and the cache (duck typing keeps
    #: :mod:`repro.solvers` free of an import cycle with this package).
    is_scenario = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "groups", tuple(self.groups))
        if not self.groups:
            raise ParameterError("a scenario needs at least one server group")
        names = [group.name for group in self.groups]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ParameterError(f"duplicate server-group names: {', '.join(duplicates)}")
        check_positive(self.arrival_rate, "arrival_rate")
        if self.repair_capacity is not None:
            check_positive_int(self.repair_capacity, "repair_capacity")
        object.__setattr__(self, "_validated", True)

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #

    @property
    def num_groups(self) -> int:
        """The number of server groups ``K``."""
        return len(self.groups)

    @property
    def num_servers(self) -> int:
        """The total number of servers ``N`` across all groups."""
        return sum(group.size for group in self.groups)

    @property
    def effective_repair_capacity(self) -> int:
        """The repair-crew size actually in force (``min(R, N)``; ``N`` when unlimited)."""
        if self.repair_capacity is None:
            return self.num_servers
        return min(self.repair_capacity, self.num_servers)

    @property
    def service_rates(self) -> tuple[float, ...]:
        """The per-group service rates ``mu_g``, in group order."""
        return tuple(group.service_rate for group in self.groups)

    @property
    def is_markovian(self) -> bool:
        """Whether every group's period distributions admit the exact Markov model."""
        return all(group.is_markovian for group in self.groups)

    @property
    def num_modes(self) -> int:
        """The number of global operational modes (product over groups)."""
        return expected_num_scenario_modes(
            [(group.size, group.operative, group.inoperative) for group in self.groups]
        )

    def group(self, name: str) -> ServerGroup:
        """The group with the given name."""
        for group in self.groups:
            if group.name == name:
                return group
        raise ParameterError(
            f"no server group named {name!r}; groups: "
            f"{', '.join(group.name for group in self.groups)}"
        )

    @cached_property
    def environment(self) -> ScenarioEnvironment:
        """The generalised Markovian environment induced by the groups."""
        return ScenarioEnvironment(
            groups=[(group.size, group.operative, group.inoperative) for group in self.groups],
            repair_capacity=self.effective_repair_capacity,
        )

    # ------------------------------------------------------------------ #
    # Capacity and stability
    # ------------------------------------------------------------------ #

    @cached_property
    def capacity_vector(self) -> np.ndarray:
        """Per-mode full-utilisation service capacity ``sum_g x_g(m) mu_g``."""
        return self.environment.service_capacities(self.service_rates)

    @cached_property
    def _stability_environment(self) -> ScenarioEnvironment:
        """The environment used for the stability condition.

        Markovian scenarios use the exact environment.  Scenarios with
        general period distributions (simulation-only) substitute exponential
        periods with matched means: with an unlimited crew the servers are
        independent and availability depends on the period means only, so the
        substitution is *exact*; with a limited crew it is a mean-based
        heuristic (the simulator remains the authority on such scenarios).
        """
        if self.is_markovian:
            return self.environment
        return ScenarioEnvironment(
            groups=[
                (
                    group.size,
                    Exponential(rate=1.0 / group.operative.mean),
                    Exponential(rate=1.0 / group.inoperative.mean),
                )
                for group in self.groups
            ],
            repair_capacity=self.effective_repair_capacity,
        )

    @cached_property
    def mean_service_capacity(self) -> float:
        """The steady-state average service capacity of the environment.

        This generalises the paper's ``N mu eta / (xi + eta)``: with a limited
        repair crew the per-server availability is not product-form, so the
        capacity must be averaged against the environment's stationary
        distribution (see :attr:`_stability_environment` for how non-Markovian
        scenarios are handled).
        """
        environment = self._stability_environment
        return float(
            environment.steady_state @ environment.service_capacities(self.service_rates)
        )

    @property
    def offered_load(self) -> float:
        """The offered load ``lambda`` in units of service capacity."""
        return self.arrival_rate

    @property
    def effective_load(self) -> float:
        """The load normalised by the average operative capacity (stable iff < 1)."""
        return self.arrival_rate / self.mean_service_capacity

    @property
    def is_stable(self) -> bool:
        """Whether the generalised stability condition ``lambda < E[capacity]`` holds."""
        return self.arrival_rate < self.mean_service_capacity

    def require_stable(self) -> None:
        """Raise :class:`UnstableQueueError` when the stability condition fails."""
        if not self.is_stable:
            raise UnstableQueueError(self.arrival_rate, self.mean_service_capacity)

    @cached_property
    def service_capacity_by_level(self) -> np.ndarray:
        """Array ``(N + 1, num_modes)``: service rate with ``j`` jobs present.

        Under fastest-server-first dispatch the ``j`` jobs in the system
        occupy the ``j`` fastest operative servers, so the row for level
        ``j <= N`` sums the ``j`` largest operative per-server rates of each
        mode; above ``N`` the capacity saturates at :attr:`capacity_vector`.
        """
        environment = self.environment
        counts = environment.operative_counts_by_group  # (modes, K)
        order = np.argsort(-np.asarray(self.service_rates, dtype=float), kind="stable")
        levels = np.zeros((self.num_servers + 1, environment.num_modes))
        for mode in range(environment.num_modes):
            rates: list[float] = []
            for position in order:
                rates.extend([self.groups[position].service_rate] * int(counts[mode, position]))
            cumulative = np.cumsum(rates) if rates else np.array([])
            for level in range(1, self.num_servers + 1):
                if cumulative.size == 0:
                    levels[level, mode] = 0.0
                else:
                    levels[level, mode] = cumulative[min(level, cumulative.size) - 1]
        return levels

    # ------------------------------------------------------------------ #
    # Model surgery helpers (sweep axes build on these)
    # ------------------------------------------------------------------ #

    def with_arrival_rate(self, arrival_rate: float) -> "ScenarioModel":
        """Return a copy of the scenario with a different arrival rate."""
        return replace(self, arrival_rate=float(arrival_rate))

    def with_repair_capacity(self, repair_capacity: int | None) -> "ScenarioModel":
        """Return a copy of the scenario with a different repair-crew size."""
        return replace(self, repair_capacity=repair_capacity)

    def with_group(self, group_name: str, **changes: object) -> "ScenarioModel":
        """Return a copy with the named group's fields replaced.

        Accepted fields are those of :class:`ServerGroup` except ``name``
        (rename by rebuilding the scenario instead).
        """
        unknown = set(changes) - {"size", "service_rate", "operative", "inoperative"}
        if unknown:
            raise ParameterError(
                f"cannot change group field(s) {sorted(unknown)}; "
                "expected size, service_rate, operative or inoperative"
            )
        target = self.group(group_name)
        groups = tuple(
            replace(group, **changes) if group is target else group for group in self.groups
        )
        return replace(self, groups=groups)

    # ------------------------------------------------------------------ #
    # Conversions to and from the homogeneous model
    # ------------------------------------------------------------------ #

    @classmethod
    def from_homogeneous(
        cls,
        model: UnreliableQueueModel,
        *,
        repair_capacity: int | None = None,
        name: str = "scenario",
        group_name: str = "servers",
    ) -> "ScenarioModel":
        """Wrap an :class:`UnreliableQueueModel` as a single-group scenario."""
        return cls(
            groups=(
                ServerGroup(
                    name=group_name,
                    size=model.num_servers,
                    service_rate=model.service_rate,
                    operative=model.operative,
                    inoperative=model.inoperative,
                ),
            ),
            arrival_rate=model.arrival_rate,
            repair_capacity=repair_capacity,
            name=name,
        )

    def as_homogeneous(self) -> UnreliableQueueModel:
        """Convert a degenerate scenario (``K = 1, R = N``) to the paper's model.

        This is the bridge to the exact spectral and geometric solvers, and
        the basis of the pinned equivalence tests.
        """
        if self.num_groups != 1:
            raise ParameterError(
                f"only single-group scenarios are homogeneous (got {self.num_groups} groups)"
            )
        if self.effective_repair_capacity != self.num_servers:
            raise ParameterError(
                "scenarios with a limited repair crew "
                f"(R={self.effective_repair_capacity} < N={self.num_servers}) "
                "have no homogeneous equivalent"
            )
        group = self.groups[0]
        return UnreliableQueueModel(
            num_servers=group.size,
            arrival_rate=self.arrival_rate,
            service_rate=group.service_rate,
            operative=group.operative,
            inoperative=group.inoperative,
        )

    # ------------------------------------------------------------------ #
    # Caching support
    # ------------------------------------------------------------------ #

    def solution_key(self) -> tuple:
        """The value-based cache key used by :mod:`repro.solvers` (name-free,
        so identically parameterised scenarios share cached solutions)."""
        return (
            "scenario",
            tuple(group.parameter_key() for group in self.groups),
            self.arrival_rate,
            self.effective_repair_capacity,
        )

    # ------------------------------------------------------------------ #
    # Solvers (lazy imports to keep the package import graph acyclic)
    # ------------------------------------------------------------------ #

    def solve_ctmc(
        self,
        max_queue_length: int | None = None,
        *,
        representation: str = "auto",
        warm_start: "ScenarioCTMCSolution | None" = None,
    ) -> "ScenarioCTMCSolution":
        """Solve the scenario's truncated-CTMC reference model.

        ``representation`` selects the chain actually solved: the lumped
        count-based one (``"auto"``/``"lumped"``) or the per-server product
        one (``"product"``, small scenarios only — a verification tool).
        ``warm_start`` seeds the solve from a nearby scenario's solution.
        """
        from .ctmc import solve_scenario_ctmc

        return solve_scenario_ctmc(
            self,
            max_queue_length=max_queue_length,
            representation=representation,
            warm_start=warm_start,
        )

    def simulate(
        self,
        *,
        horizon: float,
        warmup_fraction: float = 0.1,
        num_batches: int = 10,
        seed: int = 0,
    ) -> "SimulationEstimate":
        """Estimate performance by discrete-event simulation.

        Accepts arbitrary period distributions; the repair crew is shared
        equally among the broken servers (matching the analytical model's
        ``min(broken, R)`` completion-rate scaling for phase-type repairs).
        """
        from ..simulation.scenario_sim import simulate_scenario

        return simulate_scenario(
            self,
            horizon=horizon,
            warmup_fraction=warmup_fraction,
            num_batches=num_batches,
            seed=seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        groups = ", ".join(f"{group.name}x{group.size}" for group in self.groups)
        return (
            f"ScenarioModel(name={self.name!r}, groups=[{groups}], "
            f"lambda={self.arrival_rate}, R={self.effective_repair_capacity})"
        )
