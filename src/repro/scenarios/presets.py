"""Named scenario presets: the declarative scenario gallery.

Each preset is a ready-made :class:`~repro.scenarios.ScenarioModel` exposing
one feature combination of the scenario library.  Presets are deliberately
small (a handful of servers) so every one of them can be cross-validated —
truncated-CTMC mean queue length against simulation confidence intervals —
inside the ordinary test-suite, and solved interactively from the
``repro scenario`` CLI in well under a second.

The registry is the single source of truth for preset names: the CLI, the
example gallery, the benchmarks and the cross-validation tests all iterate
:func:`preset_names`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..distributions import SUN_OPERATIVE_FIT, Exponential, HyperExponential
from ..exceptions import ParameterError
from .model import ScenarioModel, ServerGroup


@dataclass(frozen=True)
class ScenarioPreset:
    """A named, documented scenario factory."""

    name: str
    description: str
    build: Callable[[], ScenarioModel]


def _legacy_homogeneous() -> ScenarioModel:
    """The paper's homogeneous pool, expressed as a one-group scenario.

    Four servers with the fitted Sun operative periods and fast exponential
    repairs; ``K = 1`` and an unlimited crew, so the scenario CTMC must agree
    with the homogeneous spectral solver to solver precision.
    """
    return ScenarioModel(
        groups=(
            ServerGroup(
                name="servers",
                size=4,
                service_rate=1.0,
                operative=SUN_OPERATIVE_FIT,
                inoperative=Exponential(rate=25.0),
            ),
        ),
        arrival_rate=2.2,
        name="legacy-homogeneous",
    )


def _two_speed_cluster() -> ScenarioModel:
    """Two machine generations sharing one queue.

    Two fast current-generation servers and two slower previous-generation
    ones; the older machines also break down more often and take longer to
    repair.  Unlimited repair crew.
    """
    return ScenarioModel(
        groups=(
            ServerGroup(
                name="fast",
                size=2,
                service_rate=1.5,
                operative=HyperExponential(weights=[0.7, 0.3], rates=[0.1, 0.02]),
                inoperative=Exponential(rate=10.0),
            ),
            ServerGroup(
                name="slow",
                size=2,
                service_rate=0.75,
                operative=Exponential(rate=0.08),
                inoperative=Exponential(rate=4.0),
            ),
        ),
        arrival_rate=2.4,
        name="two-speed-cluster",
    )


def _single_repairman() -> ScenarioModel:
    """A homogeneous pool whose repairs queue behind one repair crew.

    Three servers with exponential periods and ``R = 1``: when several
    servers are broken they share the single repairman, so repair completion
    rates scale with ``min(broken, 1)`` instead of the broken count.
    """
    return ScenarioModel(
        groups=(
            ServerGroup(
                name="servers",
                size=3,
                service_rate=1.0,
                operative=Exponential(rate=0.2),
                inoperative=Exponential(rate=1.0),
            ),
        ),
        arrival_rate=1.1,
        repair_capacity=1,
        name="single-repairman",
    )


def _repair_starved_two_speed() -> ScenarioModel:
    """Both generalisations at once: two server speeds and a single repairman.

    The composition exercise: heterogeneous groups *and* crew contention in
    one model, which only the scenario CTMC and the scenario simulator can
    evaluate.
    """
    return ScenarioModel(
        groups=(
            ServerGroup(
                name="fast",
                size=2,
                service_rate=1.25,
                operative=Exponential(rate=0.1),
                inoperative=Exponential(rate=2.0),
            ),
            ServerGroup(
                name="slow",
                size=2,
                service_rate=0.6,
                operative=HyperExponential(weights=[0.6, 0.4], rates=[0.25, 0.05]),
                inoperative=Exponential(rate=1.5),
            ),
        ),
        arrival_rate=1.5,
        repair_capacity=1,
        name="repair-starved-two-speed",
    )


#: The preset registry, in gallery order.
SCENARIO_PRESETS: dict[str, ScenarioPreset] = {
    preset.name: preset
    for preset in (
        ScenarioPreset(
            name="legacy-homogeneous",
            description="the paper's homogeneous pool as a one-group scenario (K=1, R=N)",
            build=_legacy_homogeneous,
        ),
        ScenarioPreset(
            name="two-speed-cluster",
            description="fast and slow machine generations sharing one queue",
            build=_two_speed_cluster,
        ),
        ScenarioPreset(
            name="single-repairman",
            description="homogeneous pool with a single shared repair crew (R=1)",
            build=_single_repairman,
        ),
        ScenarioPreset(
            name="repair-starved-two-speed",
            description="two server speeds AND a single repairman (both extensions at once)",
            build=_repair_starved_two_speed,
        ),
    )
}


def preset_names() -> tuple[str, ...]:
    """The registered preset names, in gallery order."""
    return tuple(SCENARIO_PRESETS)


def preset_description(name: str) -> str:
    """The one-line description of a preset."""
    return _get(name).description


def scenario_preset(
    name: str,
    *,
    arrival_rate: float | None = None,
    repair_capacity: int | None = None,
) -> ScenarioModel:
    """Build a preset scenario, optionally overriding load and crew size.

    Parameters
    ----------
    name:
        A registered preset name (see :func:`preset_names`).
    arrival_rate:
        Optional replacement arrival rate.
    repair_capacity:
        Optional replacement repair-crew size.
    """
    scenario = _get(name).build()
    if arrival_rate is not None:
        scenario = scenario.with_arrival_rate(arrival_rate)
    if repair_capacity is not None:
        scenario = scenario.with_repair_capacity(repair_capacity)
    return scenario


def _get(name: str) -> ScenarioPreset:
    if name not in SCENARIO_PRESETS:
        raise ParameterError(
            f"unknown scenario preset {name!r}; available: {', '.join(preset_names())}"
        )
    return SCENARIO_PRESETS[name]
