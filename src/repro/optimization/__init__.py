"""Cost optimisation and capacity planning (Section 4 of the paper).

Public API
----------

* :func:`evaluate_cost`, :func:`cost_curve`, :func:`optimal_server_count`,
  :class:`CostPoint`, :class:`CostCurve` — the Eq.-22 cost model and the
  Figure-5 optimisation over the number of servers.
* :func:`response_time_curve`, :func:`minimum_servers_for_response_time`,
  :class:`SizingPoint`, :class:`SizingResult` — the Figure-9 service-level
  sizing question.
* :func:`minimum_stable_servers` — the smallest ``N`` satisfying the
  stability condition (Eq. 11).
* :func:`solver_metrics` — the registry-dispatched metric helper behind all
  of the above.

Every ``solver`` argument accepts a :mod:`repro.solvers` registry name
(including ``"simulate"`` and third-party registrations), a sequence of
names forming a fallback chain, a :class:`~repro.solvers.SolverPolicy`, or a
plain callable ``model -> solution``.
"""

from .cost import (
    CostCurve,
    CostPoint,
    cost_curve,
    evaluate_cost,
    minimum_stable_servers,
    optimal_server_count,
    solver_metrics,
)
from .sizing import (
    SizingPoint,
    SizingResult,
    minimum_servers_for_response_time,
    response_time_curve,
)

__all__ = [
    "CostPoint",
    "CostCurve",
    "evaluate_cost",
    "cost_curve",
    "optimal_server_count",
    "minimum_stable_servers",
    "solver_metrics",
    "SizingPoint",
    "SizingResult",
    "response_time_curve",
    "minimum_servers_for_response_time",
]
