"""Cost optimisation and capacity planning (Section 4 of the paper).

Public API
----------

* :func:`evaluate_cost`, :func:`cost_curve`, :func:`optimal_server_count`,
  :class:`CostPoint`, :class:`CostCurve` — the Eq.-22 cost model and the
  Figure-5 optimisation over the number of servers.
* :func:`response_time_curve`, :func:`minimum_servers_for_response_time`,
  :class:`SizingPoint`, :class:`SizingResult` — the Figure-9 service-level
  sizing question.
* :func:`minimum_stable_servers` — the smallest ``N`` satisfying the
  stability condition (Eq. 11).
"""

from .cost import (
    CostCurve,
    CostPoint,
    cost_curve,
    evaluate_cost,
    minimum_stable_servers,
    optimal_server_count,
)
from .sizing import (
    SizingPoint,
    SizingResult,
    minimum_servers_for_response_time,
    response_time_curve,
)

__all__ = [
    "CostPoint",
    "CostCurve",
    "evaluate_cost",
    "cost_curve",
    "optimal_server_count",
    "minimum_stable_servers",
    "SizingPoint",
    "SizingResult",
    "response_time_curve",
    "minimum_servers_for_response_time",
]
