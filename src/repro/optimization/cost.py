"""Cost evaluation and optimisation over the number of servers.

Section 4 of the paper attaches a linear cost to the steady state of the
system (Eq. 22):

.. math::

    C = c_1 L + c_2 N ,

where ``c_1`` is the cost per unit time of holding a job in the system (the
"user" cost) and ``c_2`` the cost per unit time of providing a server (the
"provider" cost).  For fixed demand there is a trade-off: more servers reduce
``L`` but cost more, so an optimal ``N`` exists.  Figure 5 of the paper plots
``C`` against ``N`` for three arrival rates; the optima reported are
``N = 11`` for ``lambda = 7``, ``N = 12`` for ``lambda = 8`` and ``N = 13``
for ``lambda = 8.5``.

This module evaluates the cost curve and locates the optimum.  Solvers are
named through the :mod:`repro.solvers` registry: anywhere a solver is
accepted you may pass a registered name (``"spectral"``, ``"geometric"``,
``"ctmc"``, ``"simulate"`` or a third-party registration), a sequence of
names forming a fallback chain, a full
:class:`~repro.solvers.SolverPolicy`, or a plain callable
``model -> solution`` (which bypasses the registry and the shared cache).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from .._validation import check_non_negative, check_positive_int
from ..exceptions import ParameterError, SolverError, UnstableQueueError
from ..queueing.model import UnreliableQueueModel
from ..queueing.solution_base import QueueSolution
from ..solvers import SolutionCache, SolverPolicy, as_policy, solve

#: Type of the solver callables accepted by the optimisation helpers.
SolverCallable = Callable[[UnreliableQueueModel], QueueSolution]


@dataclass(frozen=True)
class CostPoint:
    """The evaluated cost at one candidate number of servers.

    Attributes
    ----------
    num_servers:
        The candidate ``N``.
    mean_queue_length:
        The mean number of jobs ``L`` at that ``N``.
    cost:
        The total cost ``c1 L + c2 N``.
    stable:
        Whether the queue is stable at that ``N`` (unstable points carry an
        infinite cost).
    """

    num_servers: int
    mean_queue_length: float
    cost: float
    stable: bool


@dataclass(frozen=True)
class CostCurve:
    """The cost as a function of the number of servers.

    Attributes
    ----------
    points:
        Evaluated :class:`CostPoint` entries, in increasing ``N``.
    holding_cost, server_cost:
        The cost coefficients ``c1`` and ``c2``.
    """

    points: tuple[CostPoint, ...]
    holding_cost: float
    server_cost: float

    @property
    def optimal_point(self) -> CostPoint:
        """The evaluated point with the smallest finite cost."""
        finite = [point for point in self.points if point.stable]
        if not finite:
            raise SolverError("no stable server count in the evaluated range")
        return min(finite, key=lambda point: point.cost)

    @property
    def optimal_servers(self) -> int:
        """The number of servers minimising the cost over the evaluated range."""
        return self.optimal_point.num_servers

    def as_series(self) -> tuple[list[int], list[float]]:
        """Return ``(server counts, costs)`` — the series plotted in Figure 5."""
        return (
            [point.num_servers for point in self.points],
            [point.cost for point in self.points],
        )


def solver_metrics(
    model: UnreliableQueueModel,
    solver: str | Sequence[str] | SolverPolicy | SolverCallable = "spectral",
    *,
    cache: SolutionCache | bool | None = None,
) -> dict[str, float]:
    """Steady-state metrics of a stable model under a solver specification.

    Names, name sequences (fallback chains) and policies dispatch through the
    :mod:`repro.solvers` registry and the shared solution cache — a bad name
    raises :class:`~repro.exceptions.ParameterError` listing the registered
    solvers.  Callables are invoked directly (no registry, no cache).

    Raises
    ------
    UnstableQueueError
        When the model violates the stability condition.
    SolverError
        When every solver in the chain fails.
    """
    if not isinstance(solver, (str, SolverPolicy)) and callable(solver):
        model.require_stable()
        solution = solver(model)
        return {
            "mean_queue_length": solution.mean_queue_length,
            "mean_response_time": solution.mean_response_time,
        }
    outcome = solve(model, as_policy(solver), cache=cache)
    if not outcome.stable:
        raise UnstableQueueError(model.offered_load, model.mean_operative_servers)
    if outcome.solver is None:
        raise SolverError(outcome.error or "no solver succeeded")
    return dict(outcome.metrics)


def evaluate_cost(
    model: UnreliableQueueModel,
    holding_cost: float,
    server_cost: float,
    *,
    solver: str | Sequence[str] | SolverPolicy | SolverCallable = "spectral",
) -> CostPoint:
    """Evaluate the Eq.-22 cost of a single model configuration."""
    holding_cost = check_non_negative(holding_cost, "holding_cost")
    server_cost = check_non_negative(server_cost, "server_cost")
    if isinstance(solver, (str, SolverPolicy)) or not callable(solver):
        solver = as_policy(solver)  # validate eagerly, before the stability check
    if not model.is_stable:
        return CostPoint(
            num_servers=model.num_servers,
            mean_queue_length=math.inf,
            cost=math.inf,
            stable=False,
        )
    mean_jobs = solver_metrics(model, solver)["mean_queue_length"]
    return CostPoint(
        num_servers=model.num_servers,
        mean_queue_length=mean_jobs,
        cost=holding_cost * mean_jobs + server_cost * model.num_servers,
        stable=True,
    )


def cost_curve(
    base_model: UnreliableQueueModel,
    server_counts: Sequence[int],
    holding_cost: float,
    server_cost: float,
    *,
    solver: str | Sequence[str] | SolverPolicy | SolverCallable = "spectral",
) -> CostCurve:
    """Evaluate the cost function over a range of server counts (Figure 5)."""
    if not server_counts:
        raise ParameterError("server_counts must not be empty")
    points = []
    for count in sorted({check_positive_int(count, "server count") for count in server_counts}):
        model = base_model.with_servers(count)
        points.append(
            evaluate_cost(model, holding_cost, server_cost, solver=solver)
        )
    return CostCurve(
        points=tuple(points), holding_cost=float(holding_cost), server_cost=float(server_cost)
    )


def optimal_server_count(
    base_model: UnreliableQueueModel,
    holding_cost: float,
    server_cost: float,
    *,
    solver: str | Sequence[str] | SolverPolicy | SolverCallable = "spectral",
    max_servers: int = 200,
) -> CostPoint:
    """Find the number of servers minimising the Eq.-22 cost.

    The search starts at the smallest stable server count and walks upwards
    until the cost has increased for three consecutive candidates (the cost
    curve is convex in practice: holding costs fall quickly at first, then
    the linear server cost dominates), or ``max_servers`` is reached.
    """
    check_non_negative(holding_cost, "holding_cost")
    check_non_negative(server_cost, "server_cost")
    max_servers = check_positive_int(max_servers, "max_servers")
    if isinstance(solver, (str, SolverPolicy)) or not callable(solver):
        solver = as_policy(solver)  # validate eagerly: a bad name must not be skipped

    start = minimum_stable_servers(base_model, max_servers=max_servers)
    best: CostPoint | None = None
    consecutive_increases = 0
    previous_cost = math.inf
    for count in range(start, max_servers + 1):
        model = base_model.with_servers(count)
        try:
            mean_jobs = solver_metrics(model, solver)["mean_queue_length"]
        except (UnstableQueueError, SolverError):
            continue
        cost = holding_cost * mean_jobs + server_cost * count
        point = CostPoint(
            num_servers=count,
            mean_queue_length=mean_jobs,
            cost=cost,
            stable=True,
        )
        if best is None or cost < best.cost:
            best = point
        if cost > previous_cost:
            consecutive_increases += 1
            if consecutive_increases >= 3:
                break
        else:
            consecutive_increases = 0
        previous_cost = cost
    if best is None:
        raise SolverError(f"no stable configuration found with up to {max_servers} servers")
    return best


def minimum_stable_servers(
    base_model: UnreliableQueueModel, *, max_servers: int = 10_000
) -> int:
    """The smallest ``N`` satisfying the stability condition of paper Eq. 11."""
    availability = base_model.availability
    if availability <= 0.0:
        raise SolverError("server availability is zero; no finite N can stabilise the queue")
    required = base_model.offered_load / availability
    candidate = max(1, int(math.floor(required)) )
    while candidate <= max_servers:
        if base_model.with_servers(candidate).is_stable:
            return candidate
        candidate += 1
    raise SolverError(f"no stable configuration found with up to {max_servers} servers")
