"""Capacity planning against quality-of-service targets.

The second and third questions of the paper's introduction are planning
questions: *what is the minimum number of servers that ensures a desired
level of performance?* and *what number of servers balances waiting cost
against provisioning cost?*  The cost trade-off is handled in
:mod:`repro.optimization.cost`; this module answers the service-level
question, the one illustrated by Figure 9 (with a mean-response-time target
of 1.5 the fitted system needs at least 9 servers at ``lambda = 7.5``).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .._validation import check_positive, check_positive_int
from ..exceptions import SolverError, UnstableQueueError
from ..queueing.model import UnreliableQueueModel
from ..solvers import SolverPolicy, as_policy
from .cost import SolverCallable, minimum_stable_servers, solver_metrics


@dataclass(frozen=True)
class SizingPoint:
    """Performance of one candidate server count during a sizing sweep.

    Attributes
    ----------
    num_servers:
        The candidate ``N``.
    mean_response_time:
        The mean response time ``W`` at that ``N``.
    mean_queue_length:
        The mean number of jobs ``L``.
    meets_target:
        Whether the response-time target is met.
    """

    num_servers: int
    mean_response_time: float
    mean_queue_length: float
    meets_target: bool


@dataclass(frozen=True)
class SizingResult:
    """Result of a minimum-server search.

    Attributes
    ----------
    required_servers:
        The smallest ``N`` meeting the target.
    target_response_time:
        The target ``W`` that was requested.
    evaluations:
        Every candidate evaluated on the way (useful for plotting the
        response-time curve of Figure 9).
    """

    required_servers: int
    target_response_time: float
    evaluations: tuple[SizingPoint, ...]


def response_time_curve(
    base_model: UnreliableQueueModel,
    server_counts: Sequence[int],
    *,
    solver: str | Sequence[str] | SolverPolicy | SolverCallable = "spectral",
) -> list[SizingPoint]:
    """Mean response time as a function of the number of servers (Figure 9).

    Unstable configurations are reported with an infinite response time.
    The solver is any :mod:`repro.solvers` registry name (including
    ``"simulate"``), a fallback chain, a policy, or a callable.
    """
    if isinstance(solver, (str, SolverPolicy)) or not callable(solver):
        solver = as_policy(solver)
    points: list[SizingPoint] = []
    for count in sorted({check_positive_int(count, "server count") for count in server_counts}):
        model = base_model.with_servers(count)
        if not model.is_stable:
            points.append(
                SizingPoint(
                    num_servers=count,
                    mean_response_time=float("inf"),
                    mean_queue_length=float("inf"),
                    meets_target=False,
                )
            )
            continue
        metrics = solver_metrics(model, solver)
        points.append(
            SizingPoint(
                num_servers=count,
                mean_response_time=metrics["mean_response_time"],
                mean_queue_length=metrics["mean_queue_length"],
                meets_target=False,
            )
        )
    return points


def minimum_servers_for_response_time(
    base_model: UnreliableQueueModel,
    target_response_time: float,
    *,
    solver: str | Sequence[str] | SolverPolicy | SolverCallable = "spectral",
    max_servers: int = 500,
) -> SizingResult:
    """The smallest number of servers whose mean response time meets a target.

    The mean response time decreases monotonically in ``N`` (more capacity
    can only help), so the search walks upward from the smallest stable
    configuration and stops at the first candidate that meets the target.

    Raises
    ------
    SolverError
        If no candidate up to ``max_servers`` meets the target.
    """
    target_response_time = check_positive(target_response_time, "target_response_time")
    max_servers = check_positive_int(max_servers, "max_servers")
    if target_response_time <= base_model.mean_service_time:
        raise SolverError(
            "the target response time cannot be smaller than the mean service time "
            f"({target_response_time} <= {base_model.mean_service_time})"
        )
    if isinstance(solver, (str, SolverPolicy)) or not callable(solver):
        solver = as_policy(solver)  # validate eagerly: a bad name must not be skipped
    evaluations: list[SizingPoint] = []
    start = minimum_stable_servers(base_model, max_servers=max_servers)
    for count in range(start, max_servers + 1):
        model = base_model.with_servers(count)
        try:
            metrics = solver_metrics(model, solver)
        except (UnstableQueueError, SolverError):
            continue
        response_time = metrics["mean_response_time"]
        meets = response_time <= target_response_time
        evaluations.append(
            SizingPoint(
                num_servers=count,
                mean_response_time=response_time,
                mean_queue_length=metrics["mean_queue_length"],
                meets_target=meets,
            )
        )
        if meets:
            return SizingResult(
                required_servers=count,
                target_response_time=target_response_time,
                evaluations=tuple(evaluations),
            )
    raise SolverError(
        f"no configuration with up to {max_servers} servers meets the response-time target "
        f"{target_response_time}"
    )
