"""Declarative description of a parameter sweep.

A :class:`SweepSpec` is the single object the sweep engine consumes: a base
:class:`~repro.queueing.model.UnreliableQueueModel`, a list of
:class:`SweepAxis` grids over model parameters, and a :class:`SolverPolicy`
describing which solver to try first and where to fall back when it fails.
Expanding the spec yields one :class:`SweepPoint` per grid cell (Cartesian
product, first axis slowest), each carrying the concrete model instance and
the policy that will evaluate it.

Axis names that match a model field (``num_servers``, ``arrival_rate``,
``service_rate``, ``operative``, ``inoperative``) are applied to the base
model directly with :func:`dataclasses.replace` semantics.  The name
``solver`` is reserved: its values select the solver for that point,
overriding the policy order.  Any other axis name requires a
``model_factory`` — a callable ``(base_model, parameters) -> model`` that
knows how to turn the axis values into a model (e.g. mapping an ``scv`` value
to a fitted hyperexponential operative-period distribution).

A :class:`~repro.scenarios.ScenarioModel` base model sweeps over scenario
parameters instead: ``arrival_rate`` and ``repair_capacity`` apply to the
scenario itself, and dotted names of the form ``"<group>.<field>"`` (with
``field`` one of ``size``, ``service_rate``, ``operative``, ``inoperative``)
target the named server group — e.g. ``("slow.service_rate", (0.5, 0.75, 1.0))``
or ``("fast.size", (1, 2, 3))``.

The name ``time`` is reserved too (see :class:`TimeGridAxis`): its values are
transient evaluation times, folded into each point's policy as a one-point
``transient_times`` grid, so a sweep can scan over parameters *and* time —
e.g. availability ramp-up across repair-crew sizes.

Factories and per-point policy callables run only in the parent process
during expansion, so they may be closures; the objects shipped to worker
processes (models, policies) are plain picklable dataclasses.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from .._validation import check_positive_int
from ..exceptions import ParameterError
from ..queueing.model import UnreliableQueueModel
from ..solvers import BUILTIN_SOLVER_NAMES, SolverPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios import ScenarioModel

#: Built-in solver names in the order the library trusts them (kept as an
#: alias for backwards compatibility; policies accept any name registered
#: with :mod:`repro.solvers`).
KNOWN_SOLVERS = BUILTIN_SOLVER_NAMES

#: Model fields an axis may target directly (applied via dataclasses.replace).
MODEL_FIELDS = ("num_servers", "arrival_rate", "service_rate", "operative", "inoperative")

#: Scenario-level fields an axis may target when the base model is a
#: :class:`~repro.scenarios.ScenarioModel`.
SCENARIO_FIELDS = ("arrival_rate", "repair_capacity")

#: Per-group fields addressable through dotted ``"<group>.<field>"`` axes.
GROUP_FIELDS = ("size", "service_rate", "operative", "inoperative")

#: Reserved axis name that selects the solver per grid point.
SOLVER_AXIS = "solver"

#: Reserved axis name that selects the transient evaluation time per point.
TIME_AXIS = "time"


@dataclass(frozen=True)
class SweepAxis:
    """One dimension of the sweep grid: a parameter name and its values."""

    name: str
    values: tuple[object, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ParameterError(f"axis {self.name!r} has no values")

    def __len__(self) -> int:
        return len(self.values)


class TimeGridAxis(SweepAxis):
    """An axis over transient evaluation times (the reserved ``"time"`` name).

    A time value does not change the model; it is folded into the grid
    point's :class:`~repro.solvers.SolverPolicy` as a one-point
    ``transient_times`` grid.  Unless the policy's order already names
    ``"transient"`` (an explicit opt-in to a custom chain), the cell is
    evaluated by the transient solver *alone* — a steady-state fallback
    would silently ignore the time value, so models the transient solver
    cannot handle produce an error row instead of a wrong answer.  A spec
    therefore only needs the axis itself to scan availability or queue
    build-up over time, alone or crossed with any parameter axes.  Each cell is cached and parallelised independently
    like every other grid point; for a pure time scan of one fixed model,
    calling :func:`repro.transient.solve_transient` with the whole grid is
    the cheaper equivalent (one uniformization pass serves all times).
    """

    def __init__(self, values: Iterable[float]) -> None:
        super().__init__(name=TIME_AXIS, values=tuple(float(value) for value in values))


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: the concrete model to evaluate and how to evaluate it.

    Attributes
    ----------
    index:
        Position in row-major grid order (first axis slowest).
    parameters:
        Mapping from axis name to this cell's value.
    model:
        The concrete model instance for this cell.
    policy:
        The solver policy that will evaluate the model.
    """

    index: int
    parameters: Mapping[str, object]
    model: UnreliableQueueModel
    policy: SolverPolicy


def _normalise_axes(
    axes: Sequence[SweepAxis | tuple[str, Iterable[object]]],
) -> tuple[SweepAxis, ...]:
    normalised: list[SweepAxis] = []
    for axis in axes:
        if isinstance(axis, SweepAxis):
            normalised.append(axis)
        else:
            name, values = axis
            normalised.append(SweepAxis(name=name, values=tuple(values)))
    return tuple(normalised)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter sweep over an unreliable-queue or scenario model.

    Attributes
    ----------
    base_model:
        The model every grid cell starts from — an
        :class:`~repro.queueing.model.UnreliableQueueModel` or a
        :class:`~repro.scenarios.ScenarioModel` (which switches the accepted
        axis names to scenario/group parameters).
    axes:
        The grid dimensions; accepts :class:`SweepAxis` instances or plain
        ``(name, values)`` pairs.
    policy:
        Default solver policy (the reserved ``solver`` axis and
        ``point_policy`` can override it per point).
    model_factory:
        Optional ``(base_model, parameters) -> model`` callable, required
        when an axis name is not a model field.
    point_policy:
        Optional ``(parameters) -> SolverPolicy`` callable for heterogeneous
        grids (e.g. simulate the ``C^2 = 0`` cell, solve the rest exactly).
    name:
        Label used in exports and progress reports.
    """

    base_model: UnreliableQueueModel
    axes: tuple[SweepAxis, ...]
    policy: SolverPolicy = field(default_factory=SolverPolicy)
    model_factory: Callable[[UnreliableQueueModel, Mapping[str, object]], UnreliableQueueModel] | None = None
    point_policy: Callable[[Mapping[str, object]], SolverPolicy] | None = None
    name: str = "sweep"

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", _normalise_axes(self.axes))
        if not self.axes:
            raise ParameterError("a sweep needs at least one axis")
        names = [axis.name for axis in self.axes]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ParameterError(
                f"duplicate sweep axis name(s): {', '.join(duplicates)}; "
                "each axis name must appear exactly once"
            )
        if self.model_factory is None:
            if self._is_scenario_base:
                for axis in self.axes:
                    self._validate_scenario_axis(axis.name)
            else:
                for axis in self.axes:
                    if axis.name not in MODEL_FIELDS and axis.name not in (
                        SOLVER_AXIS,
                        TIME_AXIS,
                    ):
                        raise ParameterError(
                            f"axis {axis.name!r} is not a model field "
                            f"({MODEL_FIELDS}); provide a model_factory"
                        )

    @property
    def _is_scenario_base(self) -> bool:
        return bool(getattr(self.base_model, "is_scenario", False))

    def _validate_scenario_axis(self, name: str) -> None:
        """Reject axis names a scenario base model cannot apply."""
        if name in SCENARIO_FIELDS or name in (SOLVER_AXIS, TIME_AXIS):
            return
        if "." in name:
            group_name, field_name = name.split(".", 1)
            group_names = [group.name for group in self.base_model.groups]
            if group_name not in group_names:
                raise ParameterError(
                    f"axis {name!r} names unknown server group {group_name!r}; "
                    f"groups: {', '.join(group_names)}"
                )
            if field_name not in GROUP_FIELDS:
                raise ParameterError(
                    f"axis {name!r} names unknown group field {field_name!r}; "
                    f"expected one of {GROUP_FIELDS}"
                )
            return
        raise ParameterError(
            f"axis {name!r} is not a scenario field ({SCENARIO_FIELDS}) or a "
            "'<group>.<field>' group axis; provide a model_factory"
        )

    @property
    def axis_names(self) -> tuple[str, ...]:
        """The axis names, in grid order."""
        return tuple(axis.name for axis in self.axes)

    @property
    def grid_size(self) -> int:
        """The total number of grid cells."""
        size = 1
        for axis in self.axes:
            size *= len(axis)
        return size

    def _build_model(self, parameters: Mapping[str, object]) -> UnreliableQueueModel:
        if self.model_factory is not None:
            return self.model_factory(self.base_model, parameters)
        if self._is_scenario_base:
            return self._build_scenario(parameters)
        model = self.base_model
        for name, value in parameters.items():
            if name in (SOLVER_AXIS, TIME_AXIS):
                continue
            if name == "num_servers":
                model = model.with_servers(check_positive_int(value, "num_servers"))
            elif name == "arrival_rate":
                model = model.with_arrival_rate(float(value))
            elif name == "operative":
                model = model.with_periods(operative=value)
            elif name == "inoperative":
                model = model.with_periods(inoperative=value)
            else:  # service_rate
                model = replace(model, service_rate=float(value))
        return model

    def _build_scenario(self, parameters: Mapping[str, object]) -> "ScenarioModel":
        """Apply scenario and dotted group axes to a scenario base model."""
        scenario = self.base_model
        for name, value in parameters.items():
            if name in (SOLVER_AXIS, TIME_AXIS):
                continue
            if name == "arrival_rate":
                scenario = scenario.with_arrival_rate(float(value))
            elif name == "repair_capacity":
                capacity = None if value is None else check_positive_int(value, name)
                scenario = scenario.with_repair_capacity(capacity)
            else:
                group_name, field_name = name.split(".", 1)
                if field_name == "size":
                    value = check_positive_int(value, name)
                elif field_name == "service_rate":
                    value = float(value)
                scenario = scenario.with_group(group_name, **{field_name: value})
        return scenario

    def _policy_for(self, parameters: Mapping[str, object]) -> SolverPolicy:
        if self.point_policy is not None:
            policy = self.point_policy(parameters)
        else:
            solver = parameters.get(SOLVER_AXIS)
            policy = self.policy.with_order(str(solver)) if solver is not None else self.policy
        time = parameters.get(TIME_AXIS)
        if time is not None:
            # A steady-state backend answering a time-axis cell would silently
            # ignore the time value, so unless the policy explicitly opted
            # into a chain containing 'transient', the cell runs the transient
            # solver alone — an unsupported model then fails loudly.
            order = policy.order if "transient" in policy.order else ("transient",)
            policy = replace(policy, order=order, transient_times=(float(time),))
        return policy

    def expand(self) -> Iterator[SweepPoint]:
        """Yield every :class:`SweepPoint` of the grid in row-major order."""
        for index, combination in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            parameters = dict(zip(self.axis_names, combination))
            yield SweepPoint(
                index=index,
                parameters=parameters,
                model=self._build_model(parameters),
                policy=self._policy_for(parameters),
            )
