"""Declarative description of a parameter sweep.

A :class:`SweepSpec` is the single object the sweep engine consumes: a base
:class:`~repro.queueing.model.UnreliableQueueModel`, a list of
:class:`SweepAxis` grids over model parameters, and a :class:`SolverPolicy`
describing which solver to try first and where to fall back when it fails.
Expanding the spec yields one :class:`SweepPoint` per grid cell (Cartesian
product, first axis slowest), each carrying the concrete model instance and
the policy that will evaluate it.

Axis names that match a model field (``num_servers``, ``arrival_rate``,
``service_rate``, ``operative``, ``inoperative``) are applied to the base
model directly with :func:`dataclasses.replace` semantics.  The name
``solver`` is reserved: its values select the solver for that point,
overriding the policy order.  Any other axis name requires a
``model_factory`` — a callable ``(base_model, parameters) -> model`` that
knows how to turn the axis values into a model (e.g. mapping an ``scv`` value
to a fitted hyperexponential operative-period distribution).

Factories and per-point policy callables run only in the parent process
during expansion, so they may be closures; the objects shipped to worker
processes (models, policies) are plain picklable dataclasses.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field, replace

from .._validation import check_positive_int
from ..exceptions import ParameterError
from ..queueing.model import UnreliableQueueModel
from ..solvers import BUILTIN_SOLVER_NAMES, SolverPolicy

#: Built-in solver names in the order the library trusts them (kept as an
#: alias for backwards compatibility; policies accept any name registered
#: with :mod:`repro.solvers`).
KNOWN_SOLVERS = BUILTIN_SOLVER_NAMES

#: Model fields an axis may target directly (applied via dataclasses.replace).
MODEL_FIELDS = ("num_servers", "arrival_rate", "service_rate", "operative", "inoperative")

#: Reserved axis name that selects the solver per grid point.
SOLVER_AXIS = "solver"


@dataclass(frozen=True)
class SweepAxis:
    """One dimension of the sweep grid: a parameter name and its values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ParameterError(f"axis {self.name!r} has no values")

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: the concrete model to evaluate and how to evaluate it.

    Attributes
    ----------
    index:
        Position in row-major grid order (first axis slowest).
    parameters:
        Mapping from axis name to this cell's value.
    model:
        The concrete model instance for this cell.
    policy:
        The solver policy that will evaluate the model.
    """

    index: int
    parameters: Mapping[str, object]
    model: UnreliableQueueModel
    policy: SolverPolicy


def _normalise_axes(axes: Sequence) -> tuple[SweepAxis, ...]:
    normalised: list[SweepAxis] = []
    for axis in axes:
        if isinstance(axis, SweepAxis):
            normalised.append(axis)
        else:
            name, values = axis
            normalised.append(SweepAxis(name=name, values=tuple(values)))
    return tuple(normalised)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter sweep over an unreliable-queue model.

    Attributes
    ----------
    base_model:
        The model every grid cell starts from.
    axes:
        The grid dimensions; accepts :class:`SweepAxis` instances or plain
        ``(name, values)`` pairs.
    policy:
        Default solver policy (the reserved ``solver`` axis and
        ``point_policy`` can override it per point).
    model_factory:
        Optional ``(base_model, parameters) -> model`` callable, required
        when an axis name is not a model field.
    point_policy:
        Optional ``(parameters) -> SolverPolicy`` callable for heterogeneous
        grids (e.g. simulate the ``C^2 = 0`` cell, solve the rest exactly).
    name:
        Label used in exports and progress reports.
    """

    base_model: UnreliableQueueModel
    axes: tuple[SweepAxis, ...]
    policy: SolverPolicy = field(default_factory=SolverPolicy)
    model_factory: Callable[[UnreliableQueueModel, Mapping[str, object]], UnreliableQueueModel] | None = None
    point_policy: Callable[[Mapping[str, object]], SolverPolicy] | None = None
    name: str = "sweep"

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", _normalise_axes(self.axes))
        if not self.axes:
            raise ParameterError("a sweep needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate axis names in {names}")
        if self.model_factory is None:
            for axis in self.axes:
                if axis.name not in MODEL_FIELDS and axis.name != SOLVER_AXIS:
                    raise ParameterError(
                        f"axis {axis.name!r} is not a model field "
                        f"({MODEL_FIELDS}); provide a model_factory"
                    )

    @property
    def axis_names(self) -> tuple[str, ...]:
        """The axis names, in grid order."""
        return tuple(axis.name for axis in self.axes)

    @property
    def grid_size(self) -> int:
        """The total number of grid cells."""
        size = 1
        for axis in self.axes:
            size *= len(axis)
        return size

    def _build_model(self, parameters: Mapping[str, object]) -> UnreliableQueueModel:
        if self.model_factory is not None:
            return self.model_factory(self.base_model, parameters)
        model = self.base_model
        for name, value in parameters.items():
            if name == SOLVER_AXIS:
                continue
            if name == "num_servers":
                model = model.with_servers(check_positive_int(value, "num_servers"))
            elif name == "arrival_rate":
                model = model.with_arrival_rate(float(value))
            elif name == "operative":
                model = model.with_periods(operative=value)
            elif name == "inoperative":
                model = model.with_periods(inoperative=value)
            else:  # service_rate
                model = replace(model, service_rate=float(value))
        return model

    def _policy_for(self, parameters: Mapping[str, object]) -> SolverPolicy:
        if self.point_policy is not None:
            return self.point_policy(parameters)
        solver = parameters.get(SOLVER_AXIS)
        if solver is not None:
            return self.policy.with_order(str(solver))
        return self.policy

    def expand(self):
        """Yield every :class:`SweepPoint` of the grid in row-major order."""
        for index, combination in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            parameters = dict(zip(self.axis_names, combination))
            yield SweepPoint(
                index=index,
                parameters=parameters,
                model=self._build_model(parameters),
                policy=self._policy_for(parameters),
            )
